"""Call-boundary overhead: direct tier-2 call linking (PR 10).

The production question PR 10 answers: once a tiered service has
settled, what does each *guest call* still cost, and how much of that
is boundary tax rather than callee work?  Before linking, every call
from compiled code re-entered ``vm.call_table`` / ``vm.call`` — two
name-resolution probes, two hook-membership probes, argument boxing
into a list that ``fn(self, *args)`` immediately unpacks, and
caller-side depth bookkeeping — even when caller and callee had both
been tier-2 for thousands of requests.

Measurement is two-layer:

* **microprofile** (``repro.bench.callprof``): isolated best-of timing
  loops against the settled VM decompose one ``vm.call`` round trip
  into name-resolution / hook-probe / arg-boxing / depth components,
  anchored by the end-to-end ``bridge`` (unlinked) and ``linked`` (raw
  positional) rows;
* **service steady state**: three settled services measured linked vs
  unlinked (``vm.links.enabled = False`` keeps every bridge
  permanently unpatched — the pre-PR-10 dispatch path, bit-identical
  fuel) with the interleaved best-of policy:

  - the **call-chain service**: an 8-deep chain of trivial guest
    functions, the boundary-dominated shape this PR targets — this is
    the guarded workload (>= 1.15x);
  - the PR 8 dispatch service and the richards service from
    bench_tiering, reported for context.  Their steady state is
    dominated by compiled *bodies* (NaN-box arithmetic, frame traffic)
    rather than call boundaries, so their speedups are smaller /
    noisier and guarded only against regression.

Artifacts: ``BENCH_calls.json`` (machine-readable decomposition plus
all three service comparisons, uploaded by CI) and
``call_overhead.txt`` (the paper-style table).

Regression guards (CI, ``--quick``): linked steady-state wall >= 1.15x
on the call-chain service, no regression (>= 0.95x) on the dispatch
service, identical responses and *bit-identical fuel* linked vs
unlinked everywhere, at least one inline-cache link actually patched,
and the microprofiled linked call at least 1.3x cheaper than the
bridge.  Measured locally (py backend, structured emit, CPython 3.11):
bridge ~1.9us vs linked ~1.25us per call (~1.5x), call-chain steady
state ~1.25x, dispatch ~1.05x, richards ~1.2x.
"""

import json
import os

from bench_inlining import CALLCHAIN_SERVICE, STAGED, Service, _best_latency
from bench_tiering import RICHARDS_SERVICE
from conftest import RESULTS_DIR, write_result
from repro.bench import format_table, profile_call_boundary
from repro.jsvm.runtime import SPEC_FIELD_WORD

# The boundary-dominated workload: an 8-deep chain of trivial callees,
# so per-request cost is ~one guest call boundary per unit of work.
_DEPTH = 8
_CHAIN_FNS = "\n".join(
    f"function c{i}(x) {{ return "
    + (f"c{i + 1}(x + 1); }}" if i < _DEPTH - 1 else "x + 1; }")
    for i in range(_DEPTH))
DEEPCHAIN_SERVICE = _CHAIN_FNS + """
function schedule(rounds) {
  var total = 0;
  for (var r = 0; r < rounds; r++) { total = total + c0(r); }
  return total;
}
print(0);
"""


def _unlinked(source):
    """A service whose link slots never patch: every bridge stays on
    the full ``vm.call`` path (the pre-PR-10 boundary), with identical
    tiering and identical fuel accounting."""
    service = Service(source, **STAGED)
    service.vm.links.enabled = False
    service.vm.links.invalidate()
    return service


def _steady_pair(source, arg, batches, per_batch):
    """Settle a linked and an unlinked service on ``source``; return
    (linked, unlinked, (linked_wall, unlinked_wall), fuel).  Responses
    and fuel must match bit-for-bit — linking may only change wall
    time."""
    linked = Service(source, **STAGED)
    unlinked = _unlinked(source)
    reference = linked.settle()
    assert unlinked.settle() == reference
    linked_fuel = linked.fuel_for(5)
    unlinked_fuel = unlinked.fuel_for(5)
    assert linked_fuel == unlinked_fuel, (
        f"linking changed fuel: {linked_fuel} vs {unlinked_fuel}")
    unlinked_wall, linked_wall = _best_latency(
        [unlinked, linked], arg, batches, per_batch)
    assert unlinked.vm.links.links_made == 0
    assert unlinked.vm.links.ic_links_made == 0
    return linked, unlinked, (linked_wall, unlinked_wall), linked_fuel


def _profile_handler(service, handler, loops, repeats):
    """Microprofile the settled tier-2 entry for one guest handler."""
    vm, rt = service.vm, service.rt
    struct = service.structs[handler]
    spec = vm.load_u64(struct + SPEC_FIELD_WORD * 8)
    assert spec, f"{handler} never settled to tier 2"
    name = vm._table[spec]
    profile = profile_call_boundary(vm, name, [struct, rt.frame_base],
                                    loops=loops, repeats=repeats)
    assert profile is not None, \
        f"{handler} entry is not a tier-2 fixed-arity fn"
    return profile


def test_call_overhead(benchmark, request):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick = request.config.getoption("--quick")
    batches, per_batch = (4, 3) if quick else (8, 4)
    loops, repeats = (500, 5) if quick else (2000, 7)

    chain, _, (chain_wall, chain_base), chain_fuel = \
        _steady_pair(DEEPCHAIN_SERVICE, 200, batches, per_batch)
    disp, _, (disp_wall, disp_base), disp_fuel = \
        _steady_pair(CALLCHAIN_SERVICE, 50, batches, per_batch)
    rich, _, (rich_wall, rich_base), rich_fuel = \
        _steady_pair(RICHARDS_SERVICE, 40, batches, per_batch)
    chain_speedup = chain_base / chain_wall
    disp_speedup = disp_base / disp_wall
    rich_speedup = rich_base / rich_wall

    # Decompose the boundary against the terminal chain callee (tiny
    # body, so the boundary share of the measurement is maximal).
    profile = _profile_handler(chain, f"c{_DEPTH - 1}", loops, repeats)

    links = chain.vm.links
    rows = profile.rows() + [
        ["call-chain steady state (unlinked)",
         f"{chain_base * 1e6:.0f}us/req", "schedule(200), 8-deep chain"],
        ["call-chain steady state (linked)",
         f"{chain_wall * 1e6:.0f}us/req",
         f"{chain_speedup:.2f}x faster, fuel identical ({chain_fuel})"],
        ["dispatch service (unlinked)",
         f"{disp_base * 1e6:.0f}us/req", "PR 8 workload, schedule(50)"],
        ["dispatch service (linked)",
         f"{disp_wall * 1e6:.0f}us/req",
         f"{disp_speedup:.2f}x, body-dominated, fuel ({disp_fuel})"],
        ["richards (unlinked)",
         f"{rich_base * 1e6:.0f}us/req", "bench_tiering workload"],
        ["richards (linked)",
         f"{rich_wall * 1e6:.0f}us/req",
         f"{rich_speedup:.2f}x, fuel identical ({rich_fuel})"],
        ["link slots patched (chain svc)",
         f"{links.links_made} direct / {links.ic_links_made} ic",
         f"epoch {links.epoch}"],
    ]
    report = ("Call-boundary fast path — decomposition and steady-state "
              "service wall\n" +
              format_table(["metric", "value", "detail"], rows))
    write_result("call_overhead", report)

    payload = {
        "profile": profile.to_dict(),
        "services": {
            "callchain": {
                "unlinked_us": chain_base * 1e6,
                "linked_us": chain_wall * 1e6,
                "speedup": chain_speedup,
                "fuel_per_request": chain_fuel,
            },
            "dispatch": {
                "unlinked_us": disp_base * 1e6,
                "linked_us": disp_wall * 1e6,
                "speedup": disp_speedup,
                "fuel_per_request": disp_fuel,
            },
            "richards": {
                "unlinked_us": rich_base * 1e6,
                "linked_us": rich_wall * 1e6,
                "speedup": rich_speedup,
                "fuel_per_request": rich_fuel,
            },
        },
        "links": {
            "direct": links.links_made,
            "ic": links.ic_links_made,
            "epoch": links.epoch,
        },
        "quick": bool(quick),
    }
    with open(os.path.join(RESULTS_DIR, "BENCH_calls.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    # --- regression guards -------------------------------------------
    assert chain_speedup >= 1.15, (
        f"linked call-chain steady state only {chain_speedup:.2f}x over "
        f"unlinked ({chain_base * 1e6:.0f}us vs {chain_wall * 1e6:.0f}us, "
        f"need >= 1.15x)")
    assert disp_speedup >= 0.95, (
        f"linking regressed the dispatch service: {disp_speedup:.2f}x")
    assert profile.speedup() >= 1.3, (
        f"microprofiled linked call only {profile.speedup():.2f}x cheaper "
        f"than the vm.call bridge")
    assert links.ic_links_made > 0, "no inline-cache slot ever patched"
