"""S6.4: code size before/after AOT compilation.

Paper: 8 MiB of Wasm in 18080 functions grows to 52 MiB after appending
5212 specialized JS functions and 2320 IC stubs (~6.5x).  Shape target:
specialization appends one function per JS function and per corpus stub,
and module size grows by a small integer factor.

Also: residual code size of the Fig. 8 Min workloads across optimizer
pipelines — the mid-end ("default" pipeline: + copyprop, GVN, load
forwarding, jump threading) must produce strictly smaller residual code
than the seed's four-pass loop ("legacy").
"""

import pytest

from conftest import write_result
from repro.bench import format_table, residual_shape
from repro.core.specialize import SpecializeOptions
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS
from repro.min.harness import sum_to_n_program
from repro.min.interp import PROGRAM_BASE, build_min_module, specialize_min
from repro.vm import VM

SUBSET = ("richards", "deltablue", "raytrace", "splay")

# Optimizer configurations compared on the Fig. 8 Min workloads.
PIPELINE_OPTIONS = {
    "O0": SpecializeOptions(optimize=False),
    "legacy": SpecializeOptions(opt_config="legacy"),
    "default": SpecializeOptions(opt_config="default"),
}


@pytest.fixture(scope="module")
def min_residuals():
    """Residual shapes per (workload n, interpreter variant, pipeline)."""
    rows = {}
    for n in (100, 1000):
        program = sum_to_n_program(n)
        for use_intrinsics in (False, True):
            variant = "state" if use_intrinsics else "plain"
            for config, options in PIPELINE_OPTIONS.items():
                module = build_min_module(program)
                func = specialize_min(module, program, use_intrinsics,
                                      options=options,
                                      name=f"min_{variant}_{config}")
                result = VM(module).call(
                    func.name, [PROGRAM_BASE, len(program.words), 0])
                assert result == n * (n + 1) // 2
                rows[(n, variant, config)] = residual_shape(func)
    return rows


def test_min_residual_code_size(benchmark, min_residuals):
    """The full mid-end strictly shrinks the Fig. 8 residual code
    relative to the seed pipeline."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [[n, variant, config, instrs, blocks, params]
             for (n, variant, config), (instrs, blocks, params)
             in sorted(min_residuals.items(),
                       key=lambda item: (item[0][0], item[0][1],
                                         item[0][2]))]
    write_result(
        "min_residual_size",
        "S6.4 analog — Fig. 8 Min residual code size by opt pipeline\n" +
        format_table(["n", "variant", "pipeline", "instrs", "blocks",
                      "block params"], table))
    for n in (100, 1000):
        for variant in ("plain", "state"):
            o0 = min_residuals[(n, variant, "O0")]
            legacy = min_residuals[(n, variant, "legacy")]
            default = min_residuals[(n, variant, "default")]
            assert default[0] <= legacy[0] <= o0[0]
        # The headline claim: strictly fewer residual instructions than
        # the seed pipeline on the plain (memory-resident registers)
        # variant, where redundant address math and re-loads dominate.
        assert (min_residuals[(n, "plain", "default")][0]
                < min_residuals[(n, "plain", "legacy")][0])


@pytest.fixture(scope="module")
def sized():
    rows = []
    for name in SUBSET:
        rt = JSRuntime(WORKLOADS[name], "wevaled_state")
        before_size = rt.module.code_size()
        before_funcs = len(rt.module.functions)
        rt.aot_compile()
        after_size = rt.module.code_size()
        after_funcs = len(rt.module.functions)
        js_funcs = len(rt.compiled.functions)
        ic_stubs = len(rt.corpus)
        rows.append((name, before_size, before_funcs, after_size,
                     after_funcs, js_funcs, ic_stubs))
    return rows


def test_code_size_table(benchmark, sized):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [[name, before, bf, after, af, f"{after / before:.2f}x",
              js, ic]
             for name, before, bf, after, af, js, ic in sized]
    write_result("code_size",
                 "S6.4 analog — module size before/after weval AOT\n" +
                 format_table(["workload", "size before", "funcs",
                               "size after", "funcs after", "growth",
                               "JS funcs", "IC stubs"], table))
    for name, before, bf, after, af, js, ic in sized:
        # One new function per JS function and per IC-corpus stub.
        assert af == bf + js + ic
        # The module grows, by a bounded factor (paper: ~6.5x).
        assert after > before
        assert after < before * 40
