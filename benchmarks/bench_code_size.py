"""S6.4: code size before/after AOT compilation.

Paper: 8 MiB of Wasm in 18080 functions grows to 52 MiB after appending
5212 specialized JS functions and 2320 IC stubs (~6.5x).  Shape target:
specialization appends one function per JS function and per corpus stub,
and module size grows by a small integer factor.
"""

import pytest

from conftest import write_result
from repro.bench import format_table
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS

SUBSET = ("richards", "deltablue", "raytrace", "splay")


@pytest.fixture(scope="module")
def sized():
    rows = []
    for name in SUBSET:
        rt = JSRuntime(WORKLOADS[name], "wevaled_state")
        before_size = rt.module.code_size()
        before_funcs = len(rt.module.functions)
        rt.aot_compile()
        after_size = rt.module.code_size()
        after_funcs = len(rt.module.functions)
        js_funcs = len(rt.compiled.functions)
        ic_stubs = len(rt.corpus)
        rows.append((name, before_size, before_funcs, after_size,
                     after_funcs, js_funcs, ic_stubs))
    return rows


def test_code_size_table(benchmark, sized):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [[name, before, bf, after, af, f"{after / before:.2f}x",
              js, ic]
             for name, before, bf, after, af, js, ic in sized]
    write_result("code_size",
                 "S6.4 analog — module size before/after weval AOT\n" +
                 format_table(["workload", "size before", "funcs",
                               "size after", "funcs after", "growth",
                               "JS funcs", "IC stubs"], table))
    for name, before, bf, after, af, js, ic in sized:
        # One new function per JS function and per IC-corpus stub.
        assert af == bf + js + ic
        # The module grows, by a bounded factor (paper: ~6.5x).
        assert after > before
        assert after < before * 40
