"""Fault containment: steady-state overhead and degraded-mode cost (PR 9).

The production question PR 9 answers: what does the fault-containment
layer *cost* when nothing is failing, and what does the service look
like when its persistence layer *is* failing?  The containment seams
(``FaultPlan`` consults in the engine, quarantine bookkeeping in the
controller, health tracking in the stores) all live on the compile
path; the settled serve path — the one that handles every steady-state
request — must be untouched.

Workload: the PR 8 call-chain service (``bench_inlining``'s richards-
flavored scheduler) under the same staged pipeline, three ways:

* **plain** — no fault plan at all (the PR 8 configuration);
* **inert** — an *armed* ``FaultPlan`` with a 0.0 rate on every seam:
  every consult happens, no fault ever fires.  This is the worst case
  for containment overhead short of an actual outage;
* **degraded** — ``FaultPlan.always("store_write")`` against a real
  ``cache_dir``: every artifact write fails, the store flips to
  memory-only degraded mode, and the service keeps running.

Reported metrics:

* **fuel per request** — settled ``schedule(5)``, plain vs inert.
  Guarded *byte-identical*: the plan is consulted only between tiers,
  never inside one, so the deterministic cost model cannot move;
* **steady-state latency** — best-observed wall clock for
  ``schedule(50)`` over interleaved batches, plain vs inert, guarded
  at <= 2% overhead (the acceptance bound);
* **degraded mode** — responses (guarded identical to plain), settle
  wall clock, and the store's health counters.  Reported without a
  wall guard: an outage is not a steady state we promise numbers for.

Regression guards (CI, ``--quick``): identical responses across all
three services, inert fuel == plain fuel, inert/plain wall ratio
<= 1.02, zero faults fired by the inert plan (with > 0 consults),
degraded store reporting ``degraded`` with every write failed and zero
artifacts on disk.  Measured locally (py backend, structured emit):
plain and inert both 6953 fuel per schedule(5), steady-state ~6.3ms
per schedule(50) with ratio ~1.00x, degraded settle within noise of
plain while every residual/source write fails over to memory.
"""

import os
import time

from conftest import write_result
from bench_inlining import CALLCHAIN_SERVICE, STAGED, Service, _best_latency
from repro.bench import format_table
from repro.core.specialize import SpecializeOptions
from repro.pipeline.faults import SEAMS, FaultPlan

MAX_STEADY_OVERHEAD = 1.02


def _service(plan=None, cache_dir=None):
    options = SpecializeOptions(backend="py", emit_mode="structured",
                                fault_plan=plan)
    return Service(CALLCHAIN_SERVICE, cache_dir=cache_dir,
                   options=options, **STAGED)


def test_fault_containment_overhead(benchmark, request, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick = request.config.getoption("--quick")

    inert_plan = FaultPlan(seed=0, rates={seam: 0.0 for seam in SEAMS})
    plain = _service()
    inert = _service(plan=inert_plan)

    reference = plain.settle()
    assert inert.settle() == reference
    assert inert.serve("schedule", 7) == plain.serve("schedule", 7)

    # The inert plan was consulted at every seam crossing during
    # tier-up, and never fired: containment is pure bookkeeping.
    consults = sum(inert_plan.consults.values())
    assert consults > 0, "armed plan was never consulted during tier-up"
    assert inert_plan.total_fired() == 0

    # Deterministic cost model: byte-identical, not merely close.
    plain_fuel = plain.fuel_for(5)
    inert_fuel = inert.fuel_for(5)
    assert inert_fuel == plain_fuel, (
        f"inert fault plan changed the cost model: "
        f"{plain_fuel} vs {inert_fuel} fuel per schedule(5)")

    batches, per_batch = (4, 3) if quick else (8, 4)
    plain_wall, inert_wall = _best_latency([plain, inert], 50,
                                           batches, per_batch)
    overhead = inert_wall / plain_wall

    # Degraded mode: every artifact write fails against a real store.
    store_root = str(tmp_path / "store")
    degrade_start = time.perf_counter()
    degraded = _service(plan=FaultPlan.always("store_write"),
                        cache_dir=store_root)
    degraded_responses = degraded.settle()
    degrade_wall = time.perf_counter() - degrade_start
    assert degraded_responses == reference
    health = degraded.controller.compiler.engine.store.health()
    on_disk = sum(len(files) for _, _, files in os.walk(store_root))

    plain_engine = plain.engine_stats()
    rows = [
        ["fuel / schedule(5) (plain)", plain_fuel, "PR 8 pipeline"],
        ["fuel / schedule(5) (inert plan)", inert_fuel,
         "byte-identical cost model"],
        ["steady-state (plain)", f"{plain_wall * 1e6:.0f}us/req",
         "schedule(50) best-of"],
        ["steady-state (inert plan)", f"{inert_wall * 1e6:.0f}us/req",
         f"{(overhead - 1) * 100:+.1f}% vs plain"],
        ["inert plan consults", consults,
         f"fired={inert_plan.total_fired()} across {len(SEAMS)} seams"],
        ["plain engine failures", plain_engine.requests_failed,
         f"pool rebuilds={plain_engine.pool_rebuilds}, "
         f"degradations={plain_engine.pool_degradations}"],
        ["degraded-store settle", f"{degrade_wall * 1e3:.1f}ms",
         "every artifact write failing (no wall guard)"],
        ["degraded-store health",
         f"degraded={health['degraded']}",
         f"write_failures={health['write_failures']}, "
         f"memory_entries={health['memory_entries']}, "
         f"files on disk={on_disk}"],
    ]
    report = ("Fault containment — call-chain service, inert plan vs "
              "none, plus store-outage degraded mode\n" +
              format_table(["metric", "value", "detail"], rows) +
              "\n\n" + degraded.controller.report())
    write_result("faults", report)

    # --- regression guards -------------------------------------------
    assert overhead <= MAX_STEADY_OVERHEAD, (
        f"inert fault plan costs {(overhead - 1) * 100:.1f}% steady-state "
        f"wall ({plain_wall * 1e6:.0f}us vs {inert_wall * 1e6:.0f}us, "
        f"bound {MAX_STEADY_OVERHEAD:.2f}x)")
    assert health["degraded"], "store outage did not flip degraded mode"
    assert health["memory_entries"] > 0
    assert on_disk == 0, (
        f"{on_disk} files reached a store whose every write failed")
