"""Fig. 11: the Octane-analog suite on the MiniJS engine, four configs.

Paper shape (speedups over "Interp + ICs"): wevaled+state-opt gives a
geomean of ~2.17x, above 2x on most benchmarks, with RegExp and CodeLoad
as the flat outliers; state intrinsics account for a further ~1.37x over
plain wevaled code.
"""

import pytest

from conftest import write_result
from repro.bench import format_table, geomean, run_js_workload
from repro.jsvm.workloads import BENCHMARK_NAMES

CONFIGS = ("noic", "interp_ic", "wevaled", "wevaled_state")


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for name in BENCHMARK_NAMES:
        results[name] = {config: run_js_workload(name, config)
                         for config in CONFIGS}
        outputs = {r.printed[0] for r in results[name].values()}
        assert len(outputs) == 1, f"{name}: configs disagree: {outputs}"
    return results


def test_fig11_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    ratios_wev, ratios_state = [], []
    for name in BENCHMARK_NAMES:
        per = sweep[name]
        base = per["interp_ic"].fuel
        wev = base / per["wevaled"].fuel
        state = base / per["wevaled_state"].fuel
        ratios_wev.append(wev)
        ratios_state.append(state)
        rows.append([name, per["noic"].fuel, base, per["wevaled"].fuel,
                     per["wevaled_state"].fuel, f"{wev:.2f}x",
                     f"{state:.2f}x"])
    rows.append(["geomean", "", "", "", "",
                 f"{geomean(ratios_wev):.2f}x",
                 f"{geomean(ratios_state):.2f}x"])
    write_result("fig11_octane",
                 "Fig. 11 analog — MiniJS Octane suite (fuel; speedups "
                 "vs Interp+ICs)\n" + format_table(
                     ["benchmark", "noic", "interp_ic", "wevaled",
                      "wevaled+state", "wev x", "wev+state x"], rows))

    # Shape assertions.
    by_name = dict(zip(BENCHMARK_NAMES, ratios_state))
    assert geomean(ratios_state) > 1.5          # big geomean win
    assert geomean(ratios_state) > geomean(ratios_wev)  # state opt helps
    # The paper's outliers barely move (time is outside specialized code).
    assert by_name["regexp"] < 1.5
    assert by_name["codeload"] < 1.7
    # Hot OO benchmarks should show the largest wins.
    hot = [by_name[n] for n in ("richards", "deltablue", "box2d")]
    assert min(hot) > 2.0


def test_state_opt_factor(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The wevaled -> wevaled+state step (paper: ~1.37x geomean)."""
    factors = [sweep[n]["wevaled"].fuel / sweep[n]["wevaled_state"].fuel
               for n in BENCHMARK_NAMES]
    assert geomean(factors) > 1.15


@pytest.mark.parametrize("name", ["richards", "crypto", "splay"])
def test_fig11_wall_clock(benchmark, name, sweep):
    """Wall-clock of the final configuration on representative picks."""
    from repro.jsvm import JSRuntime
    from repro.jsvm.workloads import WORKLOADS
    rt = JSRuntime(WORKLOADS[name], "wevaled_state")
    rt.aot_compile()
    benchmark.pedantic(rt.run, rounds=3, iterations=1)
