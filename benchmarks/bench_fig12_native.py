"""Fig. 12: tier-ratio progression, VM ("Wasm") platform vs Python
("native") platform.

Paper shape: on each platform the tiers get progressively faster —
generic interp < interp+ICs < compiled(+ICs) < optimized (native only);
the interp+ICs -> compiled step is similar on both platforms (that step
is exactly what weval provides).  Absolute numbers across platforms are
not comparable; the *ratios between adjacent tiers* are the result.
"""

import time

import pytest

from conftest import write_result
from repro.bench import format_table, geomean, run_js_workload
from repro.jsvm.native import NATIVE_TIERS, PyEngine
from repro.jsvm.workloads import WORKLOADS

SUBSET = ("richards", "deltablue", "splay", "crypto")


@pytest.fixture(scope="module")
def vm_side():
    results = {}
    for name in SUBSET:
        results[name] = {
            config: run_js_workload(name, config).fuel
            for config in ("noic", "interp_ic", "wevaled_state")}
    return results


@pytest.fixture(scope="module")
def native_side():
    results = {}
    for name in SUBSET:
        per = {}
        for tier in NATIVE_TIERS:
            engine = PyEngine(WORKLOADS[name], tier)
            engine.run()  # warm caches / compile
            start = time.perf_counter()
            engine.run()
            per[tier] = time.perf_counter() - start
        results[name] = per
    return results


def test_fig12_table(benchmark, vm_side, native_side):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    vm_ic = geomean([vm_side[n]["noic"] / vm_side[n]["interp_ic"]
                     for n in SUBSET])
    vm_compiled = geomean([vm_side[n]["interp_ic"] /
                           vm_side[n]["wevaled_state"] for n in SUBSET])
    nat_ic = geomean([native_side[n]["generic"] /
                      native_side[n]["interp_ic"] for n in SUBSET])
    nat_base = geomean([native_side[n]["interp_ic"] /
                        native_side[n]["baseline"] for n in SUBSET])
    nat_opt = geomean([native_side[n]["baseline"] /
                       native_side[n]["optimized"] for n in SUBSET])
    rows = [
        ["VM ('Wasm')", "generic -> interp+ICs", f"{vm_ic:.2f}x"],
        ["VM ('Wasm')", "interp+ICs -> wevaled+state",
         f"{vm_compiled:.2f}x"],
        ["native (Py)", "generic -> interp+ICs", f"{nat_ic:.2f}x"],
        ["native (Py)", "interp+ICs -> baseline-compiled",
         f"{nat_base:.2f}x"],
        ["native (Py)", "baseline -> optimized", f"{nat_opt:.2f}x"],
    ]
    write_result("fig12_native",
                 "Fig. 12 analog — tier progression per platform "
                 "(geomean over %s)\n%s" % (", ".join(SUBSET),
                                            format_table(
                     ["platform", "step", "speedup"], rows)))
    # Shape: every step is a real improvement; weval's step on the VM
    # platform is comparable to the native baseline compiler's step.
    assert vm_ic > 1.0
    assert vm_compiled > 1.5
    assert nat_base > 1.0
    assert nat_opt > 1.0


def test_native_tiers_agree(benchmark, native_side):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in SUBSET:
        outputs = set()
        for tier in NATIVE_TIERS:
            engine = PyEngine(WORKLOADS[name], tier)
            engine.run()
            outputs.add(tuple(engine.printed))
        assert len(outputs) == 1
