"""Fig. 12: tier-ratio progression, VM ("Wasm") platform vs Python
("native") platform.

Paper shape: on each platform the tiers get progressively faster —
generic interp < interp+ICs < compiled(+ICs) < optimized (native only);
the interp+ICs -> compiled step is similar on both platforms (that step
is exactly what weval provides).  Absolute numbers across platforms are
not comparable; the *ratios between adjacent tiers* are the result.

``test_fig12_emit_modes_json`` additionally walks the tier-3 backend's
emit-mode ladder on the residual snapshot — residual IR on the VM,
the flat dispatch-tree emitter, the structured emitter without fuel
batching (isolating control-structure + locals), and the full
structured emitter — against the hand-written native engine as the
ceiling, and emits ``results/BENCH_fig12.json`` for CI with a
regression guard: structured must beat dispatch by >= 1.3x on
richards.
"""

import dataclasses
import json
import os
import time

import pytest

from conftest import RESULTS_DIR, write_result
from repro.backend import compile_functions
from repro.bench import format_table, geomean, run_js_workload
from repro.core.specialize import SpecializeOptions
from repro.jsvm.native import NATIVE_TIERS, PyEngine
from repro.jsvm.runtime import JSRuntime
from repro.jsvm.workloads import WORKLOADS

SUBSET = ("richards", "deltablue", "splay", "crypto")

# The emit-mode ladder: each rung changes exactly one thing, so the
# interp -> native gap decomposes into per-step contributions.
EMIT_LADDER = (
    ("interp", None, True),            # residual IR on the VM
    ("dispatch", "dispatch", True),    # flat dispatch-tree Python
    ("structured-nobatch", "structured", False),  # + structure/locals
    ("structured", "structured", True),           # + fuel batching
)


@pytest.fixture(scope="module")
def vm_side():
    results = {}
    for name in SUBSET:
        results[name] = {
            config: run_js_workload(name, config).fuel
            for config in ("noic", "interp_ic", "wevaled_state")}
    return results


@pytest.fixture(scope="module")
def native_side():
    results = {}
    for name in SUBSET:
        per = {}
        for tier in NATIVE_TIERS:
            engine = PyEngine(WORKLOADS[name], tier)
            engine.run()  # warm caches / compile
            start = time.perf_counter()
            engine.run()
            per[tier] = time.perf_counter() - start
        results[name] = per
    return results


def test_fig12_table(benchmark, vm_side, native_side):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    vm_ic = geomean([vm_side[n]["noic"] / vm_side[n]["interp_ic"]
                     for n in SUBSET])
    vm_compiled = geomean([vm_side[n]["interp_ic"] /
                           vm_side[n]["wevaled_state"] for n in SUBSET])
    nat_ic = geomean([native_side[n]["generic"] /
                      native_side[n]["interp_ic"] for n in SUBSET])
    nat_base = geomean([native_side[n]["interp_ic"] /
                        native_side[n]["baseline"] for n in SUBSET])
    nat_opt = geomean([native_side[n]["baseline"] /
                       native_side[n]["optimized"] for n in SUBSET])
    rows = [
        ["VM ('Wasm')", "generic -> interp+ICs", f"{vm_ic:.2f}x"],
        ["VM ('Wasm')", "interp+ICs -> wevaled+state",
         f"{vm_compiled:.2f}x"],
        ["native (Py)", "generic -> interp+ICs", f"{nat_ic:.2f}x"],
        ["native (Py)", "interp+ICs -> baseline-compiled",
         f"{nat_base:.2f}x"],
        ["native (Py)", "baseline -> optimized", f"{nat_opt:.2f}x"],
    ]
    write_result("fig12_native",
                 "Fig. 12 analog — tier progression per platform "
                 "(geomean over %s)\n%s" % (", ".join(SUBSET),
                                            format_table(
                     ["platform", "step", "speedup"], rows)))
    # Shape: every step is a real improvement; weval's step on the VM
    # platform is comparable to the native baseline compiler's step.
    assert vm_ic > 1.0
    assert vm_compiled > 1.5
    assert nat_base > 1.0
    assert nat_opt > 1.0


def _emit_ladder_rows(name: str, repeats: int):
    """Best-of-``repeats`` wall seconds for each emit-ladder rung on one
    workload's residual snapshot, plus the native-engine ceiling.

    Every rung must print the same output and burn the same fuel — the
    ladder only re-shapes the emitted code, never the semantics."""
    rt = JSRuntime(WORKLOADS[name], "wevaled_state",
                   options=SpecializeOptions(emit_mode="structured"))
    rt.aot_compile()
    residuals = [p.function_name for p in rt.compiler.processed]

    rows = {}
    reference = None
    for label, mode, batch_fuel in EMIT_LADDER:
        if mode is None:
            backend = "vm"
        else:
            backend = "py"
            compiled, fallbacks = compile_functions(
                rt.module, residuals, mode=mode, batch_fuel=batch_fuel)
            assert not fallbacks, f"{name} {label}: {fallbacks}"
            rt.compiler.backend_functions = compiled
            rt.compiler._backend_compiled = True
        best = fuel = None
        for _ in range(repeats):
            mark = len(rt.printed)
            start = time.perf_counter()
            vm = rt.run(backend)
            elapsed = time.perf_counter() - start
            printed = tuple(rt.printed[mark:])
            fuel = vm.stats.fuel
            best = elapsed if best is None else min(best, elapsed)
        if reference is None:
            reference = (printed, fuel)
        else:
            assert (printed, fuel) == reference, (
                f"{name} {label}: output/fuel diverged from interp")
        rows[label] = best

    engine = PyEngine(WORKLOADS[name], "optimized")
    engine.run()  # warm
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    rows["native"] = best
    return rows


def test_fig12_emit_modes_json(benchmark, request):
    """The tier-3 ladder on richards, persisted as BENCH_fig12.json.

    Regression guard: structured emission must beat the dispatch tree
    by >= 1.3x; the JSON also records how much of the interp -> native
    log-gap each ladder step closes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repeats = 3 if request.config.getoption("--quick") else 5
    workloads = (("richards",) if request.config.getoption("--quick")
                 else SUBSET)
    payload = {"workloads": {}, "guard": {}}
    for name in workloads:
        rows = _emit_ladder_rows(name, repeats)
        interp, native = rows["interp"], rows["native"]
        steps = {
            "dispatch": rows["interp"] / rows["dispatch"],
            "structure+locals": rows["dispatch"] / rows["structured-nobatch"],
            "fuel-batching": rows["structured-nobatch"] / rows["structured"],
        }
        payload["workloads"][name] = {
            "seconds": rows,
            "speedup_over_interp": {
                label: interp / seconds for label, seconds in rows.items()},
            "step_speedups": steps,
            "structured_vs_dispatch":
                rows["dispatch"] / rows["structured"],
            "interp_to_native_gap": interp / native,
        }
    ratio = payload["workloads"]["richards"]["structured_vs_dispatch"]
    payload["guard"] = {"richards_structured_vs_dispatch": ratio,
                       "floor": 1.3}
    path = os.path.join(RESULTS_DIR, "BENCH_fig12.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows_txt = []
    for name, record in payload["workloads"].items():
        for label, _, _ in EMIT_LADDER:
            rows_txt.append([name, label,
                             f"{record['seconds'][label] * 1000:.1f}ms",
                             f"{record['speedup_over_interp'][label]:.2f}x"])
        rows_txt.append([name, "native",
                         f"{record['seconds']['native'] * 1000:.1f}ms",
                         f"{record['speedup_over_interp']['native']:.2f}x"])
    write_result("fig12_emit_modes",
                 "Tier-3 emit-mode ladder (best of %d)\n%s" % (
                     repeats, format_table(
                         ["workload", "tier", "wall", "vs interp"],
                         rows_txt)))
    assert ratio >= 1.3, (
        f"structured emission only {ratio:.2f}x over dispatch on "
        f"richards (floor 1.3x)")


def test_native_tiers_agree(benchmark, native_side):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in SUBSET:
        outputs = set()
        for tier in NATIVE_TIERS:
            engine = PyEngine(WORKLOADS[name], tier)
            engine.run()
            outputs.add(tuple(engine.printed))
        assert len(outputs) == 1
