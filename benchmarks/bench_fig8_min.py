"""Fig. 8: the Min interpreter across execution strategies.

Paper shape: the interpreter on the VM is many times slower than the
directly-compiled program; weval removes most of the gap; adding the
register intrinsics ("+ locals opt") lands within ~1% of compiled code.
"""

import pytest

from conftest import write_result
from repro.bench import format_table
from repro.min import run_fig8_configs

N = 2000


@pytest.fixture(scope="module")
def fig8_results():
    # backend="py" adds the tier-2 rows (wevaled residuals compiled to
    # native Python) next to the IR-VM rows.
    return run_fig8_configs(n=N, backend="py")


def test_fig8_table(benchmark, fig8_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = fig8_results["compiled"].fuel
    rows = []
    for name in ("compiled", "py_interp", "vm_interp", "wevaled",
                 "wevaled_state", "wevaled_py", "wevaled_state_py"):
        r = fig8_results[name]
        fuel = "-" if r.fuel is None else str(r.fuel)
        rel = "-" if r.fuel is None else f"{r.fuel / base:.2f}x"
        rows.append([name, r.result, fuel, rel,
                     f"{r.wall_seconds * 1000:.1f}ms"])
    vm_wall = fig8_results["wevaled_state"].wall_seconds
    py_wall = fig8_results["wevaled_state_py"].wall_seconds
    speedup = vm_wall / max(py_wall, 1e-12)
    write_result("fig8_min", "Fig. 8 analog — Min (sum 0..%d)\n%s\n\n"
                 "tier-2 backend: wevaled_state %.1fms (IR VM) vs %.1fms "
                 "(py backend) = %.2fx" % (
                     N, format_table(
                         ["config", "result", "fuel", "fuel vs compiled",
                          "wall"],
                         rows),
                     vm_wall * 1000, py_wall * 1000, speedup))
    # Shape assertions from the paper.
    interp = fig8_results["vm_interp"].fuel
    wevaled = fig8_results["wevaled"].fuel
    state = fig8_results["wevaled_state"].fuel
    assert interp > 5 * base            # interpretation overhead is large
    assert wevaled < interp / 2         # weval removes dispatch
    assert state < wevaled              # state opt removes memory traffic
    assert state <= base * 1.01         # within ~1% of compiled (S5)
    # Tier-2 backend: identical deterministic fuel, faster wall clock.
    assert fig8_results["wevaled_py"].fuel == wevaled
    assert fig8_results["wevaled_state_py"].fuel == state
    assert py_wall < vm_wall


@pytest.mark.parametrize("config", ["compiled", "vm_interp", "wevaled",
                                    "wevaled_state"])
def test_fig8_wall_clock(benchmark, config, fig8_results):
    """pytest-benchmark wall-clock per configuration (VM platform)."""
    from repro.min import build_min_module, specialize_min, sum_to_n_program
    from repro.min.harness import SUM_COMPILED_SRC
    from repro.min.interp import PROGRAM_BASE
    from repro.frontend import compile_source
    from repro.vm import VM

    program = sum_to_n_program(200)
    module = build_min_module(program)
    compile_source(SUM_COMPILED_SRC).add_to_module(module)
    func_names = {
        "compiled": ("sum_compiled", [200]),
        "vm_interp": ("min_interp",
                      [PROGRAM_BASE, len(program.words), 0]),
    }
    if config == "wevaled":
        func = specialize_min(module, program, use_intrinsics=False)
        func_names[config] = (func.name,
                              [PROGRAM_BASE, len(program.words), 0])
    elif config == "wevaled_state":
        func = specialize_min(module, program, use_intrinsics=True)
        func_names[config] = (func.name,
                              [PROGRAM_BASE, len(program.words), 0])
    name, args = func_names[config]

    def run():
        return VM(module).call(name, args)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result == 200 * 201 // 2
