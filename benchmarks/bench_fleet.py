"""Fleet serving with persisted heat: warm-up, throughput, identity.

The production question this PR answers: a fleet of serving workers
over one artifact store still pays per-worker *profile discovery* —
every fresh worker re-learns the hot set through threshold-many generic
calls per endpoint before its promotions (cheap artifact loads) land.
Persisting the fleet's heat (``publish_heat`` / ``adopt_heat``) moves
that discovery out of the request path: a fresh worker promotes
yesterday's hot set before its first request.

This bench replays mixed hot/cold traffic against the four-endpoint
Min fleet service (:mod:`repro.min.fleet`) and reports:

* **warm-up time** — worker-ready to steady state.  Cold: serve replay
  traffic until the last promotion lands (generic requests + compile).
  Warm: ``adopt_heat`` against the warm store + the first request.
  Best of two fresh workers per strategy;
* **adoption compiles** — the warm worker must specialize **zero**
  functions (its whole hot set comes out of the artifact store);
* **steady-state throughput and latency** — requests/s, p50 and p99
  request latency over the warm replay window;
* **pool byte-identity** — the same fleet batch compiled with
  ``pool="thread"`` (jobs=1) and ``pool="process"`` (jobs=2) must leave
  byte-identical artifact stores.

Regression guards (CI, ``--quick``): warm worker compiles 0 functions
and reaches steady state >= 3x faster than cold profile discovery;
process-pool artifacts byte-identical to the thread pool.
"""

import os
import tempfile
import time

from conftest import write_result
from repro.bench import format_table
from repro.core.specialize import SpecializeOptions
from repro.min.fleet import (
    constant_program,
    make_endpoints,
    make_fleet_worker,
    serve,
    sum_squares_program,
)
from repro.min.harness import sum_to_n_program
from repro.pipeline.profiles import ProfileStore

THRESHOLD = 8

ENDPOINTS = make_endpoints([
    ("checkout", sum_to_n_program(150)),      # hot
    ("search", sum_squares_program(100)),     # hot
    ("admin", constant_program(41)),          # cold
    ("report", constant_program(7)),          # cold
])
BY_NAME = {endpoint.name: endpoint for endpoint in ENDPOINTS}
HOT_NAMES = ["min_checkout", "min_search"]


def _traffic(rounds: int):
    """Replayed request mix: hot endpoints hammered, cold ones touched."""
    requests = []
    for i in range(rounds):
        requests.append("checkout")
        requests.append("search")
        if i == rounds // 2:
            requests.append("admin")
            requests.append("report")
    return requests


def _options(cache_dir: str) -> SpecializeOptions:
    return SpecializeOptions(backend="py", cache_dir=cache_dir)


def _replay(vm, controller, requests):
    """Serve the replay; returns (responses, latencies, steady_at) where
    ``steady_at`` is the elapsed time when the request that triggered
    the last promotion completed."""
    responses, latencies = [], []
    start = time.perf_counter()
    steady_at = 0.0
    promotions = controller.stats.promotions
    for name in requests:
        begin = time.perf_counter()
        responses.append(serve(vm, BY_NAME[name]))
        latencies.append(time.perf_counter() - begin)
        if controller.stats.promotions != promotions:
            promotions = controller.stats.promotions
            steady_at = time.perf_counter() - start
    return responses, latencies, steady_at


def _percentile(latencies, fraction):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1,
                       int(len(ordered) * fraction))]


def test_fleet_warm_start(benchmark, request):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick = request.config.getoption("--quick")
    rounds = 20 if quick else 40
    requests = _traffic(rounds)

    with tempfile.TemporaryDirectory() as cache_dir:
        store = ProfileStore(cache_dir)

        # ------------------------------------------------------------
        # Cold fleet: profile discovery + fresh compiles, twice (the
        # second worker shows the store amortizes compiles but NOT the
        # generic-call discovery tax — the gap heat adoption closes).
        # ------------------------------------------------------------
        cold_warmup = float("inf")
        expected = None
        for attempt in range(2):
            vm, controller = make_fleet_worker(
                ENDPOINTS, threshold=THRESHOLD,
                options=_options(cache_dir))
            start = time.perf_counter()
            responses, _, steady_at = _replay(vm, controller, requests)
            assert steady_at > 0, "cold worker must promote mid-replay"
            cold_warmup = min(cold_warmup, steady_at)
            if expected is None:
                expected = responses
            assert responses == expected
            assert controller.publish_heat(store)
        cold_tier0 = controller.stats.tier0_calls

        # ------------------------------------------------------------
        # Warm worker: adopt the fleet's heat, then replay.
        # ------------------------------------------------------------
        warm_warmup = float("inf")
        for attempt in range(2):
            vm, controller = make_fleet_worker(
                ENDPOINTS, threshold=THRESHOLD,
                options=_options(cache_dir))
            start = time.perf_counter()
            adopted = controller.adopt_heat(store)
            first = serve(vm, BY_NAME["checkout"])
            warm_warmup = min(warm_warmup,
                              time.perf_counter() - start)
            assert sorted(adopted) == sorted(HOT_NAMES)
            assert first == expected[0]
        engine_stats = controller.compiler.engine.stats
        warm_responses, warm_lat, warm_steady = _replay(
            vm, controller, requests)
        assert warm_responses == expected
        assert warm_steady == 0.0, "warm replay must not promote"

        total = sum(warm_lat)
        throughput = len(warm_lat) / total
        speedup = cold_warmup / warm_warmup
        rows = [
            ["cold warm-up (profile discovery)",
             f"{cold_warmup * 1000:.1f}ms",
             f"{cold_tier0} generic calls before steady state"],
            ["warm warm-up (heat adoption)",
             f"{warm_warmup * 1000:.1f}ms",
             f"{speedup:.1f}x faster, adopted {len(adopted)} endpoints"],
            ["adoption compiles",
             engine_stats.functions_specialized,
             f"{engine_stats.artifact_hits} artifact hits"],
            ["steady-state throughput",
             f"{throughput:.0f} req/s",
             f"{len(warm_lat)} requests replayed"],
            ["steady-state latency p50",
             f"{_percentile(warm_lat, 0.50) * 1e6:.0f}us", ""],
            ["steady-state latency p99",
             f"{_percentile(warm_lat, 0.99) * 1e6:.0f}us", ""],
        ]
        report = ("Fleet serving — persisted heat vs cold profile "
                  "discovery\n" +
                  format_table(["metric", "value", "detail"], rows) +
                  "\n\n" + controller.report())
        write_result("fleet", report)

        # --- regression guards ---------------------------------------
        assert engine_stats.functions_specialized == 0, (
            f"warm worker compiled "
            f"{engine_stats.functions_specialized} functions; the "
            f"adopted hot set must come entirely from the store")
        assert engine_stats.artifact_hits == len(HOT_NAMES)
        assert speedup >= 3.0, (
            f"heat adoption only {speedup:.2f}x faster than cold "
            f"profile discovery (need >= 3x)")
        # Only the two cold admin requests ran generically: the hot
        # endpoints never paid a tier-0 call on the warm worker.
        assert controller.stats.tier0_calls == 2


def test_fleet_pool_byte_identity(benchmark, request):
    """The fleet batch compiled via the process pool must leave an
    artifact store byte-identical to the thread pool's."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def compile_fleet(pool, jobs):
        tmp = tempfile.mkdtemp(prefix=f"fleet_{pool}_")
        _, controller = make_fleet_worker(
            ENDPOINTS, threshold=THRESHOLD,
            options=SpecializeOptions(backend="py", jobs=jobs, pool=pool,
                                      cache_dir=tmp))
        controller.promote_all()
        return tmp

    def snapshot(root):
        files = {}
        for sub in ("spec", "py"):
            directory = os.path.join(root, sub)
            for entry in sorted(os.listdir(directory)):
                with open(os.path.join(directory, entry), "rb") as fh:
                    files[f"{sub}/{entry}"] = fh.read()
        return files

    thread_root = compile_fleet("thread", 1)
    process_root = compile_fleet("process", 2)
    thread_files = snapshot(thread_root)
    process_files = snapshot(process_root)
    assert thread_files == process_files, (
        "process-pool artifacts diverge from the thread pool's")
    assert len(thread_files) == 2 * len(ENDPOINTS)

    rows = [
        ["artifacts compared", len(thread_files),
         "spec/ + py/, all byte-identical"],
        ["pool flavors", "thread jobs=1 vs process jobs=2", ""],
    ]
    write_result("fleet_pool_identity",
                 "Fleet batch — pool byte-identity\n" +
                 format_table(["metric", "value", "detail"], rows))
