"""Speculative inlining: steady-state call-chain speedup (PR 8).

The production question PR 8 answers: once a tiered service has settled
— every hot function compiled to tier 2 — the remaining per-request
cost on call-heavy guest code is the *call chain itself*: each guest
call re-enters the interpreter's dispatch sequence (arg-copy stores,
callee struct load, ``spec``-slot check, indirect call) even though
both caller and callee are compiled.  Speculative inlining splices the
hot callee bodies into the caller's residual behind polymorphic site
guards, so the steady-state chain runs guard-plus-straight-line code.

Workload: a richards-flavored scheduler whose work packets are handled
by tiny first-class handler functions.  ``schedule`` drives three
``dispatch(handler, x)`` sites (monomorphic on ``dispatch``) plus one
direct ``f(i)`` site that alternates between two handlers — a genuine
*polymorphic* site that specializes to a two-way guard chain under the
default ``inline_max_targets=2``.  The handler bodies are small enough
that call overhead dominates: the shape inlining targets, hot chains
of small compiled callees.

Both configurations run the PR 7 staged pipeline (``threshold=2``,
``compile_threshold=3``, structured emit, py backend); the only delta
is ``inline=True``.  Reported metrics:

* **fuel per request** — the deterministic cost model, measured on one
  ``schedule(5)`` request after both services settled.  This is the
  primary regression guard (>= 1.2x), immune to machine noise;
* **steady-state latency** — best-observed wall clock for a
  ``schedule(50)`` request over interleaved batches (guarded at a
  noise-tolerant >= 1.05x);
* **inline decisions** — sites planned / candidates rejected / guard
  misses / site demotions from the controller, plus the splice-level
  attempted / committed / rejected-by-size counters and the engine's
  inline-plan request count.

The warm-store test replays the inlined service against a populated
artifact store: every residual (inlined plans included) must load from
disk with **zero fresh specializations**.

Regression guards (CI, ``--quick``): fuel ratio >= 1.2x, wall speedup
>= 1.05x, >= 4 sites planned (at least one polymorphic) with no misses
or demotions, identical responses across generic / staged /
staged+inline, and a warm-store replay with
``functions_specialized == 0``.  Measured locally (py backend,
structured emit): fuel 6953 vs 5446 per schedule(5) (1.28x), wall
~7.8ms vs ~6.2ms per schedule(50) (~1.26x), 4 sites planned in the
``schedule`` residual (three monomorphic ``dispatch`` sites + one
2-way polymorphic handler site), 0 misses, 0 demotions.
"""

import time

from conftest import write_result
from repro.bench import format_table, guard_kind_counts
from repro.core.specialize import SpecializeOptions
from repro.jsvm import JSRuntime
from repro.jsvm.runtime import SPEC_FIELD_WORD
from repro.jsvm.values import VALUE_UNDEFINED, box_double, unbox_double

CALLCHAIN_SERVICE = """
function idleHandler(x) { return x + 1; }
function workHandler(x) { return x * 2 - 1; }
function deviceHandler(x) { return x + 3; }
function dispatch(f, x) { return f(x); }
function schedule(rounds) {
  var total = 0;
  for (var r = 0; r < rounds; r++) {
    var i = 0;
    while (i < 4) {
      total = total + dispatch(idleHandler, i);
      total = total + dispatch(workHandler, i);
      total = total + dispatch(deviceHandler, i);
      var f = idleHandler;
      if (i % 2 == 1) { f = workHandler; }
      total = total + f(i);
      i++;
    }
  }
  return total;
}
print(0);
"""

# The staged PR 7 configuration both services share; ``inline`` is the
# only delta under measurement.
STAGED = dict(threshold=2, compile_threshold=3)
INLINE = dict(inline=True, inline_min_site_calls=2)


class Service:
    """A JS runtime served host-side through the ``spec`` slots (same
    dispatch shape as bench_tiering's Service), running under the
    staged dynamic tier-up pipeline."""

    def __init__(self, source: str, cache_dir=None, options=None,
                 **tiered_kwargs):
        self.rt = JSRuntime(source, "wevaled_state",
                            options=options or SpecializeOptions(
                                backend="py", emit_mode="structured"))
        self.structs = {f.name: self.rt.func_addrs[f.index]
                        for f in self.rt.compiled.functions}
        if cache_dir is not None:
            tiered_kwargs["cache_dir"] = cache_dir
        self.vm = self.rt.run(mode="tiered", **tiered_kwargs)
        self.controller = self.rt.controller

    def serve(self, name: str, arg: float) -> float:
        vm, rt = self.vm, self.rt
        struct = self.structs[name]
        vm.store_u64(rt.frame_base, VALUE_UNDEFINED)
        vm.store_u64(rt.frame_base + 8, box_double(float(arg)))
        spec = vm.load_u64(struct + SPEC_FIELD_WORD * 8)
        if spec:
            return unbox_double(vm.call_table(spec,
                                              [struct, rt.frame_base]))
        return unbox_double(vm.call(rt.generic_entry,
                                    [struct, rt.frame_base]))

    def settle(self, n=40):
        """Drive schedule(1) until every tier (and the inline respec of
        the caller) has installed; returns the responses."""
        return [self.serve("schedule", 1) for _ in range(n)]

    def fuel_for(self, arg) -> int:
        before = self.vm.stats.fuel
        self.serve("schedule", arg)
        return self.vm.stats.fuel - before

    def engine_stats(self):
        return self.controller.compiler.engine.stats


def _best_latency(services, arg, batches, per_batch):
    """Interleaved best-of measurement (see bench_tiering: robust to
    one-sided machine noise)."""
    best = [float("inf")] * len(services)
    for _ in range(batches):
        for i, service in enumerate(services):
            for _ in range(per_batch):
                begin = time.perf_counter()
                service.serve("schedule", arg)
                best[i] = min(best[i], time.perf_counter() - begin)
    return best


def test_inlining_callchain_speedup(benchmark, request):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick = request.config.getoption("--quick")

    generic = Service(CALLCHAIN_SERVICE, threshold=float("inf"))
    baseline = Service(CALLCHAIN_SERVICE, **STAGED)
    inlined = Service(CALLCHAIN_SERVICE, **STAGED, **INLINE)

    # Settle all tiers; every configuration must answer identically.
    reference = generic.settle()
    assert baseline.settle() == reference
    assert inlined.settle() == reference
    assert inlined.serve("schedule", 7) == baseline.serve("schedule", 7)

    # Deterministic cost model: one settled schedule(5) request.
    baseline_fuel = baseline.fuel_for(5)
    inlined_fuel = inlined.fuel_for(5)
    fuel_ratio = baseline_fuel / inlined_fuel

    # Wall clock on a larger request so the guest call chain dominates
    # the host dispatch overhead.
    batches, per_batch = (4, 3) if quick else (8, 4)
    base_wall, inl_wall = _best_latency([baseline, inlined], 50,
                                        batches, per_batch)
    wall_speedup = base_wall / inl_wall

    tstats = inlined.controller.stats
    opt = inlined.controller.compiler.total_stats.opt
    engine = inlined.engine_stats()
    planned_sites = [targets
                     for p in inlined.controller.compiler.processed
                     for _, targets in p.request.inline_plan]
    max_targets = max((len(t) for t in planned_sites), default=0)
    rows = [
        ["fuel / schedule(5) (staged tier 2)", baseline_fuel,
         "PR 7 pipeline, inline off"],
        ["fuel / schedule(5) (inlined)", inlined_fuel,
         f"{fuel_ratio:.2f}x less interpreter work"],
        ["steady-state (staged tier 2)", f"{base_wall * 1e6:.0f}us/req",
         "schedule(50) best-of"],
        ["steady-state (inlined)", f"{inl_wall * 1e6:.0f}us/req",
         f"{wall_speedup:.2f}x faster"],
        ["inline sites planned", tstats.inline_sites_planned,
         f"rejected={tstats.inline_candidates_rejected}, widest "
         f"guard chain {max_targets} targets"],
        ["splices committed", opt.inline_committed,
         f"attempted={opt.inline_attempted} "
         f"rejected_size={opt.inline_rejected_size}"],
        ["guards in residuals",
         "{entry} entry / {site} site / {resuming} resuming".format(
             **guard_kind_counts(inlined.rt.module.functions.values())),
         "site guards protect the spliced bodies"],
        ["guard misses / site demotions",
         f"{tstats.site_misses} / {tstats.site_demotions}",
         "steady chain stays speculated"],
        ["engine inline-plan requests", engine.inline_requests,
         f"of {engine.requests} total"],
    ]
    report = ("Speculative inlining — hot call-chain service "
              "(3 monomorphic + 1 polymorphic site)\n" +
              format_table(["metric", "value", "detail"], rows) +
              "\n\n" + inlined.controller.report())
    write_result("inlining", report)

    # --- regression guards -------------------------------------------
    assert fuel_ratio >= 1.2, (
        f"inlined fuel only {fuel_ratio:.2f}x better than staged tier 2 "
        f"({baseline_fuel} vs {inlined_fuel}, need >= 1.2x)")
    assert wall_speedup >= 1.05, (
        f"inlined steady-state only {wall_speedup:.2f}x faster "
        f"({base_wall * 1e6:.0f}us vs {inl_wall * 1e6:.0f}us)")
    assert tstats.inline_sites_planned >= 4  # all four schedule sites
    assert max_targets >= 2  # the f(i) site carries a polymorphic chain
    assert opt.inline_committed >= 4
    assert tstats.site_misses == 0 and tstats.site_demotions == 0
    assert engine.inline_requests > 0


def test_inlining_warm_store(benchmark, request, tmp_path):
    """Replaying the inlined service against a populated artifact store
    must load every residual — inline plans included — from disk: zero
    fresh specializations on the warm path."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    store = str(tmp_path / "store")

    cold = Service(CALLCHAIN_SERVICE, cache_dir=store, **STAGED, **INLINE)
    reference = cold.settle()
    cold_engine = cold.engine_stats()
    assert cold_engine.functions_specialized > 0
    assert cold_engine.artifacts_written > 0

    warm = Service(CALLCHAIN_SERVICE, cache_dir=store, **STAGED, **INLINE)
    assert warm.settle() == reference
    warm_engine = warm.engine_stats()
    rows = [
        ["cold specializations", cold_engine.functions_specialized,
         f"{cold_engine.artifacts_written} artifacts written"],
        ["warm specializations", warm_engine.functions_specialized,
         f"{warm_engine.artifact_hits} artifact hits"],
        ["warm inline-plan requests", warm_engine.inline_requests,
         "served from the store"],
        ["warm sites planned",
         warm.controller.stats.inline_sites_planned,
         f"misses={warm.controller.stats.site_misses}"],
    ]
    report = ("Speculative inlining — warm artifact store replay\n" +
              format_table(["metric", "value", "detail"], rows))
    write_result("inlining_warm_store", report)

    assert warm_engine.functions_specialized == 0, (
        f"warm store replay specialized "
        f"{warm_engine.functions_specialized} functions fresh")
    assert warm_engine.artifact_hits > 0
    assert warm_engine.inline_requests > 0
    assert warm.controller.stats.inline_sites_planned >= 4
    assert warm.controller.stats.site_misses == 0
