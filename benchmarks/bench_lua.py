"""S7: MiniLua interpreter-heavy benchmarks, interpreted vs wevaled.

Paper: a three-hour port of PUC-Rio Lua reaches 1.84x on trivial
interpreter-heavy benchmarks with context annotations only (no state
intrinsics).  Shape targets: every benchmark speeds up; the factor is
meaningful but smaller than MiniJS's state-opt numbers, since frame
registers stay in memory.
"""

import pytest

from conftest import write_result
from repro.bench import format_table, geomean
from repro.luavm import LuaRuntime

PROGRAMS = {
    "fib": """
function fib(n)
  if n < 2 then return n end
  return fib(n-1) + fib(n-2)
end
print(fib(14))
""",
    "sumloop": """
function sumloop(n)
  local total = 0
  for i = 1, n do
    total = total + i * i
  end
  return total
end
print(sumloop(800))
""",
    "nested": """
function inner(a, b)
  return a * b + a - b
end
function outer(n)
  local acc = 0
  for i = 1, n do
    for j = 1, 5 do
      acc = acc + inner(i, j)
    end
  end
  return acc % 1000000
end
print(outer(120))
""",
}


@pytest.fixture(scope="module")
def lua_results():
    results = {}
    for name, source in PROGRAMS.items():
        rt = LuaRuntime(source)
        vm_interp = rt.run_interpreted()
        interp_out = list(rt.printed)
        rt.printed.clear()
        rt.aot_compile()
        vm_aot = rt.run_aot()
        assert rt.printed == interp_out, name
        results[name] = (interp_out, vm_interp.stats.fuel,
                         vm_aot.stats.fuel)
    return results


def test_lua_speedup_table(benchmark, lua_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    ratios = []
    for name, (out, interp, aot) in lua_results.items():
        ratio = interp / aot
        ratios.append(ratio)
        rows.append([name, out[0], interp, aot, f"{ratio:.2f}x"])
    rows.append(["geomean", "", "", "", f"{geomean(ratios):.2f}x"])
    write_result("lua",
                 "S7 analog — MiniLua interpreted vs wevaled (context "
                 "annotations only)\n" + format_table(
                     ["benchmark", "output", "interp fuel", "aot fuel",
                      "speedup"], rows))
    # Shape: all benchmarks improve; dispatch-removal-only territory
    # (paper: 1.84x), clearly positive but not unbounded.
    assert all(r > 1.3 for r in ratios)
    assert geomean(ratios) > 1.8


def test_lua_annotation_overhead(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """S7 reports a +173/-57-line diff for the whole port.  Our
    interpreter's weval annotations are similarly tiny: count them."""
    from repro.luavm.runtime import LUA_INTERP_SRC
    annotations = [l for l in LUA_INTERP_SRC.splitlines()
                   if "weval_" in l]
    total = [l for l in LUA_INTERP_SRC.splitlines() if l.strip()]
    assert 0 < len(annotations) <= 25
    assert len(annotations) / len(total) < 0.2


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_lua_wall_clock(benchmark, name):
    rt = LuaRuntime(PROGRAMS[name])
    rt.aot_compile()
    benchmark.pedantic(rt.run_aot, rounds=2, iterations=1)
