"""S3.4 ablation: naive max-SSA vs the minimal-cut strategy.

Paper: passing all values as block parameters everywhere yields up to a
5x increase in block-parameter count and much slower compilation of the
result.  Shape targets: the naive mode produces several-fold more block
parameters (before cleanup) and both modes execute identically.
"""

import pytest

from conftest import write_result
from repro.bench import format_table
from repro.core import (
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    specialize,
)
from repro.core.specialize import SpecializeOptions
from repro.min import PROGRAM_BASE, build_min_module, sum_to_n_program
from repro.vm import VM


@pytest.fixture(scope="module")
def ablation():
    program = sum_to_n_program(500)
    results = {}
    for mode in ("minimal", "naive"):
        module = build_min_module(program)
        request = SpecializationRequest(
            "min_interp",
            [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
             SpecializedConst(len(program.words)), Runtime()],
            specialized_name=f"min_{mode}")
        raw = specialize(module, request,
                         SpecializeOptions(ssa_mode=mode, optimize=False))
        params_raw = raw.total_block_params()
        module2 = build_min_module(program)
        opt = specialize(module2, request,
                         SpecializeOptions(ssa_mode=mode, optimize=True))
        module2.add_function(opt)
        vm = VM(module2)
        value = vm.call(opt.name, [PROGRAM_BASE, len(program.words), 0])
        results[mode] = {
            "params_raw": params_raw,
            "params_opt": opt.total_block_params(),
            "blocks": opt.num_blocks(),
            "result": value,
            "fuel": vm.stats.fuel,
        }
    return results, program


def test_ablation_table(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results, program = ablation
    rows = [[mode, r["params_raw"], r["params_opt"], r["blocks"],
             r["fuel"]]
            for mode, r in results.items()]
    write_result("ssa_repair_ablation",
                 "S3.4 ablation — block parameters, naive vs minimal\n" +
                 format_table(["mode", "raw params", "post-opt params",
                               "blocks", "fuel"], rows))
    minimal = results["minimal"]
    naive = results["naive"]
    assert naive["result"] == minimal["result"] == \
        sum(range(501))
    # The paper's headline: several-fold parameter blow-up (up to 5x).
    assert naive["params_raw"] >= 3 * max(minimal["params_raw"], 1)


def test_naive_mode_compiles_slower(benchmark, ablation):
    """Specialization wall-clock in naive mode (compare against the
    minimal run in the pytest-benchmark table)."""
    program = sum_to_n_program(200)
    module = build_min_module(program)
    request = SpecializationRequest(
        "min_interp",
        [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
         SpecializedConst(len(program.words)), Runtime()])

    def run_naive():
        return specialize(module, request,
                          SpecializeOptions(ssa_mode="naive",
                                            optimize=False))

    benchmark.pedantic(run_naive, rounds=2, iterations=1)


def test_minimal_mode_compile_time(benchmark):
    program = sum_to_n_program(200)
    module = build_min_module(program)
    request = SpecializationRequest(
        "min_interp",
        [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
         SpecializedConst(len(program.words)), Runtime()])

    def run_minimal():
        return specialize(module, request,
                          SpecializeOptions(optimize=False))

    benchmark.pedantic(run_minimal, rounds=2, iterations=1)
