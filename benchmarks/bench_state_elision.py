"""S6.2 statistics: load/store elision by the state intrinsics.

Paper: across Octane, the virtualized stack intrinsics elide ~84% of
loads and ~76% of stores; the locals intrinsics elide less (~14%/~5%)
because GC safepoints (here: flushes at calls/allocations) force values
back to memory.  Shape target: stack elision high, locals elision lower.
"""

import pytest

from conftest import write_result
from repro.bench import format_table
from repro.core.stats import SpecializationStats
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS

SUBSET = ("richards", "deltablue", "raytrace", "splay", "box2d", "crypto")


@pytest.fixture(scope="module")
def totals():
    total = SpecializationStats()
    for name in SUBSET:
        rt = JSRuntime(WORKLOADS[name], "wevaled_state")
        rt.aot_compile()
        total.merge(rt.compiler.total_stats)
    return total


def test_elision_table(benchmark, totals):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        ["stack loads", totals.stack_loads_elided,
         totals.stack_loads_real,
         f"{totals.stack_load_elision_rate():.0%}"],
        ["stack stores", totals.stack_stores_elided,
         totals.stack_stores_real,
         f"{totals.stack_store_elision_rate():.0%}"],
        ["local loads", totals.local_loads_elided,
         totals.local_loads_real,
         f"{totals.local_load_elision_rate():.0%}"],
        ["local stores", totals.local_stores_elided,
         totals.local_stores_real,
         f"{totals.local_store_elision_rate():.0%}"],
    ]
    write_result("state_elision",
                 "S6.2 analog — state-intrinsic elision (static sites, "
                 "suite subset)\n" + format_table(
                     ["kind", "elided", "real", "elision rate"], rows))
    # Shape: stack elision is high; locals are flushed at safepoints so
    # their store elision is lower than the stack's.
    assert totals.stack_load_elision_rate() > 0.5
    assert totals.stack_store_elision_rate() > 0.3
    assert (totals.local_store_elision_rate()
            <= totals.stack_store_elision_rate() + 0.05)


def test_state_opt_reduces_dynamic_memory_traffic(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Dynamic check on one workload: the state-opt configuration issues
    far fewer real loads/stores at run time."""
    name = "richards"
    loads = {}
    for config in ("wevaled", "wevaled_state"):
        rt = JSRuntime(WORKLOADS[name], config)
        vm = rt.run()
        loads[config] = (vm.stats.loads, vm.stats.stores)
    assert loads["wevaled_state"][0] < loads["wevaled"][0] * 0.7
    assert loads["wevaled_state"][1] < loads["wevaled"][1] * 0.8
