"""S6.2 statistics: load/store elision by the state intrinsics.

Paper: across Octane, the virtualized stack intrinsics elide ~84% of
loads and ~76% of stores; the locals intrinsics elide less (~14%/~5%)
because GC safepoints (here: flushes at calls/allocations) force values
back to memory.  Shape target: stack elision high, locals elision lower.
"""

import pytest

from conftest import write_result
from repro.bench import format_table
from repro.core.stats import SpecializationStats
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS

SUBSET = ("richards", "deltablue", "raytrace", "splay", "box2d", "crypto")


@pytest.fixture(scope="module")
def totals():
    total = SpecializationStats()
    for name in SUBSET:
        rt = JSRuntime(WORKLOADS[name], "wevaled_state")
        rt.aot_compile()
        total.merge(rt.compiler.total_stats)
    return total


def test_elision_table(benchmark, totals):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        ["stack loads", totals.stack_loads_elided,
         totals.stack_loads_real,
         f"{totals.stack_load_elision_rate():.0%}"],
        ["stack stores", totals.stack_stores_elided,
         totals.stack_stores_real,
         f"{totals.stack_store_elision_rate():.0%}"],
        ["local loads", totals.local_loads_elided,
         totals.local_loads_real,
         f"{totals.local_load_elision_rate():.0%}"],
        ["local stores", totals.local_stores_elided,
         totals.local_stores_real,
         f"{totals.local_store_elision_rate():.0%}"],
    ]
    write_result("state_elision",
                 "S6.2 analog — state-intrinsic elision (static sites, "
                 "suite subset)\n" + format_table(
                     ["kind", "elided", "real", "elision rate"], rows))
    # Shape: stack elision is high; locals are flushed at safepoints so
    # their store elision is lower than the stack's.
    assert totals.stack_load_elision_rate() > 0.5
    assert totals.stack_store_elision_rate() > 0.3
    assert (totals.local_store_elision_rate()
            <= totals.stack_store_elision_rate() + 0.05)


def test_state_opt_reduces_dynamic_memory_traffic(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Dynamic check on one workload: the state-opt configuration issues
    far fewer real loads/stores at run time.

    Threshold calibration (measured on richards): against the
    *unoptimized* ``wevaled`` baseline (``opt_config="none"``) the state
    intrinsics elide most traffic — 12731 vs 31025 loads (0.41x) and
    1637 vs 32019 stores (0.05x).  The original 0.7x loads threshold
    predates the mid-end: its load-forwarding pass now removes redundant
    interpreter-frame loads from the *baseline* configuration too
    (31025 -> 16586), so the ratio against the optimized baseline is
    0.77x — the baseline got better, not the state opt worse.  We assert
    both views: a strong bound against the unoptimized baseline (what
    the intrinsics alone buy, the paper's S6.2 comparison) and a looser
    bound against the fully optimized one (the intrinsics still beat
    general-purpose load forwarding, which must respect aliasing the
    virtualized state does not)."""
    from repro.core.specialize import SpecializeOptions

    name = "richards"
    traffic = {}
    for config, opt_config in (("wevaled", "none"),
                               ("wevaled", "default"),
                               ("wevaled_state", "default")):
        rt = JSRuntime(WORKLOADS[name], config,
                       options=SpecializeOptions(opt_config=opt_config))
        vm = rt.run()
        traffic[(config, opt_config)] = (vm.stats.loads, vm.stats.stores)
    state_loads, state_stores = traffic[("wevaled_state", "default")]
    raw_loads, raw_stores = traffic[("wevaled", "none")]
    opt_loads, opt_stores = traffic[("wevaled", "default")]
    # vs the unoptimized interpreter frame traffic (measured 0.41/0.05).
    assert state_loads < raw_loads * 0.5
    assert state_stores < raw_stores * 0.1
    # vs the mid-end-optimized baseline (measured 0.77/0.05).
    assert state_loads < opt_loads * 0.85
    assert state_stores < opt_stores * 0.1
