"""Runtime tiering: time-to-first-result, steady state, promotions.

The production question PR 5 answers: a server cannot afford to weval
its whole snapshot before the first request (cold AOT front-loads the
entire compile cost), but it also cannot stay on the generic
interpreter.  This bench runs a host-driven *service* — the embedder
dispatches requests into guest handlers through the ``spec`` slots,
exactly like the guest-level dispatch the runtimes use — under three
strategies and reports:

* **time-to-first-result** — cold start (strategy setup + first request)
  to the first response, best of two fresh services per strategy;
* **steady-state latency** — best-observed request latency once every
  tier has settled, over interleaved measurement batches (tiered must
  be within 10% of the AOT tier-2 throughput — identical compiled code
  at that point, so the guard catches real per-call overhead while
  staying robust to machine noise);
* **time-to-steady-state** — when the last promotion landed;
* **promotion counts** — on the mixed hot/cold workload, dynamic tier-up
  must compile only the hot subset, while AOT pays for every function
  and every IC stub up front.

Workloads: the richards kernel served as repeated ``schedule(1)``
requests (``schedule(5)`` for the steady-state windows), and a mixed
service with 12 cold endpoints (each hit once at startup) plus 2 hot
ones.

Regression guards (CI, ``--quick``): tiered time-to-first-result beats
cold AOT by >= 5x on richards, and tiered steady-state stays within 10%
of AOT.  Measured locally (py backend): AOT ttfr ~220ms vs tiered
~35ms (~6x), steady ~2.3ms per schedule(5) both (ratio ~1.0), 9
promotions vs 24 AOT compiles; mixed workload promotes 2 hot functions
+ their stubs out of 14 registered functions.
"""

import time

from conftest import write_result
from repro.bench import format_table, guard_kind_counts
from repro.core.specialize import SpecializeOptions
from repro.jsvm import JSRuntime
from repro.jsvm.runtime import SPEC_FIELD_WORD
from repro.jsvm.values import VALUE_UNDEFINED, box_double, unbox_double

RICHARDS_SERVICE = """
function makeTask(id, priority) {
  return {id: id, priority: priority, state: 0, count: 0, run: taskRun};
}
function taskRun(quantum) {
  var i = 0;
  while (i < quantum) {
    this.count = this.count + this.priority;
    this.state = (this.state + 1) % 3;
    i++;
  }
  return this.count;
}
function schedule(rounds) {
  var t1 = makeTask(1, 1);
  var t2 = makeTask(2, 2);
  var t3 = makeTask(3, 3);
  var total = 0;
  for (var r = 0; r < rounds; r++) {
    total = total + t1.run(4) + t2.run(3) + t3.run(2);
  }
  return total;
}
print(0);
"""


def _cold_fn(index):
    """One cold endpoint: distinct body so each is its own
    specialization unit (and its own AOT cost)."""
    return (f"function cold{index}(x) {{\n"
            f"  var acc = x + {index};\n"
            f"  var obj = {{a: acc, b: {index}}};\n"
            f"  var i = 0;\n"
            f"  while (i < {2 + index % 3}) {{\n"
            f"    obj.a = obj.a * 2 - obj.b;\n"
            f"    i = i + 1;\n"
            f"  }}\n"
            f"  return obj.a;\n"
            f"}}\n")


N_COLD = 12

MIXED_SERVICE = "".join(_cold_fn(i) for i in range(N_COLD)) + """
function hotPoly(n) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc * 3 + i * i - 1;
    i = i + 1;
  }
  return acc;
}
function hotObj(n) {
  var o = {value: 0, step: 2};
  var i = 0;
  while (i < n) {
    o.value = o.value + o.step;
    i = i + 1;
  }
  return o.value;
}
function startup(x) {
  var acc = 0;
""" + "".join(f"  acc = acc + cold{i}(x);\n" for i in range(N_COLD)) + """
  return acc;
}
print(0);
"""


class Service:
    """A JS runtime served host-side: one guest handler per request,
    dispatched through the function's ``spec`` slot (specialized when
    present, generic interpreter otherwise) — the same dispatch shape
    the guest-level CALL opcode uses."""

    def __init__(self, source: str, mode: str, threshold=None):
        self.rt = JSRuntime(source, "wevaled_state",
                            options=SpecializeOptions(backend="py"))
        self.structs = {f.name: self.rt.func_addrs[f.index]
                        for f in self.rt.compiled.functions}
        start = time.perf_counter()
        if mode == "aot":
            self.vm = self.rt.run()
        else:
            self.vm = self.rt.run(mode="tiered", threshold=threshold)
        self.setup_seconds = time.perf_counter() - start
        self.controller = self.rt.controller

    def serve(self, name: str, arg: float) -> float:
        vm, rt = self.vm, self.rt
        struct = self.structs[name]
        vm.store_u64(rt.frame_base, VALUE_UNDEFINED)
        vm.store_u64(rt.frame_base + 8, box_double(float(arg)))
        spec = vm.load_u64(struct + SPEC_FIELD_WORD * 8)
        if spec:
            return unbox_double(vm.call_table(spec,
                                              [struct, rt.frame_base]))
        return unbox_double(vm.call(rt.generic_entry,
                                    [struct, rt.frame_base]))

    def promotions(self) -> int:
        return self.controller.stats.promotions if self.controller else 0


def _drive(service: Service, requests):
    """Serve ``(name, arg)`` requests; returns (results, latencies,
    time_to_steady) where time_to_steady is the elapsed time at the
    completion of the request that triggered the last promotion."""
    results, latencies = [], []
    start = time.perf_counter()
    time_to_steady = 0.0
    promotions = service.promotions()
    for name, arg in requests:
        begin = time.perf_counter()
        results.append(service.serve(name, arg))
        latencies.append(time.perf_counter() - begin)
        now_promotions = service.promotions()
        if now_promotions != promotions:
            promotions = now_promotions
            time_to_steady = time.perf_counter() - start
    return results, latencies, time_to_steady


def test_tiering_richards_service(benchmark, request):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick = request.config.getoption("--quick")
    n_requests = 40 if quick else 60
    requests = [("schedule", 1)] * n_requests

    # Cold start is a one-shot measurement per service, so take the
    # best of two fresh services per strategy — a CPU-frequency step or
    # scheduler hiccup during a single setup would otherwise dominate
    # the ratio.
    aot_ttfr = tiered_ttfr = float("inf")
    for attempt in range(2):
        aot = Service(RICHARDS_SERVICE, "aot")
        aot_results, aot_lat, _ = _drive(aot, requests)
        aot_ttfr = min(aot_ttfr, aot.setup_seconds + aot_lat[0])

        tiered = Service(RICHARDS_SERVICE, "tiered")
        tiered_results, tiered_lat, steady_at = _drive(tiered, requests)
        tiered_ttfr = min(tiered_ttfr,
                          tiered.setup_seconds + tiered_lat[0])

        assert tiered_results == aot_results  # identical responses

    # Steady-state: both services settled (every tier promoted and
    # compiled), so per-request work is identical code.  Use a larger
    # request (schedule(5), a few ms) so timer resolution and per-call
    # jitter shrink relative to the work, interleave the measurement
    # batches so machine-wide drift (frequency scaling, background
    # load) hits both equally, and compare best-observed latency —
    # robust to one-sided noise spikes in a way medians over small
    # separate windows are not.
    batch = [("schedule", 5)] * (4 if quick else 8)
    aot_warm, tiered_warm = [], []
    for _ in range(4):
        _, lat, _ = _drive(aot, batch)
        aot_warm.extend(lat)
        _, lat, _ = _drive(tiered, batch)
        tiered_warm.extend(lat)
    aot_steady = min(aot_warm)
    tiered_steady = min(tiered_warm)

    stats = tiered.controller.stats
    counts = tiered.controller.tier_counts()
    speedup = aot_ttfr / tiered_ttfr
    rows = [
        ["time-to-first-result (cold AOT)", f"{aot_ttfr * 1000:.1f}ms",
         f"setup {aot.setup_seconds * 1000:.0f}ms + request"],
        ["time-to-first-result (tiered)", f"{tiered_ttfr * 1000:.1f}ms",
         f"{speedup:.1f}x faster cold start"],
        ["time-to-steady-state (tiered)", f"{steady_at * 1000:.1f}ms",
         f"last promotion, {stats.promotions} total"],
        ["steady-state (AOT tier 2)", f"{aot_steady * 1e6:.0f}us/req",
         "all functions precompiled"],
        ["steady-state (tiered)", f"{tiered_steady * 1e6:.0f}us/req",
         f"ratio {tiered_steady / aot_steady:.2f}"],
        ["tiers settled", f"{counts[0]}/t0 {counts[1]}/t1 {counts[2]}/t2",
         f"promote time {stats.promote_seconds * 1000:.0f}ms"],
        ["guards in residuals (tiered)",
         "{entry} entry / {site} site / {resuming} resuming".format(
             **guard_kind_counts(tiered.rt.module.functions.values())),
         "this strategy speculates nothing"],
        ["deopt reasons (tiered)",
         f"entry={stats.deopts} site_miss={stats.site_misses} "
         f"site_demotion={stats.site_demotions}",
         f"demotions={stats.demotions}"],
    ]
    report = ("Runtime tiering — richards served as schedule(1) "
              "requests\n" +
              format_table(["metric", "value", "detail"], rows) +
              "\n\n" + tiered.controller.report())
    write_result("tiering", report)

    # --- regression guards -------------------------------------------
    assert speedup >= 5.0, (
        f"tiered time-to-first-result only {speedup:.2f}x better than "
        f"cold AOT (need >= 5x)")
    assert tiered_steady <= aot_steady * 1.10, (
        f"tiered steady-state {tiered_steady * 1e6:.0f}us/req vs AOT "
        f"{aot_steady * 1e6:.0f}us/req (allowed within 10%)")
    assert stats.promotions > 0 and counts[0] > 0  # genuinely tiered


def test_tiering_mixed_hot_cold(benchmark, request):
    """Mixed service: 12 cold endpoints hit once, 2 hot ones hammered.
    Dynamic tier-up must compile only the hot subset."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quick = request.config.getoption("--quick")
    n_hot = 30 if quick else 60
    requests = [("startup", 1)]
    for i in range(n_hot):
        requests.append(("hotPoly", 40) if i % 2 else ("hotObj", 40))

    aot = Service(MIXED_SERVICE, "aot")
    aot_results, aot_lat, _ = _drive(aot, requests)
    aot_ttfr = aot.setup_seconds + aot_lat[0]
    aot_compiled = len(aot.rt.compiler.processed)

    tiered = Service(MIXED_SERVICE, "tiered")
    tiered_results, tiered_lat, _ = _drive(tiered, requests)
    tiered_ttfr = tiered.setup_seconds + tiered_lat[0]

    assert tiered_results == aot_results
    stats = tiered.controller.stats
    counts = tiered.controller.tier_counts()
    registered = len(tiered.controller.profiles)
    rows = [
        ["AOT compiles (functions + stubs)", aot_compiled, "all up front"],
        ["tiered promotions", stats.promotions,
         f"of {registered} registered"],
        ["cold functions left on tier 0", counts[0],
         f"{N_COLD} cold endpoints + untouched stubs"],
        ["time-to-first-result (cold AOT)", f"{aot_ttfr * 1000:.1f}ms",
         ""],
        ["time-to-first-result (tiered)", f"{tiered_ttfr * 1000:.1f}ms",
         f"{aot_ttfr / tiered_ttfr:.1f}x faster"],
    ]
    report = ("Runtime tiering — mixed hot/cold service "
              f"({N_COLD} cold + 2 hot endpoints)\n" +
              format_table(["metric", "value", "detail"], rows) +
              "\n\n" + tiered.controller.report())
    write_result("tiering_mixed", report)

    # The whole point: dynamic tier-up compiles a strict subset.
    assert stats.promotions < aot_compiled
    assert counts[0] >= N_COLD  # every cold endpoint stayed generic
    assert tiered_ttfr < aot_ttfr
