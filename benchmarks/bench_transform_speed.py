"""S6.5: transform speed, the specialization cache, and the tier-2
backend speedup.

Paper: ~1 KLoC/s of JS, with a cache keyed on module hash + request
argument data that removes redundant work for the unchanging IC corpus
and speeds up incremental recompilation.  Shape targets: throughput is
measurable and the warm-cache recompile is much faster with high hit
rate.  The backend test additionally reports compile-vs-run time and
the interp-vs-compiled wall-clock speedup of the richards residual,
which must clear 3x (the whole point of tier 2).

``--quick`` (CI artifact mode) keeps every assertion and only reduces
the backend-speedup timing repeats (best-of-3 instead of best-of-5 —
never below 3, because the 3x assertion gates CI on shared runners).
"""

import os
import time

import pytest

from conftest import write_result
from repro.bench import (
    format_pipeline_stats,
    format_table,
    run_backend_comparison,
    run_engine_cache_report,
    run_profiled,
)
from repro.core import SpecializationCache
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS

NAME = "richards"

# CI persists this directory across runs (actions/cache keyed on the
# source hash), so the cold row there is only cold on the first run
# after a source change.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def _aot_seconds(cache=None, profiled=False):
    rt = JSRuntime(WORKLOADS[NAME], "wevaled_state", cache=cache)
    start = time.perf_counter()
    profile_table = None
    if profiled:
        _, profile_table = run_profiled(rt.aot_compile)
    else:
        rt.aot_compile()
    return time.perf_counter() - start, rt, profile_table


def test_transform_speed_and_cache(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cache = SpecializationCache()
    # Under REPRO_PROFILE=1 the cold AOT runs inside cProfile, so its
    # wall-clock row carries tracing overhead — labeled below.
    cold_seconds, rt, profile_table = _aot_seconds(cache, profiled=True)
    warm_seconds, rt2, _ = _aot_seconds(cache)
    source_lines = len([l for l in WORKLOADS[NAME].splitlines()
                        if l.strip()])
    loc_per_s = source_lines / max(cold_seconds, 1e-9)
    stats = rt.compiler.total_stats
    opt = stats.opt
    pass_runs = sum(p.runs for p in opt.per_pass.values())
    pass_skips = sum(p.skips for p in opt.per_pass.values())
    rows = [
        ["cold AOT" + (" (profiled)" if profile_table else ""),
         f"{cold_seconds:.2f}s", f"{loc_per_s:.0f} LoC/s"],
        ["warm AOT (cache)", f"{warm_seconds:.2f}s",
         f"hits={cache.hits} misses={cache.misses}"],
        ["specializer blocks", stats.blocks_specialized,
         f"revisits={stats.block_revisits} "
         f"(rate {stats.revisit_rate():.2f}/visit)"],
        ["specializer meets", stats.meets_performed,
         f"skipped={stats.meets_skipped} (inputs unchanged)"],
        # PR 5 compile-side satellites: sole-predecessor meets reuse the
        # predecessor's out-state instead of the slot-by-slot meet, and
        # _transcribe_instr dispatches through a precomputed per-opcode
        # table.  Measured on richards: cold AOT 0.25s -> ~0.18s
        # best-of-3 (~25% faster), output byte-identical (fixpoint tier
        # + goldens unchanged).
        ["single-pred fast meets", stats.meets_single_pred,
         f"{stats.meets_single_pred / max(stats.meets_performed, 1):.0%} "
         f"of meets bypass the slot walk"],
        ["lattice interning", f"{stats.intern_hit_rate():.1%} hits",
         f"hits={stats.intern_hits} misses={stats.intern_misses}"],
        ["mid-end", f"{opt.seconds:.2f}s",
         f"instrs {opt.instrs_before}->{opt.instrs_after} "
         f"rounds={opt.rounds} cap_hits={opt.fixpoint_cap_hits}"],
        ["mid-end scheduling", f"{pass_runs} pass runs",
         f"skipped={pass_skips} "
         f"(detector={opt.passes_skipped_nowork}, "
         f"{opt.workcheck_seconds:.3f}s in detectors)"],
    ]
    report = ("S6.5 analog — transform speed and cache\n" +
              format_table(["metric", "value", "detail"], rows) +
              "\n\nper-pass mid-end stats (cold AOT)\n" +
              format_pipeline_stats(opt))
    if profile_table:
        report += "\n\n" + profile_table
    write_result("transform_speed", report)
    # The mid-end must actually shrink the residual code it was fed.
    assert opt.instrs_after < opt.instrs_before
    assert cache.hits > 0
    assert warm_seconds < cold_seconds
    # --- transform-speed regression guards (PR 4 fixpoint engine) -----
    # Deterministic counters first: the priority worklist must keep
    # re-flows rare (seed engine: 4816 revisits, 0.86/visit; measured
    # now: 497, 0.38/visit), and two-level mid-end skipping must elide
    # at least half of the exhaustive pass executions (seed: 210 runs,
    # 0 skipped; measured now: 48 runs, 162 skipped).
    assert stats.block_revisits < 1000, (
        f"specializer re-flow regression: {stats.block_revisits} revisits")
    assert stats.revisit_rate() < 0.6, (
        f"specializer revisit rate regression: {stats.revisit_rate():.2f}")
    assert pass_runs * 2 <= pass_runs + pass_skips, (
        f"mid-end dirty-set regression: {pass_runs} runs vs "
        f"{pass_skips} skips (need >= 2x reduction)")
    # Reducible interpreter CFGs make one-predecessor blocks dominant;
    # the sole-contributor fast path must cover most meets (measured:
    # ~89% on richards).
    assert stats.meets_single_pred * 2 >= stats.meets_performed, (
        f"single-pred meet fast path regression: "
        f"{stats.meets_single_pred} of {stats.meets_performed}")
    # Wall-clock guard, with generous slack for shared CI runners and
    # cProfile overhead (measured locally: ~90 LoC/s un-profiled against
    # the 33 LoC/s seed baseline).
    assert loc_per_s >= 20, (
        f"cold AOT throughput regression: {loc_per_s:.0f} LoC/s")
    # Functional equivalence after a cached compile.
    vm = rt2.run()
    assert rt2.printed == ["13120"]


def test_backend_speedup(benchmark, request):
    """Interp-vs-compiled execution of the richards residual (tier 2).

    One AOT compile, then the same snapshot runs both ways; prints and
    fuel must be identical (asserted inside the harness helper), and the
    compiled backend must be at least 3x faster in wall-clock terms.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Keep best-of-3 smoothing even in --quick mode: the timed runs are
    # tens of milliseconds and the 3x assertion gates CI, so robustness
    # against a noisy shared runner matters more than the saved rounds.
    repeats = 3 if request.config.getoption("--quick") else 5
    cmp = run_backend_comparison(NAME, "wevaled_state", repeats=repeats)
    rows = [
        ["specialize (AOT)", f"{cmp.aot_seconds:.2f}s",
         f"{cmp.compiled_functions} residual functions"],
        ["backend compile", f"{cmp.backend_compile_seconds:.3f}s",
         f"fallbacks={cmp.backend_fallbacks}"],
        ["dispatch targets",
         f"{cmp.residual_blocks}->{cmp.dispatch_blocks}",
         f"{cmp.fallthrough_links} jumps became fall-through"],
        ["run (IR VM)", f"{cmp.wall_vm_seconds * 1000:.1f}ms",
         f"fuel={cmp.fuel}"],
        ["run (py backend)", f"{cmp.wall_py_seconds * 1000:.1f}ms",
         "fuel identical (asserted)"],
        ["speedup", f"{cmp.speedup:.2f}x", "interp vs compiled"],
    ]
    # Engine artifact cache: cold vs warm compile, serial vs pooled.
    # (The warm-start contract — zero functions specialized, residual IR
    # byte-identical — is asserted inside the helper.)
    for jobs in (1, 4):
        report = run_engine_cache_report(
            NAME, "wevaled_state", jobs=jobs,
            cache_dir=(CACHE_DIR if jobs == 1 else None))
        rows.append(
            [f"engine AOT cold (jobs={jobs})",
             f"{report.cold_seconds:.2f}s",
             f"{report.cold_specialized} specialized, "
             f"{report.requests} requests"])
        rows.append(
            [f"engine AOT warm (jobs={jobs})",
             f"{report.warm_seconds:.2f}s",
             f"{report.warm_artifact_hits} artifact hits, "
             f"0 specialized"])
        assert report.warm_seconds < report.cold_seconds or \
            report.cold_specialized == 0  # pre-warmed CI cache dir
    write_result("backend_speedup",
                 "Tier-2 backend — %s (%s)\n%s" % (
                     NAME, cmp.config,
                     format_table(["metric", "value", "detail"], rows)))
    assert cmp.backend_fallbacks == 0
    assert cmp.fallthrough_links > 0  # the scheduler found jump chains
    assert cmp.speedup >= 3.0, (
        f"py backend speedup {cmp.speedup:.2f}x < 3x on {NAME}")


def test_code_object_cache_warm_start(benchmark, tmp_path):
    """Tier 3½ (PR 10): the artifact store persists ``compile()``d code
    objects (marshal, keyed by interpreter magic) beside emitted source,
    so a warm start skips Python parse+compile entirely.

    One cold compile populates the store in ``codegen="code"`` mode;
    then two fresh warm runtimes replay it — one decoding the stored
    code objects, one forced back to source — and the code path must
    report a code hit for every source hit while producing the same
    residuals (byte-identity is the engine warm-start contract asserted
    elsewhere; here both paths must at least *run* identically)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.core.specialize import SpecializeOptions
    store = str(tmp_path / "store")

    def aot(codegen):
        rt = JSRuntime(WORKLOADS[NAME], "wevaled_state",
                       options=SpecializeOptions(backend="py",
                                                 codegen=codegen,
                                                 cache_dir=store))
        start = time.perf_counter()
        rt.aot_compile()
        return time.perf_counter() - start, rt

    cold_seconds, rt_cold = aot("code")
    warm_src_seconds, rt_src = aot("source")
    warm_code_seconds, rt_code = aot("code")
    src_stats = rt_src.compiler.engine.stats
    code_stats = rt_code.compiler.engine.stats
    rows = [
        ["cold AOT (codegen=code)", f"{cold_seconds:.2f}s",
         f"{rt_cold.compiler.engine.stats.functions_specialized} "
         f"specialized, store populated"],
        ["warm AOT (source cache)", f"{warm_src_seconds:.3f}s",
         f"{src_stats.backend_source_hits} source hits, "
         f"{src_stats.backend_code_hits} code hits"],
        ["warm AOT (code-object cache)", f"{warm_code_seconds:.3f}s",
         f"{code_stats.backend_code_hits} code hits "
         f"(compile() skipped)"],
    ]
    write_result("transform_speed_code_cache",
                 "Tier 3½ — precompiled-code warm start\n" +
                 format_table(["metric", "value", "detail"], rows))
    assert code_stats.functions_specialized == 0
    assert src_stats.functions_specialized == 0
    # The source-mode replay must never decode code objects; the
    # code-mode replay must decode one per stored source hit.
    assert src_stats.backend_code_hits == 0
    assert code_stats.backend_code_hits > 0
    assert code_stats.backend_code_hits == code_stats.backend_source_hits
    vm = rt_code.run()
    assert rt_code.printed == ["13120"]


def test_cache_is_invalidated_by_bytecode_change(benchmark):
    """Different bytecode (different constant) must miss the cache."""
    cache = SpecializationCache()
    rt_a = JSRuntime(WORKLOADS[NAME], "wevaled_state", cache=cache)
    rt_a.aot_compile()
    misses_before = cache.misses
    changed = WORKLOADS[NAME].replace("schedule(40)", "schedule(41)")
    rt_b = JSRuntime(changed, "wevaled_state", cache=cache)
    rt_b.aot_compile()
    assert cache.misses > misses_before  # main's bytecode changed

    def run():
        return rt_b.run()

    benchmark.pedantic(run, rounds=2, iterations=1)
