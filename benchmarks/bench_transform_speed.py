"""S6.5: transform speed, the specialization cache, and the tier-2
backend speedup.

Paper: ~1 KLoC/s of JS, with a cache keyed on module hash + request
argument data that removes redundant work for the unchanging IC corpus
and speeds up incremental recompilation.  Shape targets: throughput is
measurable and the warm-cache recompile is much faster with high hit
rate.  The backend test additionally reports compile-vs-run time and
the interp-vs-compiled wall-clock speedup of the richards residual,
which must clear 3x (the whole point of tier 2).

``--quick`` (CI artifact mode) keeps every assertion and only reduces
the backend-speedup timing repeats (best-of-3 instead of best-of-5 —
never below 3, because the 3x assertion gates CI on shared runners).
"""

import os
import time

import pytest

from conftest import write_result
from repro.bench import (
    format_pipeline_stats,
    format_table,
    run_backend_comparison,
    run_engine_cache_report,
)
from repro.core import SpecializationCache
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS

NAME = "richards"

# CI persists this directory across runs (actions/cache keyed on the
# source hash), so the cold row there is only cold on the first run
# after a source change.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def _aot_seconds(cache=None):
    rt = JSRuntime(WORKLOADS[NAME], "wevaled_state", cache=cache)
    start = time.perf_counter()
    rt.aot_compile()
    return time.perf_counter() - start, rt


def test_transform_speed_and_cache(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cache = SpecializationCache()
    cold_seconds, rt = _aot_seconds(cache)
    warm_seconds, rt2 = _aot_seconds(cache)
    source_lines = len([l for l in WORKLOADS[NAME].splitlines()
                        if l.strip()])
    stats = rt.compiler.total_stats
    rows = [
        ["cold AOT", f"{cold_seconds:.2f}s",
         f"{source_lines / max(cold_seconds, 1e-9):.0f} LoC/s"],
        ["warm AOT (cache)", f"{warm_seconds:.2f}s",
         f"hits={cache.hits} misses={cache.misses}"],
        ["specializer blocks", stats.blocks_specialized,
         f"revisits={stats.block_revisits}"],
        ["mid-end", f"{stats.opt.seconds:.2f}s",
         f"instrs {stats.opt.instrs_before}->{stats.opt.instrs_after} "
         f"rounds={stats.opt.rounds} "
         f"cap_hits={stats.opt.fixpoint_cap_hits}"],
    ]
    write_result("transform_speed",
                 "S6.5 analog — transform speed and cache\n" +
                 format_table(["metric", "value", "detail"], rows) +
                 "\n\nper-pass mid-end stats (cold AOT)\n" +
                 format_pipeline_stats(stats.opt))
    # The mid-end must actually shrink the residual code it was fed.
    assert stats.opt.instrs_after < stats.opt.instrs_before
    assert cache.hits > 0
    assert warm_seconds < cold_seconds
    # Functional equivalence after a cached compile.
    vm = rt2.run()
    assert rt2.printed == ["13120"]


def test_backend_speedup(benchmark, request):
    """Interp-vs-compiled execution of the richards residual (tier 2).

    One AOT compile, then the same snapshot runs both ways; prints and
    fuel must be identical (asserted inside the harness helper), and the
    compiled backend must be at least 3x faster in wall-clock terms.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Keep best-of-3 smoothing even in --quick mode: the timed runs are
    # tens of milliseconds and the 3x assertion gates CI, so robustness
    # against a noisy shared runner matters more than the saved rounds.
    repeats = 3 if request.config.getoption("--quick") else 5
    cmp = run_backend_comparison(NAME, "wevaled_state", repeats=repeats)
    rows = [
        ["specialize (AOT)", f"{cmp.aot_seconds:.2f}s",
         f"{cmp.compiled_functions} residual functions"],
        ["backend compile", f"{cmp.backend_compile_seconds:.3f}s",
         f"fallbacks={cmp.backend_fallbacks}"],
        ["dispatch targets",
         f"{cmp.residual_blocks}->{cmp.dispatch_blocks}",
         f"{cmp.fallthrough_links} jumps became fall-through"],
        ["run (IR VM)", f"{cmp.wall_vm_seconds * 1000:.1f}ms",
         f"fuel={cmp.fuel}"],
        ["run (py backend)", f"{cmp.wall_py_seconds * 1000:.1f}ms",
         "fuel identical (asserted)"],
        ["speedup", f"{cmp.speedup:.2f}x", "interp vs compiled"],
    ]
    # Engine artifact cache: cold vs warm compile, serial vs pooled.
    # (The warm-start contract — zero functions specialized, residual IR
    # byte-identical — is asserted inside the helper.)
    for jobs in (1, 4):
        report = run_engine_cache_report(
            NAME, "wevaled_state", jobs=jobs,
            cache_dir=(CACHE_DIR if jobs == 1 else None))
        rows.append(
            [f"engine AOT cold (jobs={jobs})",
             f"{report.cold_seconds:.2f}s",
             f"{report.cold_specialized} specialized, "
             f"{report.requests} requests"])
        rows.append(
            [f"engine AOT warm (jobs={jobs})",
             f"{report.warm_seconds:.2f}s",
             f"{report.warm_artifact_hits} artifact hits, "
             f"0 specialized"])
        assert report.warm_seconds < report.cold_seconds or \
            report.cold_specialized == 0  # pre-warmed CI cache dir
    write_result("backend_speedup",
                 "Tier-2 backend — %s (%s)\n%s" % (
                     NAME, cmp.config,
                     format_table(["metric", "value", "detail"], rows)))
    assert cmp.backend_fallbacks == 0
    assert cmp.fallthrough_links > 0  # the scheduler found jump chains
    assert cmp.speedup >= 3.0, (
        f"py backend speedup {cmp.speedup:.2f}x < 3x on {NAME}")


def test_cache_is_invalidated_by_bytecode_change(benchmark):
    """Different bytecode (different constant) must miss the cache."""
    cache = SpecializationCache()
    rt_a = JSRuntime(WORKLOADS[NAME], "wevaled_state", cache=cache)
    rt_a.aot_compile()
    misses_before = cache.misses
    changed = WORKLOADS[NAME].replace("schedule(40)", "schedule(41)")
    rt_b = JSRuntime(changed, "wevaled_state", cache=cache)
    rt_b.aot_compile()
    assert cache.misses > misses_before  # main's bytecode changed

    def run():
        return rt_b.run()

    benchmark.pedantic(run, rounds=2, iterations=1)
