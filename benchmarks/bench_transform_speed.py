"""S6.5: transform speed and the specialization cache.

Paper: ~1 KLoC/s of JS, with a cache keyed on module hash + request
argument data that removes redundant work for the unchanging IC corpus
and speeds up incremental recompilation.  Shape targets: throughput is
measurable and the warm-cache recompile is much faster with high hit
rate.
"""

import time

import pytest

from conftest import write_result
from repro.bench import format_pipeline_stats, format_table
from repro.core import SpecializationCache
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS

NAME = "richards"


def _aot_seconds(cache=None):
    rt = JSRuntime(WORKLOADS[NAME], "wevaled_state", cache=cache)
    start = time.perf_counter()
    rt.aot_compile()
    return time.perf_counter() - start, rt


def test_transform_speed_and_cache(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cache = SpecializationCache()
    cold_seconds, rt = _aot_seconds(cache)
    warm_seconds, rt2 = _aot_seconds(cache)
    source_lines = len([l for l in WORKLOADS[NAME].splitlines()
                        if l.strip()])
    stats = rt.compiler.total_stats
    rows = [
        ["cold AOT", f"{cold_seconds:.2f}s",
         f"{source_lines / max(cold_seconds, 1e-9):.0f} LoC/s"],
        ["warm AOT (cache)", f"{warm_seconds:.2f}s",
         f"hits={cache.hits} misses={cache.misses}"],
        ["specializer blocks", stats.blocks_specialized,
         f"revisits={stats.block_revisits}"],
        ["mid-end", f"{stats.opt.seconds:.2f}s",
         f"instrs {stats.opt.instrs_before}->{stats.opt.instrs_after} "
         f"rounds={stats.opt.rounds} "
         f"cap_hits={stats.opt.fixpoint_cap_hits}"],
    ]
    write_result("transform_speed",
                 "S6.5 analog — transform speed and cache\n" +
                 format_table(["metric", "value", "detail"], rows) +
                 "\n\nper-pass mid-end stats (cold AOT)\n" +
                 format_pipeline_stats(stats.opt))
    # The mid-end must actually shrink the residual code it was fed.
    assert stats.opt.instrs_after < stats.opt.instrs_before
    assert cache.hits > 0
    assert warm_seconds < cold_seconds
    # Functional equivalence after a cached compile.
    vm = rt2.run()
    assert rt2.printed == ["13120"]


def test_cache_is_invalidated_by_bytecode_change(benchmark):
    """Different bytecode (different constant) must miss the cache."""
    cache = SpecializationCache()
    rt_a = JSRuntime(WORKLOADS[NAME], "wevaled_state", cache=cache)
    rt_a.aot_compile()
    misses_before = cache.misses
    changed = WORKLOADS[NAME].replace("schedule(40)", "schedule(41)")
    rt_b = JSRuntime(changed, "wevaled_state", cache=cache)
    rt_b.aot_compile()
    assert cache.misses > misses_before  # main's bytecode changed

    def run():
        return rt_b.run()

    benchmark.pedantic(run, rounds=2, iterations=1)
