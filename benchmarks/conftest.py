"""Benchmark-suite conftest: path shim + results directory."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
os.makedirs(RESULTS_DIR, exist_ok=True)


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="reduce repeat counts for CI artifact runs (same assertions, "
             "fewer timing rounds)")


def write_result(name: str, text: str) -> None:
    """Persist a paper-style table and echo it for the log."""
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
