"""Pytest root conftest: make the in-tree package importable without install."""
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden residual-IR snapshots instead of diffing "
             "against them (see tests/test_golden_ir.py)")
