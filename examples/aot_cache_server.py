"""Warm-restart AOT via the persistent artifact cache (S6.5).

The paper's production deployment AOT-compiles the interpreter + IC
corpus once and caches the outputs keyed on module hash + request data,
so restarting a server (deploying the same image again) never repeats
the specialization work.  This example simulates exactly that: two
"server boots" of the same MiniJS program share one ``cache_dir``.

* **Boot 1 (cold)** — every residual function is specialized, the
  mid-end runs, backend source is emitted, and everything is written to
  the artifact store.
* **Boot 2 (warm restart)** — a brand-new runtime (fresh module, fresh
  engine, as after a process restart) compiles **zero** functions: all
  residual IR and emitted Python source load from disk, byte-identical
  to the cold boot's, and the served results and deterministic fuel are
  identical.

Run:

    PYTHONPATH=src python examples/aot_cache_server.py
"""

import shutil
import tempfile
import time

from repro.core.specialize import SpecializeOptions
from repro.ir import print_function
from repro.jsvm import JSRuntime

# A small "service": a handler touching objects, ICs, and arithmetic.
SERVICE_SRC = """
function handler(req) {
  var acc = 0;
  var i = 0;
  while (i < req.count) {
    acc = acc + i * req.scale;
    i = i + 1;
  }
  return acc;
}

function serve() {
  var req = {};
  req.count = 50;
  req.scale = 3;
  return handler(req);
}

print(serve());
"""


def boot(label: str, cache_dir: str, jobs: int = 2):
    """One server boot: build the runtime, AOT-compile (through the
    engine + artifact store), serve one request."""
    start = time.perf_counter()
    rt = JSRuntime(SERVICE_SRC, "wevaled_state",
                   options=SpecializeOptions(backend="py", jobs=jobs,
                                             cache_dir=cache_dir))
    rt.aot_compile()
    aot_seconds = time.perf_counter() - start
    vm = rt.run()
    stats = rt.compiler.engine.stats

    print(f"--- {label} ---")
    print(f"AOT compile: {aot_seconds * 1000:7.1f}ms  "
          f"({stats.requests} requests, jobs={stats.jobs})")
    print(f"  specialized fresh:   {stats.functions_specialized}")
    print(f"  loaded from disk:    {stats.artifact_hits} residuals, "
          f"{stats.backend_source_hits} backend sources")
    print(f"  written to disk:     {stats.artifacts_written}")
    print(f"served: print -> {rt.printed}  fuel={vm.stats.fuel}")
    residuals = {p.function_name:
                 print_function(rt.module.functions[p.function_name],
                                order="id")
                 for p in rt.compiler.processed}
    return stats, rt.printed, vm.stats.fuel, residuals


def main():
    cache_dir = tempfile.mkdtemp(prefix="aot-cache-server-")
    try:
        cold_stats, cold_out, cold_fuel, cold_ir = boot(
            "boot 1 (cold: empty artifact cache)", cache_dir)
        print()
        warm_stats, warm_out, warm_fuel, warm_ir = boot(
            "boot 2 (warm restart: same cache_dir)", cache_dir)

        print("\n--- warm-restart contract ---")
        assert warm_stats.functions_specialized == 0, \
            "warm boot must compile zero functions"
        assert warm_out == cold_out and warm_fuel == cold_fuel, \
            "warm boot must serve identical results at identical fuel"
        assert warm_ir == cold_ir, \
            "warm residual IR must be byte-identical"
        print("OK: 0 functions compiled on restart, residual IR "
              "byte-identical, served output and fuel identical.")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
