#!/usr/bin/env python3
"""Bring your own interpreter: weval a brand-new VM in ~60 lines.

The paper's pitch is that an *existing* interpreter needs only a handful
of annotations (Min took a first-year student four hours).  This example
writes a stack-based RPN calculator VM from scratch in mini-C, generated
in two variants from one template — exactly the paper's Fig. 10 trick:
a plain variant (run generically) and one whose operand stack goes
through weval's virtualized-stack intrinsics (only ever run specialized).

Run:  python examples/custom_interpreter.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    specialize,
)
from repro.frontend import compile_source  # noqa: E402
from repro.ir import Module, print_function  # noqa: E402
from repro.vm import VM  # noqa: E402


def calc_source(name: str, use_intrinsics: bool) -> str:
    """One template, two compilations (paper Fig. 10)."""
    if use_intrinsics:
        push = "weval_push(stackbuf + sp * 8, {v}); sp = sp + 1;"
        pop = "sp = sp - 1; u64 {v} = weval_pop(stackbuf + sp * 8);"
        peek = "u64 {v} = weval_read_stack(0, stackbuf + (sp - 1) * 8);"
    else:
        push = "store64(stackbuf + sp * 8, {v}); sp = sp + 1;"
        pop = "sp = sp - 1; u64 {v} = load64(stackbuf + sp * 8);"
        peek = "u64 {v} = load64(stackbuf + (sp - 1) * 8);"

    def PUSH(v):
        return push.format(v=v)

    def POP(v):
        return pop.format(v=v)

    # Opcodes: 0=PUSH imm, 1=ADD, 2=MUL, 3=DUP, 4=SWAP, 5=PUSH_ARG, 6=HALT.
    return f"""
u64 {name}(u64 program, u64 proglen, u64 arg) {{
  u64 stackbuf[64];
  u64 sp = 0;
  u64 pc = 0;
  weval_push_context(pc);
  while (1) {{
    u64 op = load64(program + pc * 8);
    pc = pc + 1;
    switch (op) {{
    case 0: {{
      {PUSH("load64(program + pc * 8)")}
      pc = pc + 1;
      break;
    }}
    case 1: {{
      {POP("b")}
      {POP("a")}
      {PUSH("a + b")}
      break;
    }}
    case 2: {{
      {POP("b")}
      {POP("a")}
      {PUSH("a * b")}
      break;
    }}
    case 3: {{
      {peek.format(v="v")}
      {PUSH("v")}
      break;
    }}
    case 4: {{
      {POP("b")}
      {POP("a")}
      {PUSH("b")}
      {PUSH("a")}
      break;
    }}
    case 5: {{
      {PUSH("arg")}
      break;
    }}
    case 6: {{
      {POP("r")}
      return r;
    }}
    default: {{ abort(); }}
    }}
    weval_update_context(pc);
  }}
  return 0;
}}
"""


BASE = 0x4000


def main():
    # (arg + 2) * (arg + 3), in RPN.
    program = [5, 0, 2, 1, 5, 0, 3, 1, 2, 6]
    module = Module(memory_size=1 << 16)
    compile_source(calc_source("calc", False)).add_to_module(module)
    compile_source(calc_source("calc_s", True)).add_to_module(module)
    for i, word in enumerate(program):
        module.write_init_u64(BASE + i * 8, word)

    vm = VM(module)
    expected = vm.call("calc", [BASE, len(program), 7])
    print(f"interpreted: {expected} (fuel {vm.stats.fuel})")

    request = SpecializationRequest(
        "calc_s",
        [SpecializedMemory(BASE, len(program) * 8),
         SpecializedConst(len(program)), Runtime()],
        specialized_name="calc_compiled")
    func = specialize(module, request)
    module.add_function(func)

    vm2 = VM(module)
    got = vm2.call("calc_compiled", [BASE, len(program), 7])
    print(f"compiled:    {got} (fuel {vm2.stats.fuel}, "
          f"{vm.stats.fuel / vm2.stats.fuel:.1f}x)")
    assert got == expected == (7 + 2) * (7 + 3)

    print("\nThe entire compiled function (stack fully virtualized):")
    print(print_function(func))


if __name__ == "__main__":
    main()
