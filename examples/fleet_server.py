"""Fleet-scale serving with persisted heat: many workers, one store.

Walkthrough — what this example demonstrates, end to end:

1. **The fleet ("yesterday").**  N worker *processes* (forked, like a
   preforking server) serve the same four-endpoint Min service — two hot
   endpoints hammered by traffic, two cold admin endpoints hit once.
   Every worker runs its own VM and
   :class:`~repro.pipeline.tiering.TieringController`, but they share
   one ``cache_dir``: the first worker to promote a hot endpoint pays
   for the specialization and publishes the artifact through the
   flock-disciplined :class:`~repro.pipeline.artifacts.ArtifactStore`;
   its siblings promote the same endpoint as pure artifact loads.

2. **Publishing heat.**  On shutdown each worker calls
   ``controller.publish_heat(store)``: its per-endpoint call/backedge
   counters — only the *delta* since the last publish — are merged into
   ``<cache_dir>/profiles/heat.json`` under the same lock discipline,
   so concurrent publishes accumulate instead of clobbering.

3. **The fresh worker ("today").**  A new worker boots with zero local
   profile, calls ``controller.adopt_heat(store)``, and inherits the
   fleet's verdict: both hot endpoints are already over threshold, so
   they are promoted *before the first request* — and because the
   artifact store is warm, that promotion compiles **zero** functions
   (``functions_specialized == 0``, two artifact hits).  The cold
   endpoints stay on tier 0.  First request latency is steady-state
   latency; no per-worker re-profiling, no re-compiling.

Run:

    PYTHONPATH=src python examples/fleet_server.py
"""

import multiprocessing
import os
import tempfile
import time

from repro.core.specialize import SpecializeOptions
from repro.min.fleet import (
    constant_program,
    make_endpoints,
    make_fleet_worker,
    serve,
    sum_squares_program,
)
from repro.min.harness import sum_to_n_program
from repro.pipeline.profiles import ProfileStore

N_WORKERS = 3
# High enough that the cold endpoints stay cold fleet-wide even with
# the controller's lagging backedge-attribution heuristic charging them
# a stray hot-loop window or two.
THRESHOLD = 8

ENDPOINTS = make_endpoints([
    ("checkout", sum_to_n_program(60)),       # hot
    ("search", sum_squares_program(40)),      # hot
    ("admin", constant_program(41)),          # cold
    ("report", constant_program(7)),          # cold
])
BY_NAME = {endpoint.name: endpoint for endpoint in ENDPOINTS}

# One worker's slice of yesterday's traffic: mixed hot/cold.
TRAFFIC = (["checkout", "search"] * 8
           + ["admin", "report"]
           + ["checkout", "search"] * 4)


def _options(cache_dir: str) -> SpecializeOptions:
    return SpecializeOptions(backend="py", cache_dir=cache_dir)


def fleet_worker(worker_id: int, cache_dir: str, barrier, results) -> None:
    """One forked worker: serve a traffic slice, then publish heat."""
    vm, controller = make_fleet_worker(ENDPOINTS, threshold=THRESHOLD,
                                       options=_options(cache_dir))
    barrier.wait()        # all workers serve concurrently
    responses = {}
    for name in TRAFFIC:
        responses[name] = serve(vm, BY_NAME[name])
    store = ProfileStore(cache_dir)
    published = controller.publish_heat(store)
    engine_stats = controller.compiler.engine.stats
    results.put({
        "worker": worker_id,
        "published": published,
        "promotions": controller.stats.promotions,
        "compiled": engine_stats.functions_specialized,
        "artifact_hits": engine_stats.artifact_hits,
        "responses": responses,
    })


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        # ------------------------------------------------------------
        # Phase 1: yesterday's fleet.
        # ------------------------------------------------------------
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(N_WORKERS)
        results = ctx.Queue()
        workers = [ctx.Process(target=fleet_worker,
                               args=(i, cache_dir, barrier, results))
                   for i in range(N_WORKERS)]
        print(f"[fleet] starting {N_WORKERS} workers over one store "
              f"({cache_dir})")
        for worker in workers:
            worker.start()
        reports = [results.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        reports.sort(key=lambda r: r["worker"])

        expected = reports[0]["responses"]
        total_compiled = 0
        for report in reports:
            assert report["published"], "heat publish must land"
            assert report["responses"] == expected
            total_compiled += report["compiled"]
            print(f"[fleet] worker {report['worker']}: "
                  f"{len(TRAFFIC)} requests, "
                  f"{report['promotions']} promotions, "
                  f"{report['compiled']} compiled fresh, "
                  f"{report['artifact_hits']} artifact hits, "
                  f"heat published")
        # The fleet pays for each hot endpoint's specialization at most
        # a handful of times (racing workers may both miss), never
        # N_WORKERS * endpoints times.
        print(f"[fleet] fleet-wide fresh compiles: {total_compiled} "
              f"(2 hot endpoints, {N_WORKERS} workers)")

        heat = ProfileStore(cache_dir).load()
        print(f"[heat ] merged heat for {len(heat)} endpoints:")
        for key, record in sorted(heat.items()):
            print(f"[heat ]   {key}: calls={record['calls']} "
                  f"backedges={record['backedges']}")

        # ------------------------------------------------------------
        # Phase 2: today's fresh worker adopts the fleet's heat.
        # ------------------------------------------------------------
        boot = time.perf_counter()
        vm, controller = make_fleet_worker(ENDPOINTS, threshold=THRESHOLD,
                                           options=_options(cache_dir))
        adopted = controller.adopt_heat(ProfileStore(cache_dir))
        boot_ms = (time.perf_counter() - boot) * 1000
        engine_stats = controller.compiler.engine.stats
        print(f"\n[today] fresh worker adopted {adopted} in "
              f"{boot_ms:.1f}ms: {engine_stats.functions_specialized} "
              f"compiled fresh, {engine_stats.artifact_hits} artifact "
              f"hits")

        # The fleet's whole point, asserted:
        assert sorted(adopted) == ["min_checkout", "min_search"]
        assert engine_stats.functions_specialized == 0
        assert engine_stats.artifact_hits == 2

        begin = time.perf_counter()
        result = serve(vm, BY_NAME["checkout"])
        micros = (time.perf_counter() - begin) * 1e6
        assert result == expected["checkout"]
        assert controller.stats.tier0_calls == 0
        print(f"[today] first request checkout -> {result} "
              f"({micros:.0f}us, tier 2, zero generic calls)")
        print(f"[today] cold endpoints still tier 0: "
              f"{controller.tier_counts()[0]} of {len(ENDPOINTS)}")
        print("\n[state] " + "\n[state] ".join(
            controller.report().splitlines()))


if __name__ == "__main__":
    main()
