#!/usr/bin/env python3
"""Fig. 6, live: watch the interpreter CFG become the guest CFG.

Specializes a three-opcode interpreter (ADD/SUB/JMPNZ-style) on a tiny
looping program and prints the generic interpreter IR next to the
specialized output, whose control-flow graph follows the *bytecode*.

Run:  python examples/inspect_specialization.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    specialize,
)
from repro.frontend import compile_source  # noqa: E402
from repro.ir import Module, print_function  # noqa: E402
from repro.vm import VM  # noqa: E402

SRC = """
u64 interp(u64 program, u64 proglen, u64 input) {
  u64 pc = 0;
  u64 acc = input;
  weval_push_context(pc);
  while (1) {
    u64 op = load64(program + pc * 8);
    pc = pc + 1;
    switch (op) {
    case 0: { acc = acc + load64(program + pc * 8); pc = pc + 1; break; }
    case 1: { acc = acc - load64(program + pc * 8); pc = pc + 1; break; }
    case 2: {
      u64 target = load64(program + pc * 8);
      pc = pc + 1;
      if (acc != 0) { pc = target; weval_update_context(pc); continue; }
      weval_update_context(pc);
      continue;
    }
    case 3: { return acc; }
    default: { abort(); }
    }
    weval_update_context(pc);
  }
  return 0;
}
"""

BASE = 0x1000


def main():
    # ADD 5; SUB 1; JMPNZ 2 (the SUB); HALT — like the paper's Fig. 6.
    program = [0, 5, 1, 1, 2, 2, 3]
    module = Module(memory_size=1 << 16)
    compile_source(SRC).add_to_module(module)
    for i, word in enumerate(program):
        module.write_init_u64(BASE + i * 8, word)

    print("=" * 60)
    print("GENERIC interpreter (CFG follows the interpreter):")
    print("=" * 60)
    print(print_function(module.functions["interp"]))

    request = SpecializationRequest(
        "interp",
        [SpecializedMemory(BASE, len(program) * 8),
         SpecializedConst(len(program)), Runtime()],
        specialized_name="interp_fig6")
    func = specialize(module, request)
    module.add_function(func)

    print()
    print("=" * 60)
    print("SPECIALIZED (CFG follows the bytecode: one loop, constants")
    print("folded in, no loads from the program — Fig. 6):")
    print("=" * 60)
    print(print_function(func))

    vm = VM(module)
    result = vm.call("interp_fig6", [BASE, len(program), 0])
    print(f"\nresult: {result}; runtime loads: {vm.stats.loads}")


if __name__ == "__main__":
    main()
