#!/usr/bin/env python3
"""Ahead-of-time compiling a MiniJS program (the SpiderMonkey S6 story).

Runs one Octane-analog workload under all four engine configurations and
prints the Fig. 11-style comparison for it.

Run:  python examples/minijs_aot.py [workload]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.jsvm import JSRuntime  # noqa: E402
from repro.jsvm.workloads import WORKLOADS  # noqa: E402


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "richards"
    source = WORKLOADS[name]
    print(f"workload: {name}")
    results = {}
    for config in ("noic", "interp_ic", "wevaled", "wevaled_state"):
        rt = JSRuntime(source, config)
        vm = rt.run()
        results[config] = vm.stats.fuel
        extra = ""
        if rt.compiler is not None:
            extra = (f"  [{rt.specialized_function_count()} functions "
                     f"AOT-compiled, {len(rt.corpus)} IC-corpus stubs]")
        print(f"  {config:14s} output={rt.printed} "
              f"fuel={vm.stats.fuel}{extra}")
    base = results["interp_ic"]
    print(f"speedup over Interp+ICs: wevaled "
          f"{base / results['wevaled']:.2f}x, wevaled+state "
          f"{base / results['wevaled_state']:.2f}x")


if __name__ == "__main__":
    main()
