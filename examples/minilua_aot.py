#!/usr/bin/env python3
"""AOT-compiling MiniLua (the S7 three-hour-port story).

Compiles a Lua program to register bytecode, runs it under the generic
interpreter, then specializes the interpreter per function prototype
(context annotations only — no state intrinsics, as in the paper's port)
and runs again.

Run:  python examples/minilua_aot.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.luavm import LuaRuntime  # noqa: E402
from repro.luavm.bytecode import disassemble  # noqa: E402

SOURCE = """
function collatz(n)
  local steps = 0
  while n ~= 1 do
    if n % 2 == 0 then
      n = n / 2
    else
      n = 3 * n + 1
    end
    steps = steps + 1
  end
  return steps
end

function longest(limit)
  local best = 0
  for i = 1, limit do
    local s = collatz(i)
    if s > best then best = s end
  end
  return best
end

print(longest(60))
"""


def main():
    rt = LuaRuntime(SOURCE)
    print("bytecode for collatz:")
    print(disassemble(rt.protos[2]))
    print()

    vm = rt.run_interpreted()
    out = list(rt.printed)
    print(f"interpreted: printed={out} fuel={vm.stats.fuel}")
    rt.printed.clear()

    rt.aot_compile()
    print("specialized:",
          [p.function_name for p in rt.compiler.processed])
    vm2 = rt.run_aot()
    print(f"AOT:         printed={rt.printed} fuel={vm2.stats.fuel} "
          f"({vm.stats.fuel / vm2.stats.fuel:.2f}x)")
    assert out == rt.printed


if __name__ == "__main__":
    main()
