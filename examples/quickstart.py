#!/usr/bin/env python3
"""Quickstart: the first Futamura projection in a few lines.

We take the Min register machine's interpreter (written in mini-C,
annotated with weval context intrinsics), specialize it against a
bytecode program, and compare interpreted vs compiled execution.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.min import (  # noqa: E402
    PROGRAM_BASE,
    assemble,
    build_min_module,
    specialize_min,
)
from repro.vm import VM  # noqa: E402


def main():
    # A Min program: sum the squares of 1..100.
    program = assemble([
        ("LOAD_IMMEDIATE", 100),
        ("STORE_REG", 0),          # counter
        ("LOAD_IMMEDIATE", 0),
        ("STORE_REG", 1),          # total
        ("label", "loop"),
        ("MUL", 0, 0),             # acc = counter * counter
        ("STORE_REG", 2),
        ("ADD", 1, 2),             # acc = total + counter^2
        ("STORE_REG", 1),
        ("LOAD_REG", 0),
        ("ADD_IMMEDIATE", -1),
        ("STORE_REG", 0),
        ("JMPNZ", "loop"),
        ("LOAD_REG", 1),
        ("HALT",),
    ])

    module = build_min_module(program)

    # 1. Interpret the bytecode with the generic interpreter.
    vm = VM(module)
    expected = vm.call("min_interp", [PROGRAM_BASE, len(program.words), 0])
    interp_fuel = vm.stats.fuel
    print(f"interpreted: result={expected}  fuel={interp_fuel}")

    # 2. First Futamura projection: specialize the interpreter on the
    #    program.  `use_intrinsics=True` also virtualizes the register
    #    file into SSA values (the paper's S4 state optimization).
    compiled = specialize_min(module, program, use_intrinsics=True)

    vm = VM(module)
    got = vm.call(compiled.name, [PROGRAM_BASE, len(program.words), 0])
    print(f"compiled:    result={got}  fuel={vm.stats.fuel}  "
          f"(speedup {interp_fuel / vm.stats.fuel:.2f}x, "
          f"runtime bytecode loads: {vm.stats.loads})")
    assert got == expected == sum(i * i for i in range(1, 101))

    stats = compiled._weval_stats
    print(f"weval: {stats.contexts_created} contexts, "
          f"{stats.loads_folded_from_const_memory} bytecode loads folded, "
          f"{stats.branches_folded} branches folded")


if __name__ == "__main__":
    main()
