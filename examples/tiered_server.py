"""Cold-start-to-hot progression under profile-guided dynamic tier-up.

The AOT flow (see ``examples/aot_cache_server.py``) compiles the whole
snapshot before the first request — great steady-state, terrible cold
start.  This example boots the same MiniJS service in ``tiered`` mode
instead: execution begins immediately on the generic interpreter
(tier 0), the :class:`~repro.pipeline.tiering.TieringController`
watches call and loop counters, and functions that prove hot are
specialized at a call boundary (tier 1: residual IR on the VM) and
compiled to Python (tier 2) — while cold endpoints never cost a
microsecond of compile time.  A speculative promotion against the
pooled request frame demonstrates guard-failure deopt back to the
generic interpreter (the function demotes and respecializes exactly
once).

Run:

    PYTHONPATH=src python examples/tiered_server.py
"""

import time

from repro.core.specialize import SpecializeOptions
from repro.jsvm import JSRuntime
from repro.jsvm.runtime import SPEC_FIELD_WORD
from repro.jsvm.values import VALUE_UNDEFINED, box_double, unbox_double

SERVICE_SRC = """
function hotHandler(req) {
  var acc = 0;
  var i = 0;
  while (i < req) {
    acc = acc + i * 3 - (acc % 7);
    i = i + 1;
  }
  return acc;
}
function coldAdmin(x) {
  var o = {hits: x, misses: 0};
  o.hits = o.hits * 2;
  return o.hits + o.misses;
}
function coldReport(x) {
  return x * 100 + 1;
}
print(0);
"""


def serve(rt, vm, name, arg, frame=None):
    """One request: dispatch a guest handler through its spec slot
    (specialized code when promoted, generic interpreter otherwise).
    Requests normally execute on the runtime's pooled frame slot;
    ``frame`` overrides that (a nested / re-entrant dispatch)."""
    frame = rt.frame_base if frame is None else frame
    struct = rt.func_addrs[
        next(f.index for f in rt.compiled.functions if f.name == name)]
    vm.store_u64(frame, VALUE_UNDEFINED)
    vm.store_u64(frame + 8, box_double(float(arg)))
    spec = vm.load_u64(struct + SPEC_FIELD_WORD * 8)
    if spec:
        return unbox_double(vm.call_table(spec, [struct, frame]))
    return unbox_double(vm.call(rt.generic_entry, [struct, frame]))


def main():
    rt = JSRuntime(SERVICE_SRC, "wevaled_state",
                   options=SpecializeOptions(backend="py"))
    boot = time.perf_counter()
    vm = rt.run(mode="tiered", threshold=4, speculate=True)
    controller = rt.controller
    print(f"[boot] tiered runtime serving after "
          f"{(time.perf_counter() - boot) * 1000:.1f}ms "
          f"(zero functions compiled)\n")

    # Cold endpoints: hit once each, stay on the generic interpreter.
    for name in ("coldAdmin", "coldReport"):
        print(f"[req ] {name}(7) -> {serve(rt, vm, name, 7):.0f} "
              f"(tier 0, generic interpreter)")

    # The hot endpoint: watch it climb the tiers.  Every early request
    # executes on the pooled frame slot, so the controller speculates on
    # the stable frame pointer behind a guard; request 9 arrives on a
    # fresh frame (a nested dispatch) — the guard fails, the call deopts
    # to the generic interpreter (identical response), and the function
    # respecializes without the speculation.
    fresh_frame = rt.frame_base + 4096
    for i in range(12):
        frame = None if i < 9 else fresh_frame
        begin = time.perf_counter()
        result = serve(rt, vm, "hotHandler", 50, frame=frame)
        micros = (time.perf_counter() - begin) * 1e6
        stats = controller.stats
        note = (f"promotions={stats.promotions} "
                f"deopts={stats.deopts}")
        where = "fresh frame" if frame else "pooled frame"
        print(f"[req ] hotHandler(50) -> {result:.0f}  "
              f"({micros:7.0f}us, {where}, {note})")

    print("\n[state] " + "\n[state] ".join(
        controller.report().splitlines()))
    stats = controller.stats
    assert stats.promotions >= 1 and stats.deopts >= 1 \
        and stats.demotions == 1


if __name__ == "__main__":
    main()
