"""The tier-2 backend: residual IR compiled to native Python functions.

After the weval transform (and the mid-end) has produced residual IR,
the remaining cost of running it on :class:`repro.vm.machine.VM` is pure
interpretive overhead.  :class:`PyEmitter` removes that tier: it
translates a verified function into Python source, ``compile()``s it,
and the VM dispatches to the resulting callable on ``call`` /
``call_indirect`` exactly as it would an IR function.

Select the backend per specialization via
``SpecializeOptions(backend="py")`` or globally with the
``REPRO_BACKEND=py`` environment variable; functions the emitter cannot
express fall back to the IR VM per function.
"""

from repro.backend.emitter import (
    BackendError,
    CompiledFunction,
    EMIT_MODES,
    PyEmitter,
    StructuredEmitter,
    UnsupportedConstruct,
    compile_function,
    compile_functions,
    compile_python_source,
    emit_function_source,
)
from repro.backend.runtime import BACKEND_GLOBALS

__all__ = [
    "BackendError",
    "CompiledFunction",
    "EMIT_MODES",
    "PyEmitter",
    "StructuredEmitter",
    "UnsupportedConstruct",
    "compile_function",
    "compile_functions",
    "compile_python_source",
    "emit_function_source",
    "BACKEND_GLOBALS",
]
