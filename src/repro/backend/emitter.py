"""Compile residual IR to native Python functions (the tier-2 backend).

The IR VM in :mod:`repro.vm.machine` walks one instruction dataclass at
a time; every op pays dict lookups and a long opcode if-chain.  After
specialization that interpretive overhead is the dominant cost left, so
this module translates a verified IR function into Python *source*,
``compile()``/``exec()``s it, and returns a callable with the VM's exact
observable semantics:

* values are the same unsigned-64-bit bit patterns (``& MASK64`` after
  wrapping ops, sign-bias compares for signed predicates);
* traps raise the same :class:`~repro.vm.machine.VMTrap` kinds with the
  same messages, out-of-fuel raises :class:`OutOfFuel`;
* fuel/load/store/call counters are charged per *block* (one ``+=`` per
  counter per block entry instead of one per instruction), which yields
  byte-identical totals to the VM on every execution that does not trap
  mid-block, and the fuel-limit check fires at the same block boundary
  the VM checks at;
* guest calls go through per-site link slots
  (:class:`repro.pipeline.links.CallLinkTable`): every slot starts as a
  bridge that re-enters ``vm.call`` / ``vm.call_table`` — so compiled
  and interpreted functions mix freely — and is patched to the callee's
  raw fixed-arity entry point once the callee is steady tier-2 code,
  making the settled call boundary a single positional Python call.
  Entry points are fixed-arity (``def _compiled(vm, v3, v5)``) with the
  depth check in their own prologue; the VM's ``_dispatch`` recognizes
  them by their ``_nparams`` attribute and skips its own boxing and
  depth bookkeeping.

Two emission modes share the per-instruction lowering:

* **dispatch** (:class:`PyEmitter`) — blocks are renumbered in
  reverse-postorder, scheduled into fall-through *chains*, and
  dispatched inside a ``while True`` loop through a binary decision
  tree over the block index ``_b`` (depth ``log2(n)``), with
  block-parameter passing as parallel tuple assignment.  A chain is a
  run of blocks linked by unconditional jumps (RPO-forward, so loop
  backedges still dispatch); the linked blocks are laid out
  consecutively and the jump between them costs one ``_b <= k``
  compare instead of a full dispatch round trip.

* **structured** (:class:`StructuredEmitter`, the default) — a
  relooper-style reconstruction: strongly-connected components of the
  CFG become native ``while True:`` loops (backedges are ``continue``),
  join points become single-shot ``while True:`` *scopes* whose
  ``break`` lands exactly where the join's code starts, and multi-level
  exits unwind through a ``_st`` state variable checked once per scope
  boundary.  Fuel and counter accounting is batched in Python locals
  (``_fu``/``_ld``/``_sd``/``_cl``) committed to ``vm.stats`` in a
  function-level ``finally`` and flushed before every guest call, so
  every observable total (call boundaries, the per-block fuel-limit
  check, final stats) is bit-identical to the VM's per-instruction
  accounting.  Irreducible SCCs (multi-entry cycles) fall back
  *per-region* to a local dispatch tree over ``_b``; a region that
  would nest past CPython's indentation limit falls back to the
  dispatch emitter for the whole function.

Anything the emitter cannot express raises
:class:`UnsupportedConstruct`; callers fall back to the VM per function.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.backend.runtime import BACKEND_GLOBALS
from repro.ir.function import Block, Function
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)
from repro.ir.module import Module


class BackendError(Exception):
    """The backend failed in a way that is not a per-function fallback."""


class UnsupportedConstruct(BackendError):
    """This function uses a construct the emitter cannot compile; the
    caller should run it on the IR VM instead."""


class _StructureTooDeep(BackendError):
    """Structured emission would exceed CPython's indentation limit;
    the caller falls back to dispatch-mode emission for this function
    (internal — never escapes :func:`compile_function`)."""


EMIT_MODES = ("structured", "dispatch")


MASK_HEX = "0xFFFFFFFFFFFFFFFF"
SIGN_HEX = "0x8000000000000000"

_WRAP_BINOPS = {"iadd": "+", "isub": "-", "imul": "*"}
_PLAIN_BINOPS = {"iand": "&", "ior": "|", "ixor": "^"}
_FLOAT_BINOPS = {"fadd": "+", "fsub": "-", "fmul": "*"}
_UNSIGNED_CMPS = {"ieq": "==", "ine": "!=", "ilt_u": "<", "ile_u": "<=",
                  "igt_u": ">", "ige_u": ">="}
_SIGNED_CMPS = {"ilt_s": "<", "ile_s": "<=", "igt_s": ">", "ige_s": ">="}
_FLOAT_CMPS = {"feq": "==", "fne": "!=", "flt": "<", "fle": "<=",
               "fgt": ">", "fge": ">="}
_HELPER_UNOPS = {"itof": "_itof", "ftoi": "_ftoi", "fsqrt": "_fsqrt",
                 "ffloor": "_ffloor", "bits_ftoi": "_bits_ftoi",
                 "bits_itof": "_bits_itof"}
_HELPER_BINOPS = {"idiv_s": "_idiv_s", "idiv_u": "_idiv_u",
                  "irem_s": "_irem_s", "irem_u": "_irem_u",
                  "fdiv": "_fdiv", "ishr_s": "_ishr_s"}
# op -> (size in bytes, signed)
_SIZED_LOADS = {"load8_u": (1, False), "load8_s": (1, True),
                "load16_u": (2, False), "load16_s": (2, True),
                "load32_u": (4, False), "load32_s": (4, True)}
_SIZED_STORES = {"store8": 1, "store16": 2, "store32": 4}

_INDENT = "    "


def _float_literal(value: float) -> Tuple[str, bool]:
    """A source literal for a float; non-finite values go through the
    bit-pattern helper (``repr`` of nan/inf is not a literal).  Returns
    (expression, needs_bits_helper)."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        import struct
        bits = int.from_bytes(struct.pack("<d", value), "little")
        return f"_bits_itof({bits:#x})", True
    return repr(value), False


@dataclasses.dataclass
class CompiledFunction:
    """One IR function lowered to a Python callable.

    ``pyfunc`` is a fixed-arity entry point ``(vm, v<p0>, v<p1>, ...)``
    carrying an ``_nparams`` attribute (the VM's ``_dispatch`` unboxes
    argument lists positionally and leaves depth bookkeeping to the
    callee prologue), and ``source`` is the exact Python text that was
    compiled (golden-testable).
    """

    name: str
    source: str
    pyfunc: Callable
    # Static dispatch accounting from the fall-through scheduler: how
    # many blocks remained dispatch targets, and how many intra-chain
    # jumps became plain fall-through.
    dispatch_blocks: int = 0
    fallthrough_links: int = 0
    # Which emitter actually produced ``source`` ("structured" or
    # "dispatch" — the latter either by request or as the too-deep
    # fallback), and how much of the function the structured emitter
    # had to leave to per-region dispatch (irreducible SCCs).
    emit_mode: str = "dispatch"
    dispatch_regions: int = 0
    dispatch_region_blocks: int = 0


class PyEmitter:
    """Translates one verified IR function into Python source."""

    def __init__(self, func: Function, module: Optional[Module] = None):
        self.func = func
        self.module = module
        self.used: Set[str] = set()
        self._chain_next: Dict[int, int] = {}
        self.dispatch_blocks = 0
        self.fallthrough_links = 0
        # Call-site link descriptors, in site order (PR 10): ("c",
        # callee, argc) for direct calls, ("t", argc) for indirect.
        # Derived purely from the function body, so cached sources stay
        # byte-stable.
        self.link_sites: List[tuple] = []

    # ------------------------------------------------------------------
    # Block ordering and dispatch indices.
    # ------------------------------------------------------------------
    def _block_order(self) -> List[int]:
        """Reachable blocks in reverse postorder, entry first."""
        func = self.func
        if func.entry is None:
            raise UnsupportedConstruct(f"{func.name}: no entry block")
        # Iterative DFS to avoid Python recursion limits on huge CFGs.
        stack: List[Tuple[int, int]] = [(func.entry, 0)]
        post: List[int] = []
        seen = {func.entry}
        targets_of: Dict[int, List[int]] = {}
        while stack:
            bid, child = stack[-1]
            if bid not in targets_of:
                block = func.blocks.get(bid)
                if block is None:
                    raise UnsupportedConstruct(
                        f"{self.func.name}: dangling block ref block{bid}")
                if block.terminator is None:
                    raise UnsupportedConstruct(
                        f"{self.func.name}: block{bid} not terminated")
                targets_of[bid] = [c.block for c in
                                   block.terminator.targets()]
            targets = targets_of[bid]
            if child < len(targets):
                stack[-1] = (bid, child + 1)
                succ = targets[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                post.append(bid)
                stack.pop()
        order = list(reversed(post))
        assert order[0] == func.entry
        return order

    def _schedule_chains(self, rpo: List[int]) -> List[List[int]]:
        """Greedy fall-through scheduling over the RPO order.

        Links ``A -> B`` when A ends in an unconditional jump to B, B is
        not the entry, B is RPO-later than A (no cycles, so loop
        backedges keep dispatching), and no earlier block already
        claimed B as its layout successor.
        """
        func = self.func
        position = {bid: i for i, bid in enumerate(rpo)}
        succ_of: Dict[int, int] = {}
        claimed: Set[int] = set()
        for bid in rpo:
            term = func.blocks[bid].terminator
            if not isinstance(term, Jump):
                continue
            target = term.target.block
            if (target != bid and target != func.entry
                    and target not in claimed
                    and position[target] > position[bid]):
                succ_of[bid] = target
                claimed.add(target)
        chains = []
        for bid in rpo:
            if bid in claimed:
                continue
            chain = [bid]
            while chain[-1] in succ_of:
                chain.append(succ_of[chain[-1]])
            chains.append(chain)
        return chains

    # ------------------------------------------------------------------
    # Source assembly.
    # ------------------------------------------------------------------
    def emit_source(self) -> str:
        func = self.func
        chains = self._schedule_chains(self._block_order())
        order = [bid for chain in chains for bid in chain]
        self.index = {bid: i for i, bid in enumerate(order)}
        self._chain_next = {a: b for chain in chains
                            for a, b in zip(chain, chain[1:])}
        self.dispatch_blocks = len(chains)
        self.fallthrough_links = len(order) - len(chains)

        bodies = {bid: self._emit_block(func.blocks[bid]) for bid in order}

        lines: List[str] = []
        lines.append(f"# {func.name}{func.sig} — compiled from residual IR "
                     f"by repro.backend.PyEmitter")
        entry = func.entry_block()
        nparams = len(entry.params)
        params = "".join(f", v{v}" for v, _ in entry.params)
        lines.append(f"def _compiled(vm{params}):")
        lines.extend(_INDENT + line for line in self._prologue())
        for binding in self._preamble():
            lines.append(_INDENT + binding)
        lines.append(f"{_INDENT}try:")
        lines.append(f"{_INDENT * 2}_b = 0")
        lines.append(f"{_INDENT * 2}while True:")
        lines.extend(self._emit_tree(chains, bodies, depth=3))
        lines.append(f"{_INDENT}finally:")
        lines.append(f"{_INDENT * 2}vm._call_depth -= 1")
        lines.append(f"_compiled._nparams = {nparams}")
        return "\n".join(lines) + "\n"

    def _prologue(self) -> List[str]:
        """Per-call depth bookkeeping, hoisted from ``VM._dispatch`` into
        the callee so raw-linked calls (which bypass the VM entirely)
        still honor the guest depth limit with the same trap."""
        return [
            "vm._call_depth = _d = vm._call_depth + 1",
            f"if _d > vm._max_call_depth: _exhaust(vm, {self.func.name!r})",
        ]

    def _preamble(self) -> List[str]:
        used = self.used
        bindings = []
        if "M" in used:
            bindings.append("M = vm.memory")
            bindings.append("_ML = len(M)")
        bindings.append("S = vm.stats")
        if "G" in used:
            bindings.append("G = vm.globals")
        if "_call" in used:
            bindings.append("_call = vm.call")
        if "_ctab" in used:
            bindings.append("_ctab = vm.call_table")
        if "_lk" in used:
            # The slot list identity is stable across invalidations
            # (slots are reset in place), so binding it once per
            # invocation is sound even if linking events fire mid-frame.
            name = self.func.name
            bindings.append(f"_lk = vm._link_slots.get({name!r})")
            bindings.append(f"if _lk is None: _lk = vm.links.bind("
                            f"{name!r}, {tuple(self.link_sites)!r})")
        if "_int" in used:
            bindings.append("_int = int")
        if "_ifb" in used:
            bindings.append("_ifb = int.from_bytes")
        bindings.append("_L = vm.fuel_limit")
        return bindings

    def _emit_tree(self, chains: List[List[int]],
                   bodies: Dict[int, List[str]], depth: int) -> List[str]:
        """A binary decision tree over the dispatch index ``_b`` whose
        leaves are fall-through chains.

        Within a chain leaf, every member except the last is guarded by
        ``if _b <= <its index>`` — true both when the dispatcher entered
        at that member and when control fell through from the previous
        member (``_b`` is not updated along intra-chain edges) — and the
        last member runs unconditionally (the leaf covers exactly the
        chain's index range).
        """
        ind = _INDENT * depth
        if len(chains) == 1:
            chain = chains[0]
            lines: List[str] = []
            for k, bid in enumerate(chain):
                idx = self.index[bid]
                lines.append(f"{ind}# block{bid} [_b={idx}]")
                if k < len(chain) - 1:
                    lines.append(f"{ind}if _b <= {idx}:")
                    lines.extend(ind + _INDENT + line
                                 for line in bodies[bid])
                else:
                    lines.extend(ind + line for line in bodies[bid])
            return lines
        mid = len(chains) // 2
        lines = [f"{ind}if _b < {self.index[chains[mid][0]]}:"]
        lines.extend(self._emit_tree(chains[:mid], bodies, depth + 1))
        lines.append(f"{ind}else:")
        lines.extend(self._emit_tree(chains[mid:], bodies, depth + 1))
        return lines

    # ------------------------------------------------------------------
    # Blocks.
    # ------------------------------------------------------------------
    def _emit_block(self, block: Block) -> List[str]:
        lines: List[str] = []
        counters = {"loads": 0, "stores": 0, "calls": 0}
        # Fuel is charged in segments ending at each guest call: at every
        # point where another frame can observe the shared fuel counter
        # (a callee's block-boundary limit checks, and this block's own
        # check below) the total matches the VM's per-instruction
        # accounting exactly.  A call-free block degenerates to a single
        # up-front charge.
        body: List[str] = []
        segment: List[str] = []
        pending_fuel = 0
        for instr in block.instrs:
            segment.extend(self._emit_instr(instr, counters))
            pending_fuel += 1
            if instr.op in ("call", "call_indirect"):
                # Each segment ends at its (single) call, so charging the
                # segment's fuel first means the callee sees exactly the
                # VM's total at the call instruction.
                body.append(f"S.fuel += {pending_fuel}")
                body.extend(segment)
                segment = []
                pending_fuel = 0
        if pending_fuel:
            body.append(f"S.fuel += {pending_fuel}")
        body.extend(segment)
        for counter in ("loads", "stores", "calls"):
            if counters[counter]:
                lines.append(f"S.{counter} += {counters[counter]}")
        lines.extend(body)
        # The VM checks the fuel limit once per block iteration, after
        # the instructions and before charging the terminator.
        lines.append("if _L is not None and S.fuel > _L: "
                     "raise OutOfFuel(\"fuel limit %d exceeded\" % _L)")
        lines.append("S.fuel += 1")
        lines.extend(self._emit_terminator(block))
        return lines

    # ------------------------------------------------------------------
    # Terminators and edges.
    # ------------------------------------------------------------------
    def _edge(self, call: BlockCall,
              fallthrough: bool = False) -> List[str]:
        target = self.func.blocks[call.block]
        pairs = [(param, arg)
                 for (param, _), arg in zip(target.params, call.args)
                 if param != arg]
        lines = []
        if pairs:
            lhs = ", ".join(f"v{param}" for param, _ in pairs)
            rhs = ", ".join(f"v{arg}" for _, arg in pairs)
            lines.append(f"{lhs} = {rhs}")
        if fallthrough:
            # The layout successor is next in the chain leaf; leaving
            # ``_b`` alone makes its guard (and all later ones) true.
            lines.append(f"# fall through to block{call.block}")
        else:
            lines.append(f"_b = {self.index[call.block]}")
        return lines

    def _emit_terminator(self, block: Block) -> List[str]:
        term = block.terminator
        if isinstance(term, Jump):
            return self._edge(
                term.target,
                fallthrough=(self._chain_next.get(block.id)
                             == term.target.block))
        if isinstance(term, BrIf):
            lines = [f"if v{term.cond}:"]
            lines.extend(_INDENT + l for l in self._edge(term.if_true))
            lines.append("else:")
            lines.extend(_INDENT + l for l in self._edge(term.if_false))
            return lines
        if isinstance(term, BrTable):
            if not term.cases:
                return self._edge(term.default)
            lines = [f"_i = v{term.index}"]
            for pos, call in enumerate(term.cases):
                kw = "if" if pos == 0 else "elif"
                lines.append(f"{kw} _i == {pos}:")
                lines.extend(_INDENT + l for l in self._edge(call))
            lines.append("else:")
            lines.extend(_INDENT + l for l in self._edge(term.default))
            return lines
        if isinstance(term, Ret):
            if term.args:
                return [f"return v{term.args[0]}"]
            return ["return None"]
        if isinstance(term, Trap):
            return [f"raise VMTrap({term.message!r})"]
        raise UnsupportedConstruct(
            f"{self.func.name}: block{block.id} has no terminator")

    # ------------------------------------------------------------------
    # Instructions.
    # ------------------------------------------------------------------
    def _addr(self, instr: Instr, pre: List[str]) -> str:
        """The effective-address expression for a memory op (a temp when
        a static offset must be added)."""
        base = f"v{instr.args[0]}"
        if instr.imm:
            pre.append(f"_a = {base} + {instr.imm}")
            return "_a"
        return base

    def _emit_instr(self, instr: Instr, counters: Dict[str, int]
                    ) -> List[str]:
        op = instr.op
        args = instr.args
        r = f"v{instr.result}" if instr.result is not None else None

        if op == "iconst":
            return [f"{r} = {int(instr.imm)}"]
        if op == "fconst":
            literal, _ = _float_literal(instr.imm)
            return [f"{r} = {literal}"]
        if op in _WRAP_BINOPS:
            sym = _WRAP_BINOPS[op]
            return [f"{r} = (v{args[0]} {sym} v{args[1]}) & {MASK_HEX}"]
        if op in _PLAIN_BINOPS:
            sym = _PLAIN_BINOPS[op]
            return [f"{r} = v{args[0]} {sym} v{args[1]}"]
        if op == "ishl":
            return [f"{r} = (v{args[0]} << (v{args[1]} & 63)) & {MASK_HEX}"]
        if op == "ishr_u":
            return [f"{r} = v{args[0]} >> (v{args[1]} & 63)"]
        if op in _UNSIGNED_CMPS:
            self.used.add("_int")
            sym = _UNSIGNED_CMPS[op]
            return [f"{r} = _int(v{args[0]} {sym} v{args[1]})"]
        if op in _SIGNED_CMPS:
            # Signed compare via the sign-bias trick:
            # a <_s b  <=>  (a ^ 2**63) <_u (b ^ 2**63).
            self.used.add("_int")
            sym = _SIGNED_CMPS[op]
            return [f"{r} = _int((v{args[0]} ^ {SIGN_HEX}) {sym} "
                    f"(v{args[1]} ^ {SIGN_HEX}))"]
        if op in _FLOAT_BINOPS:
            sym = _FLOAT_BINOPS[op]
            return [f"{r} = v{args[0]} {sym} v{args[1]}"]
        if op in _FLOAT_CMPS:
            self.used.add("_int")
            sym = _FLOAT_CMPS[op]
            return [f"{r} = _int(v{args[0]} {sym} v{args[1]})"]
        if op in _HELPER_BINOPS:
            return [f"{r} = {_HELPER_BINOPS[op]}(v{args[0]}, v{args[1]})"]
        if op in _HELPER_UNOPS:
            return [f"{r} = {_HELPER_UNOPS[op]}(v{args[0]})"]
        if op == "fneg":
            return [f"{r} = -v{args[0]}"]
        if op == "fabs":
            return [f"{r} = _abs(v{args[0]})"]
        if op == "select":
            return [f"{r} = v{args[1]} if v{args[0]} else v{args[2]}"]

        if op == "load64":
            counters["loads"] += 1
            self.used.update(("M", "_ifb"))
            pre: List[str] = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob load64 at %#x" % {a})',
                f'{r} = _ifb(M[{a}:{a} + 8], "little")',
            ]
        if op == "store64":
            counters["stores"] += 1
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob store64 at %#x" % {a})',
                f'M[{a}:{a} + 8] = v{args[1]}.to_bytes(8, "little")',
            ]
        if op == "loadf64":
            counters["loads"] += 1
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob loadf64 at %#x" % {a})',
                f'{r} = _upf("<d", M, {a})[0]',
            ]
        if op == "storef64":
            counters["stores"] += 1
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob storef64 at %#x" % {a})',
                f'_pki("<d", M, {a}, v{args[1]})',
            ]
        if op in _SIZED_LOADS:
            counters["loads"] += 1
            size, signed = _SIZED_LOADS[op]
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            if size == 1:
                raw = f"M[{a}]"
            else:
                self.used.add("_ifb")
                raw = f'_ifb(M[{a}:{a} + {size}], "little")'
            if signed:
                raw = f"_sext({raw}, {size * 8})"
            return pre + [
                f'if {a} < 0 or {a} + {size} > _ML: '
                f'raise VMTrap("oob {op} at %#x" % {a})',
                f"{r} = {raw}",
            ]
        if op in _SIZED_STORES:
            counters["stores"] += 1
            size = _SIZED_STORES[op]
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            mask = (1 << (size * 8)) - 1
            if size == 1:
                store = f"M[{a}] = v{args[1]} & {mask:#x}"
            else:
                store = (f"M[{a}:{a} + {size}] = "
                         f'(v{args[1]} & {mask:#x}).to_bytes({size}, '
                         f'"little")')
            return pre + [
                f'if {a} < 0 or {a} + {size} > _ML: '
                f'raise VMTrap("oob {op} at %#x" % {a})',
                store,
            ]

        if op == "call":
            counters["calls"] += 1
            self.used.add("_lk")
            site = len(self.link_sites)
            self.link_sites.append(("c", instr.imm, len(args)))
            call_args = "".join(f", v{a}" for a in args)
            # The slot is read at the call, not bound in the preamble, so
            # an invalidation between two executions of this site is
            # always observed.  Bridged: full vm.call.  Linked: one raw
            # positional call into the callee's fixed-arity entry.
            expr = f"_lk[{site}](vm{call_args})"
            if r is not None:
                return [f"{r} = {expr}"]
            return [expr]
        if op == "call_indirect":
            self.used.add("_lk")
            site = len(self.link_sites)
            rest = args[1:]
            self.link_sites.append(("t", len(rest)))
            raw_args = "".join(f", v{a}" for a in rest)
            boxed = ", ".join(f"v{a}" for a in rest)
            trailing = "," if len(rest) == 1 else ""
            assign = f"{r} = " if r is not None else ""
            # Monomorphic inline cache [expected_index, raw_target,
            # miss_bridge]: a hit charges the indirect-call counter the
            # way vm.call_table would and calls the raw target; misses
            # (and the unlinked state, expected_index == -1) take the
            # bridge through the full vm.call_table path.
            return [
                f"_s = _lk[{site}]",
                f"if v{args[0]} == _s[0]:",
                f"{_INDENT}S.indirect_calls += 1",
                f"{_INDENT}{assign}_s[1](vm{raw_args})",
                "else:",
                f"{_INDENT}{assign}_s[2](vm, v{args[0]}, "
                f"({boxed}{trailing}))",
            ]

        if op == "global_get":
            self.used.add("G")
            return [f"{r} = G[{instr.imm!r}]"]
        if op == "global_set":
            self.used.add("G")
            return [f"G[{instr.imm!r}] = v{args[0]}"]
        if op == "guard":
            # The VM catches GuardFailed at this function's call boundary
            # and rolls the counters back, so the segment fuel already
            # charged for this block is unwound with the deopt.
            if isinstance(instr.imm, tuple):
                site, values = instr.imm[0], instr.imm[1]
                if len(instr.imm) == 3:
                    # Resuming polymorphic guard: a miss records the site
                    # and control continues into the materialized slow
                    # path, so no state is abandoned.
                    return [f"if v{args[0]} not in {values!r}: "
                            f"vm.notify_site_miss({self.func.name!r}, "
                            f"{site})"]
                return [f"if v{args[0]} not in {values!r}: "
                        f"raise GuardFailed({self.func.name!r}, None, "
                        f"{site})"]
            return [f"if v{args[0]} != {int(instr.imm)}: "
                    f"raise GuardFailed({self.func.name!r})"]

        raise UnsupportedConstruct(
            f"{self.func.name}: unsupported opcode {op!r}")


# ---------------------------------------------------------------------------
# Structured (relooper-style) emission.
# ---------------------------------------------------------------------------

class _BlockUnit:
    """One straight-line block at its region level."""

    kind = "block"

    def __init__(self, bid: int):
        self.bid = bid
        self.label = bid
        self.labels = (bid,)
        self.members = frozenset((bid,))


class _LoopUnit:
    """A single-entry SCC: a native loop.  ``sub`` is the region tree of
    the loop body with the backedges to ``header`` cut."""

    kind = "loop"

    def __init__(self, header: int, sub: List[object],
                 members: frozenset):
        self.header = header
        self.sub = sub
        self.label = header
        self.labels = (header,)
        self.members = members


class _DispatchUnit:
    """A multi-entry (irreducible) SCC: emitted flat as a region-local
    dispatch tree over ``_b``.  ``fall_entry`` is set when this region
    contains its level's entry block (control falls in without a branch
    having initialized ``_b``)."""

    kind = "dispatch"

    def __init__(self, entries: List[int], members_sorted: List[int],
                 fall_entry: Optional[int]):
        self.entries = entries
        self.members_list = members_sorted
        self.label = entries[0]
        self.labels = tuple(entries)
        self.members = frozenset(members_sorted)
        self.fall_entry = fall_entry
        self.idx = {bid: i for i, bid in enumerate(members_sorted)}
        # Arriving branches assign ``_b`` through the unit's merge scope.
        self.entry_idx = {lab: self.idx[lab] for lab in entries}


class _Scope:
    """One open ``while True:`` on the emission stack.

    * ``merge`` — a single-shot scope whose ``break`` lands at the start
      of the scoped unit's code (``labels`` are that unit's entry
      labels; ``token`` is the canonical ``_st`` arrival value).
    * ``loop`` — a real loop; branching to ``token`` (the header) is
      ``continue``.
    * ``dispatch`` — an irreducible region's dispatch loop; ``labels``
      are all region members and ``idx`` maps them to ``_b`` values.
    """

    __slots__ = ("kind", "labels", "token", "idx", "st_mark")

    def __init__(self, kind: str, labels, token: int,
                 idx: Optional[Dict[int, int]] = None):
        self.kind = kind
        self.labels = frozenset(labels)
        self.token = token
        self.idx = idx
        self.st_mark = 0


def _tarjan_sccs(succs: Dict[int, List[int]], entry: int
                 ) -> List[List[int]]:
    """Iterative Tarjan over ``succs`` from ``entry``; SCCs are returned
    in reverse topological order of the condensation."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    onstack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    work: List[List[int]] = [[entry, 0]]
    while work:
        frame = work[-1]
        v, child = frame
        if child == 0:
            index[v] = low[v] = counter
            counter += 1
            stack.append(v)
            onstack.add(v)
        targets = succs[v]
        descended = False
        while child < len(targets):
            w = targets[child]
            child += 1
            if w not in index:
                frame[1] = child
                work.append([w, 0])
                descended = True
                break
            if w in onstack:
                low[v] = min(low[v], index[w])
        if descended:
            continue
        work.pop()
        if work:
            parent = work[-1][0]
            low[parent] = min(low[parent], low[v])
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                onstack.discard(w)
                scc.append(w)
                if w == v:
                    break
            sccs.append(scc)
    return sccs


# Indentation budget: CPython's parser rejects nesting around 100
# levels; leave generous headroom for the skeleton, peepholes, and the
# extra level the indirect-call inline cache nests inside a block.
_MAX_DEPTH = 86


class StructuredEmitter(PyEmitter):
    """Relooper-style structured emission (see the module docstring).

    ``batch_fuel=False`` keeps the structured control flow but charges
    ``vm.stats`` directly per segment like the dispatch emitter — an
    ablation knob for benchmarking how much of the win is structure vs
    counter batching; artifacts never cache unbatched output.
    """

    def __init__(self, func: Function, module: Optional[Module] = None,
                 batch_fuel: bool = True):
        super().__init__(func, module)
        self.batch_fuel = batch_fuel
        self.dispatch_regions = 0
        self.dispatch_region_blocks = 0

    # ------------------------------------------------------------------
    # Region tree construction.
    # ------------------------------------------------------------------
    def _region_units(self, nodes: frozenset, entry: int,
                      cut: frozenset) -> List[object]:
        """Decompose ``nodes`` (minus ``cut`` edges) into a topologically
        ordered list of units: blocks, single-entry loops (recursively
        decomposed with their backedges cut), and irreducible
        multi-entry regions left flat for per-region dispatch."""
        succs = {
            b: [t for t in dict.fromkeys(self._succ_raw[b])
                if t in nodes and (b, t) not in cut]
            for b in nodes
        }
        preds: Dict[int, List[int]] = {b: [] for b in nodes}
        for b, targets in succs.items():
            for t in targets:
                preds[t].append(b)
        units: List[object] = []
        for scc in reversed(_tarjan_sccs(succs, entry)):
            members = frozenset(scc)
            if len(scc) == 1 and scc[0] not in succs[scc[0]]:
                units.append(_BlockUnit(scc[0]))
                continue
            entries = sorted(
                (m for m in members
                 if m == entry or any(p not in members for p in preds[m])),
                key=self._rpo_pos.get)
            if len(entries) == 1:
                header = entries[0]
                sub_cut = cut | {
                    (b, header) for b in members
                    if header in self._succ_raw[b]}
                sub = self._region_units(members, header, sub_cut)
                units.append(_LoopUnit(header, sub, members))
            else:
                units.append(_DispatchUnit(
                    entries, sorted(members, key=self._rpo_pos.get),
                    entry if entry in members else None))
        return units

    # ------------------------------------------------------------------
    # Line assembly helpers.
    # ------------------------------------------------------------------
    def _line(self, text: str) -> None:
        if self._depth > _MAX_DEPTH:
            raise _StructureTooDeep(
                f"{self.func.name}: structured nesting exceeds "
                f"{_MAX_DEPTH} levels")
        self._lines.append(_INDENT * self._depth + text)

    def _push_scope(self, scope: _Scope) -> None:
        scope.st_mark = self._st_sets
        self._scopes.append(scope)
        self._line("while True:")
        self._depth += 1

    def _close_scope(self) -> None:
        """End the innermost scope's ``while`` and emit its landing:
        arrival routing for the ``_st`` unwinding protocol.  Elided
        entirely when no ``_st`` was set inside the scope (only plain
        one-level breaks arrived, which simply fall through)."""
        scope = self._scopes.pop()
        self._depth -= 1
        if self._st_sets == scope.st_mark:
            return
        outer = self._scopes[-1] if self._scopes else None
        route: List[Tuple[str, str]] = []
        if outer is not None and outer.kind == "loop":
            route.append((f"_st == {outer.token}", "_st = -1; continue"))
        elif outer is not None and outer.kind == "dispatch":
            # Clearing the token falls out of the region tree arm to the
            # dispatch loop's end, re-dispatching on the already-set _b.
            route.append((f"_st == {outer.token}", "_st = -1"))
        if scope.kind == "merge":
            self._line("if _st != -1:")
            self._depth += 1
            self._line(f"if _st == {scope.token}: _st = -1")
            for cond, action in route:
                self._line(f"elif {cond}: {action}")
            if outer is not None:
                self._line("else: break")
            self._depth -= 1
        else:
            if route:
                cond, action = route[0]
                self._line(f"if {cond}: {action}")
                if outer is not None:
                    self._line("else: break")
            elif outer is not None:
                self._line("break")

    # ------------------------------------------------------------------
    # Transfers (branch edges) under the scope stack.
    # ------------------------------------------------------------------
    def _transfer(self, call: BlockCall) -> None:
        target = self.func.blocks[call.block]
        pairs = [(param, arg)
                 for (param, _), arg in zip(target.params, call.args)
                 if param != arg]
        if pairs:
            lhs = ", ".join(f"v{param}" for param, _ in pairs)
            rhs = ", ".join(f"v{arg}" for _, arg in pairs)
            self._line(f"{lhs} = {rhs}")
        label = call.block
        inline = self._inline_map.pop(label, None)
        if inline is not None:
            self._emit_unit(inline)
            return
        for levels_up, scope in enumerate(reversed(self._scopes)):
            if label not in scope.labels:
                continue
            if scope.idx is not None:
                self._line(f"_b = {scope.idx[label]}")
            if levels_up == 0:
                if scope.kind == "loop":
                    self._line("continue")
                elif scope.kind == "merge":
                    self._line("break")
                else:
                    # Region-internal edge: fall out of the tree arm to
                    # the dispatch loop's end, which re-dispatches.
                    self._line(f"# -> block{label}")
            else:
                self._st_sets += 1
                self._line(f"_st = {scope.token}")
                self._line("break")
            return
        raise BackendError(
            f"{self.func.name}: unresolved branch to block{label}")

    # ------------------------------------------------------------------
    # Unit sequences (one region level).
    # ------------------------------------------------------------------
    def _emit_seq(self, units: List[object]) -> None:
        label_of: Dict[int, object] = {}
        owner: Dict[int, object] = {}
        for u in units:
            for lab in u.labels:
                label_of[lab] = u
            for b in u.members:
                owner[b] = u
        # Branch edges into each unit's labels, with multiplicity, from
        # anywhere in this level's subgraph outside the target unit
        # (intra-unit edges are loop backedges / region-internal).
        in_edges: Dict[int, List[int]] = {lab: [] for lab in label_of}
        for u in units:
            for b in u.members:
                for t in self._succ_raw[b]:
                    tu = label_of.get(t)
                    if tu is None or tu is u:
                        continue
                    in_edges[t].append(b)
        # A non-entry unit with exactly one incoming branch is emitted
        # inline at that branch site (classic relooper "simple" shape);
        # the rest stay in sequence behind merge scopes.
        scoped = [units[0]]
        for u in units[1:]:
            if (u.kind != "dispatch"
                    and len(in_edges[u.label]) == 1):
                self._inline_map[u.label] = u
            else:
                scoped.append(u)
        unit_pos = {id(u): i for i, u in enumerate(scoped)}

        def host_pos(block: int) -> int:
            u = owner[block]
            while id(u) not in unit_pos:
                # Inlined units live at their single branch site's host.
                u = owner[in_edges[u.label][0]]
            return unit_pos[id(u)]

        # Merge-scope intervals: scope i spans [start_i, i), opening
        # before the earliest unit that branches to unit i and closing
        # right where unit i's code begins.  Partial overlaps are fixed
        # by extending starts outward until the intervals nest.
        starts: Dict[int, int] = {}
        for i in range(1, len(scoped)):
            u = scoped[i]
            starts[i] = min(host_pos(src)
                            for lab in u.labels for src in in_edges[lab])
        for j in sorted(starts):
            changed = True
            while changed:
                changed = False
                for k in range(1, j):
                    if starts[k] < starts[j] < k:
                        starts[j] = starts[k]
                        changed = True
        opens: Dict[int, List[int]] = {}
        for i, start in starts.items():
            opens.setdefault(start, []).append(i)
        for group in opens.values():
            group.sort(reverse=True)  # longest-lived scope outermost
        for i, u in enumerate(scoped):
            if i >= 1:
                self._close_scope()
            for j in opens.get(i, ()):
                target = scoped[j]
                self._push_scope(_Scope(
                    "merge", target.labels, target.label,
                    getattr(target, "entry_idx", None)))
            self._emit_unit(u, is_level_entry=(i == 0))

    def _emit_unit(self, u: object, is_level_entry: bool = False) -> None:
        if u.kind == "block":
            self._line(f"# block{u.bid}")
            self._emit_structured_block(self.func.blocks[u.bid])
        elif u.kind == "loop":
            self._push_scope(_Scope("loop", u.labels, u.header))
            self._emit_seq(u.sub)
            self._close_scope()
        else:
            self._emit_dispatch_region(u, is_level_entry)

    # ------------------------------------------------------------------
    # Irreducible regions: per-region dispatch fallback.
    # ------------------------------------------------------------------
    def _emit_dispatch_region(self, u: _DispatchUnit,
                              is_level_entry: bool) -> None:
        self.dispatch_regions += 1
        self.dispatch_region_blocks += len(u.members_list)
        idx = u.idx
        # Entering branches assign _b before unwinding here; only a
        # fall-in at the region's own level entry needs initialization.
        if is_level_entry:
            if u.fall_entry is None:
                raise BackendError(
                    f"{self.func.name}: irreducible region entered by "
                    f"fall-through without an entry block")
            self._line(f"_b = {idx[u.fall_entry]}")
        token = -(2 + self.dispatch_regions)
        self._push_scope(_Scope("dispatch", u.members, token, idx))
        self._emit_region_tree(u.members_list, idx)
        self._close_scope()

    def _emit_region_tree(self, members: List[int],
                          idx: Dict[int, int]) -> None:
        if len(members) == 1:
            bid = members[0]
            self._line(f"# block{bid} [_b={idx[bid]}]")
            self._emit_structured_block(self.func.blocks[bid])
            return
        mid = len(members) // 2
        self._line(f"if _b < {idx[members[mid]]}:")
        self._depth += 1
        self._emit_region_tree(members[:mid], idx)
        self._depth -= 1
        self._line("else:")
        self._depth += 1
        self._emit_region_tree(members[mid:], idx)
        self._depth -= 1

    # ------------------------------------------------------------------
    # Blocks and terminators under batched counters.
    # ------------------------------------------------------------------
    def _fuel_add(self, amount: int) -> str:
        if self.batch_fuel:
            return f"_fu += {amount}"
        return f"S.fuel += {amount}"

    def _flush_lines(self, pending: int) -> List[str]:
        """Commit batched counters before a guest call so the callee
        (and any fuel-limit check it runs) sees the VM's exact totals;
        ``pending`` is the fuel for the current segment, through the
        call instruction itself."""
        if not self.batch_fuel:
            return [f"S.fuel += {pending}"]
        lines = [f"S.fuel += _fu + {pending}; _fu = 0" if pending
                 else "S.fuel += _fu; _fu = 0"]
        for attr, local in self._counter_locals:
            lines.append(f"S.{attr} += {local}; {local} = 0")
        return lines

    def _emit_structured_block(self, block: Block) -> None:
        counters = {"loads": 0, "stores": 0, "calls": 0}
        body: List[str] = []
        segment: List[str] = []
        pending = 0
        for instr in block.instrs:
            segment.extend(self._emit_instr(instr, counters))
            pending += 1
            if instr.op in ("call", "call_indirect"):
                body.extend(self._flush_lines(pending))
                body.extend(segment)
                segment = []
                pending = 0
        if pending:
            body.append(self._fuel_add(pending))
        body.extend(segment)
        head: List[str] = []
        for attr, local in (("loads", "_ld"), ("stores", "_sd"),
                            ("calls", "_cl")):
            if counters[attr]:
                if self.batch_fuel:
                    head.append(f"{local} += {counters[attr]}")
                else:
                    head.append(f"S.{attr} += {counters[attr]}")
        for raw in head:
            self._line(raw)
        for raw in body:
            self._line(raw)
        # Same boundary the VM checks at: after the block's instructions,
        # before charging the terminator.
        if self.batch_fuel:
            self._line('if _L is not None and S.fuel + _fu > _L: '
                       'raise OutOfFuel("fuel limit %d exceeded" % _L)')
        else:
            self._line('if _L is not None and S.fuel > _L: '
                       'raise OutOfFuel("fuel limit %d exceeded" % _L)')
        self._line(self._fuel_add(1))
        term = block.terminator
        if isinstance(term, Jump):
            self._transfer(term.target)
        elif isinstance(term, BrIf):
            self._line(f"if v{term.cond}:")
            self._depth += 1
            self._transfer(term.if_true)
            self._depth -= 1
            self._line("else:")
            self._depth += 1
            self._transfer(term.if_false)
            self._depth -= 1
        elif isinstance(term, BrTable):
            if not term.cases:
                self._transfer(term.default)
                return
            self._line(f"_i = v{term.index}")
            for pos, call in enumerate(term.cases):
                self._line(f"{'if' if pos == 0 else 'elif'} _i == {pos}:")
                self._depth += 1
                self._transfer(call)
                self._depth -= 1
            self._line("else:")
            self._depth += 1
            self._transfer(term.default)
            self._depth -= 1
        elif isinstance(term, Ret):
            if term.args:
                self._line(f"return v{term.args[0]}")
            else:
                self._line("return None")
        elif isinstance(term, Trap):
            self._line(f"raise VMTrap({term.message!r})")
        else:
            raise UnsupportedConstruct(
                f"{self.func.name}: block{block.id} has no terminator")

    # ------------------------------------------------------------------
    # Source assembly.
    # ------------------------------------------------------------------
    @staticmethod
    def _peephole(lines: List[str]) -> List[str]:
        """Merge adjacent ``_fu += a`` statements in the same suite —
        a terminator charge followed by an inlined successor's first
        segment charge, with no observable point between them."""
        import re
        pat = re.compile(r"^(\s*)_fu \+= (\d+)$")
        out: List[str] = []
        for line in lines:
            m = pat.match(line)
            if m and out:
                prev = pat.match(out[-1])
                if prev and prev.group(1) == m.group(1):
                    total = int(prev.group(2)) + int(m.group(2))
                    out[-1] = f"{m.group(1)}_fu += {total}"
                    continue
            out.append(line)
        return out

    def emit_source(self) -> str:
        func = self.func
        rpo = self._block_order()
        self._rpo_pos = {bid: i for i, bid in enumerate(rpo)}
        self._succ_raw = {
            bid: [c.block for c in
                  func.blocks[bid].terminator.targets()]
            for bid in rpo}
        units = self._region_units(frozenset(rpo), func.entry,
                                   frozenset())
        # Counter locals that exist at all, known before the first
        # flush site is emitted.
        used_counters: Set[str] = set()
        for bid in rpo:
            for instr in func.blocks[bid].instrs:
                op = instr.op
                if op in ("load64", "loadf64") or op in _SIZED_LOADS:
                    used_counters.add("loads")
                elif op in ("store64", "storef64") or op in _SIZED_STORES:
                    used_counters.add("stores")
                elif op == "call":
                    used_counters.add("calls")
        self._counter_locals = [
            (attr, local)
            for attr, local in (("loads", "_ld"), ("stores", "_sd"),
                                ("calls", "_cl"))
            if attr in used_counters]

        self._lines = []
        # The body always lives inside the depth-bookkeeping try (plus
        # the function def itself): two levels.
        self._depth = 2
        self._scopes: List[_Scope] = []
        self._inline_map: Dict[int, object] = {}
        self._st_sets = 0
        self.dispatch_regions = 0
        self.dispatch_region_blocks = 0
        self._emit_seq(units)
        assert not self._scopes and not self._inline_map
        body = self._peephole(self._lines) if self.batch_fuel \
            else self._lines

        lines: List[str] = []
        lines.append(f"# {func.name}{func.sig} — compiled from residual "
                     f"IR by repro.backend.StructuredEmitter")
        entry = func.entry_block()
        nparams = len(entry.params)
        params = "".join(f", v{v}" for v, _ in entry.params)
        lines.append(f"def _compiled(vm{params}):")
        lines.extend(_INDENT + line for line in self._prologue())
        for binding in self._preamble():
            lines.append(_INDENT + binding)
        if self.batch_fuel:
            lines.append(f"{_INDENT}_fu = 0")
            for _, local in self._counter_locals:
                lines.append(f"{_INDENT}{local} = 0")
        if self._st_sets:
            lines.append(f"{_INDENT}_st = -1")
        lines.append(f"{_INDENT}try:")
        lines.extend(body)
        lines.append(f"{_INDENT}finally:")
        if self.batch_fuel:
            lines.append(f"{_INDENT * 2}S.fuel += _fu")
            for attr, local in self._counter_locals:
                lines.append(f"{_INDENT * 2}S.{attr} += {local}")
        lines.append(f"{_INDENT * 2}vm._call_depth -= 1")
        lines.append(f"_compiled._nparams = {nparams}")
        return "\n".join(lines) + "\n"


def compile_python_source(name: str, source: str,
                          code: Optional[object] = None) -> Callable:
    """``compile()``/``exec()`` emitted backend source into a callable.

    Split out from :func:`compile_function` so warm-loaded sources from
    the artifact store (:mod:`repro.pipeline`) take the exact same path
    as freshly emitted ones.  ``code`` may carry a precompiled code
    object for ``source`` (the tier-3½ codegen rung: unmarshaled from
    the artifact store, or compiled in a parallel emit stage), in which
    case the ``compile()`` step is skipped.
    """
    env = dict(BACKEND_GLOBALS)
    if code is None:
        try:
            code = compile(source, f"<pybackend:{name}>", "exec")
        except (SyntaxError, RecursionError, MemoryError) as exc:
            raise UnsupportedConstruct(
                f"{name}: emitted source does not compile: {exc}") from exc
    exec(code, env)
    pyfunc = env["_compiled"]
    pyfunc.__name__ = name
    pyfunc.__qualname__ = name
    return pyfunc


def emit_function_source(func: Function,
                         module: Optional[Module] = None,
                         mode: str = "structured",
                         batch_fuel: bool = True) -> Tuple[str, str, object]:
    """Emit Python source for ``func`` in the requested mode.

    Returns ``(source, mode_used, emitter)``.  Structured emission that
    would nest past CPython's indentation limit falls back to the
    dispatch emitter for the whole function (``mode_used`` reports what
    actually happened — the fallback is deterministic, so cached
    sources stay stable).
    """
    if mode not in EMIT_MODES:
        raise BackendError(f"unknown emit mode {mode!r}")
    if mode == "structured":
        emitter = StructuredEmitter(func, module, batch_fuel=batch_fuel)
        try:
            return emitter.emit_source(), "structured", emitter
        except _StructureTooDeep:
            pass
    emitter = PyEmitter(func, module)
    return emitter.emit_source(), "dispatch", emitter


def compile_function(func: Function,
                     module: Optional[Module] = None,
                     mode: str = "structured",
                     batch_fuel: bool = True) -> CompiledFunction:
    """Lower one verified IR function to a Python callable.

    Raises :class:`UnsupportedConstruct` when the function cannot be
    compiled; callers should fall back to the IR VM for that function.
    """
    source, mode_used, emitter = emit_function_source(
        func, module, mode, batch_fuel)
    return CompiledFunction(
        func.name, source,
        compile_python_source(func.name, source),
        dispatch_blocks=getattr(emitter, "dispatch_blocks", 0),
        fallthrough_links=getattr(emitter, "fallthrough_links", 0),
        emit_mode=mode_used,
        dispatch_regions=getattr(emitter, "dispatch_regions", 0)
        if mode_used == "structured" else 0,
        dispatch_region_blocks=getattr(emitter, "dispatch_region_blocks",
                                       0)
        if mode_used == "structured" else 0)


def compile_functions(module: Module,
                      names: Optional[List[str]] = None,
                      mode: str = "structured",
                      batch_fuel: bool = True
                      ) -> Tuple[Dict[str, Callable],
                                 List[Tuple[str, str]]]:
    """Compile a set of module functions, falling back per function.

    Returns ``(compiled, fallbacks)`` where ``compiled`` maps function
    name to callable and ``fallbacks`` lists ``(name, reason)`` pairs
    for functions left to the IR VM.
    """
    compiled: Dict[str, Callable] = {}
    fallbacks: List[Tuple[str, str]] = []
    for name in (list(module.functions) if names is None else names):
        func = module.functions.get(name)
        if func is None:
            fallbacks.append((name, "not an IR function"))
            continue
        try:
            compiled[name] = compile_function(
                func, module, mode=mode, batch_fuel=batch_fuel).pyfunc
        except UnsupportedConstruct as exc:
            fallbacks.append((name, str(exc)))
    return compiled, fallbacks
