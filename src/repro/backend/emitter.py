"""Compile residual IR to native Python functions (the tier-2 backend).

The IR VM in :mod:`repro.vm.machine` walks one instruction dataclass at
a time; every op pays dict lookups and a long opcode if-chain.  After
specialization that interpretive overhead is the dominant cost left, so
this module translates a verified IR function into Python *source*,
``compile()``/``exec()``s it, and returns a callable with the VM's exact
observable semantics:

* values are the same unsigned-64-bit bit patterns (``& MASK64`` after
  wrapping ops, sign-bias compares for signed predicates);
* traps raise the same :class:`~repro.vm.machine.VMTrap` kinds with the
  same messages, out-of-fuel raises :class:`OutOfFuel`;
* fuel/load/store/call counters are charged per *block* (one ``+=`` per
  counter per block entry instead of one per instruction), which yields
  byte-identical totals to the VM on every execution that does not trap
  mid-block, and the fuel-limit check fires at the same block boundary
  the VM checks at;
* guest calls and intrinsic/host calls bridge back through
  ``vm.call`` / ``vm.call_table``, so compiled and interpreted functions
  can call each other freely (the VM consults its ``compiled`` table on
  every call).

Control flow: blocks are renumbered in reverse-postorder, scheduled
into fall-through *chains*, and dispatched inside a ``while True`` loop
through a binary decision tree over the block index ``_b`` (depth
``log2(n)``), with block-parameter passing as parallel tuple
assignment.  A chain is a run of blocks linked by unconditional jumps
(RPO-forward, so loop backedges still dispatch); the linked blocks are
laid out consecutively and the jump between them costs one ``_b <= k``
compare instead of a full dispatch round trip — entering a chain
mid-way (from some other predecessor) still works, because every block
keeps its dispatch index and the per-member guards skip the members
before it.  Anything the emitter cannot express raises
:class:`UnsupportedConstruct`; callers fall back to the VM per function.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.backend.runtime import BACKEND_GLOBALS
from repro.ir.function import Block, Function
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)
from repro.ir.module import Module


class BackendError(Exception):
    """The backend failed in a way that is not a per-function fallback."""


class UnsupportedConstruct(BackendError):
    """This function uses a construct the emitter cannot compile; the
    caller should run it on the IR VM instead."""


MASK_HEX = "0xFFFFFFFFFFFFFFFF"
SIGN_HEX = "0x8000000000000000"

_WRAP_BINOPS = {"iadd": "+", "isub": "-", "imul": "*"}
_PLAIN_BINOPS = {"iand": "&", "ior": "|", "ixor": "^"}
_FLOAT_BINOPS = {"fadd": "+", "fsub": "-", "fmul": "*"}
_UNSIGNED_CMPS = {"ieq": "==", "ine": "!=", "ilt_u": "<", "ile_u": "<=",
                  "igt_u": ">", "ige_u": ">="}
_SIGNED_CMPS = {"ilt_s": "<", "ile_s": "<=", "igt_s": ">", "ige_s": ">="}
_FLOAT_CMPS = {"feq": "==", "fne": "!=", "flt": "<", "fle": "<=",
               "fgt": ">", "fge": ">="}
_HELPER_UNOPS = {"itof": "_itof", "ftoi": "_ftoi", "fsqrt": "_fsqrt",
                 "ffloor": "_ffloor", "bits_ftoi": "_bits_ftoi",
                 "bits_itof": "_bits_itof"}
_HELPER_BINOPS = {"idiv_s": "_idiv_s", "idiv_u": "_idiv_u",
                  "irem_s": "_irem_s", "irem_u": "_irem_u",
                  "fdiv": "_fdiv", "ishr_s": "_ishr_s"}
# op -> (size in bytes, signed)
_SIZED_LOADS = {"load8_u": (1, False), "load8_s": (1, True),
                "load16_u": (2, False), "load16_s": (2, True),
                "load32_u": (4, False), "load32_s": (4, True)}
_SIZED_STORES = {"store8": 1, "store16": 2, "store32": 4}

_INDENT = "    "


def _float_literal(value: float) -> Tuple[str, bool]:
    """A source literal for a float; non-finite values go through the
    bit-pattern helper (``repr`` of nan/inf is not a literal).  Returns
    (expression, needs_bits_helper)."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        import struct
        bits = int.from_bytes(struct.pack("<d", value), "little")
        return f"_bits_itof({bits:#x})", True
    return repr(value), False


@dataclasses.dataclass
class CompiledFunction:
    """One IR function lowered to a Python callable.

    ``pyfunc`` has signature ``(vm, *args)`` — the same calling
    convention the VM uses for its own functions — and ``source`` is the
    exact Python text that was compiled (golden-testable).
    """

    name: str
    source: str
    pyfunc: Callable
    # Static dispatch accounting from the fall-through scheduler: how
    # many blocks remained dispatch targets, and how many intra-chain
    # jumps became plain fall-through.
    dispatch_blocks: int = 0
    fallthrough_links: int = 0


class PyEmitter:
    """Translates one verified IR function into Python source."""

    def __init__(self, func: Function, module: Optional[Module] = None):
        self.func = func
        self.module = module
        self.used: Set[str] = set()
        self._chain_next: Dict[int, int] = {}
        self.dispatch_blocks = 0
        self.fallthrough_links = 0

    # ------------------------------------------------------------------
    # Block ordering and dispatch indices.
    # ------------------------------------------------------------------
    def _block_order(self) -> List[int]:
        """Reachable blocks in reverse postorder, entry first."""
        func = self.func
        if func.entry is None:
            raise UnsupportedConstruct(f"{func.name}: no entry block")
        # Iterative DFS to avoid Python recursion limits on huge CFGs.
        stack: List[Tuple[int, int]] = [(func.entry, 0)]
        post: List[int] = []
        seen = {func.entry}
        targets_of: Dict[int, List[int]] = {}
        while stack:
            bid, child = stack[-1]
            if bid not in targets_of:
                block = func.blocks.get(bid)
                if block is None:
                    raise UnsupportedConstruct(
                        f"{self.func.name}: dangling block ref block{bid}")
                if block.terminator is None:
                    raise UnsupportedConstruct(
                        f"{self.func.name}: block{bid} not terminated")
                targets_of[bid] = [c.block for c in
                                   block.terminator.targets()]
            targets = targets_of[bid]
            if child < len(targets):
                stack[-1] = (bid, child + 1)
                succ = targets[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                post.append(bid)
                stack.pop()
        order = list(reversed(post))
        assert order[0] == func.entry
        return order

    def _schedule_chains(self, rpo: List[int]) -> List[List[int]]:
        """Greedy fall-through scheduling over the RPO order.

        Links ``A -> B`` when A ends in an unconditional jump to B, B is
        not the entry, B is RPO-later than A (no cycles, so loop
        backedges keep dispatching), and no earlier block already
        claimed B as its layout successor.
        """
        func = self.func
        position = {bid: i for i, bid in enumerate(rpo)}
        succ_of: Dict[int, int] = {}
        claimed: Set[int] = set()
        for bid in rpo:
            term = func.blocks[bid].terminator
            if not isinstance(term, Jump):
                continue
            target = term.target.block
            if (target != bid and target != func.entry
                    and target not in claimed
                    and position[target] > position[bid]):
                succ_of[bid] = target
                claimed.add(target)
        chains = []
        for bid in rpo:
            if bid in claimed:
                continue
            chain = [bid]
            while chain[-1] in succ_of:
                chain.append(succ_of[chain[-1]])
            chains.append(chain)
        return chains

    # ------------------------------------------------------------------
    # Source assembly.
    # ------------------------------------------------------------------
    def emit_source(self) -> str:
        func = self.func
        chains = self._schedule_chains(self._block_order())
        order = [bid for chain in chains for bid in chain]
        self.index = {bid: i for i, bid in enumerate(order)}
        self._chain_next = {a: b for chain in chains
                            for a, b in zip(chain, chain[1:])}
        self.dispatch_blocks = len(chains)
        self.fallthrough_links = len(order) - len(chains)

        bodies = {bid: self._emit_block(func.blocks[bid]) for bid in order}

        lines: List[str] = []
        lines.append(f"# {func.name}{func.sig} — compiled from residual IR "
                     f"by repro.backend.PyEmitter")
        lines.append("def _compiled(vm, *_args):")
        entry = func.entry_block()
        nparams = len(entry.params)
        lines.append(f"{_INDENT}if len(_args) != {nparams}:")
        lines.append(
            f'{_INDENT * 2}raise VMTrap("{func.name}: expected {nparams} '
            f'args, got %d" % len(_args))')
        if nparams:
            names = ", ".join(f"v{v}" for v, _ in entry.params)
            trailing = "," if nparams == 1 else ""
            lines.append(f"{_INDENT}{names}{trailing} = _args")
        for binding in self._preamble():
            lines.append(_INDENT + binding)
        lines.append(f"{_INDENT}_b = 0")
        lines.append(f"{_INDENT}while True:")
        lines.extend(self._emit_tree(chains, bodies, depth=2))
        return "\n".join(lines) + "\n"

    def _preamble(self) -> List[str]:
        used = self.used
        bindings = []
        if "M" in used:
            bindings.append("M = vm.memory")
            bindings.append("_ML = len(M)")
        bindings.append("S = vm.stats")
        if "G" in used:
            bindings.append("G = vm.globals")
        if "_call" in used:
            bindings.append("_call = vm.call")
        if "_ctab" in used:
            bindings.append("_ctab = vm.call_table")
        if "_int" in used:
            bindings.append("_int = int")
        if "_ifb" in used:
            bindings.append("_ifb = int.from_bytes")
        bindings.append("_L = vm.fuel_limit")
        return bindings

    def _emit_tree(self, chains: List[List[int]],
                   bodies: Dict[int, List[str]], depth: int) -> List[str]:
        """A binary decision tree over the dispatch index ``_b`` whose
        leaves are fall-through chains.

        Within a chain leaf, every member except the last is guarded by
        ``if _b <= <its index>`` — true both when the dispatcher entered
        at that member and when control fell through from the previous
        member (``_b`` is not updated along intra-chain edges) — and the
        last member runs unconditionally (the leaf covers exactly the
        chain's index range).
        """
        ind = _INDENT * depth
        if len(chains) == 1:
            chain = chains[0]
            lines: List[str] = []
            for k, bid in enumerate(chain):
                idx = self.index[bid]
                lines.append(f"{ind}# block{bid} [_b={idx}]")
                if k < len(chain) - 1:
                    lines.append(f"{ind}if _b <= {idx}:")
                    lines.extend(ind + _INDENT + line
                                 for line in bodies[bid])
                else:
                    lines.extend(ind + line for line in bodies[bid])
            return lines
        mid = len(chains) // 2
        lines = [f"{ind}if _b < {self.index[chains[mid][0]]}:"]
        lines.extend(self._emit_tree(chains[:mid], bodies, depth + 1))
        lines.append(f"{ind}else:")
        lines.extend(self._emit_tree(chains[mid:], bodies, depth + 1))
        return lines

    # ------------------------------------------------------------------
    # Blocks.
    # ------------------------------------------------------------------
    def _emit_block(self, block: Block) -> List[str]:
        lines: List[str] = []
        counters = {"loads": 0, "stores": 0, "calls": 0}
        # Fuel is charged in segments ending at each guest call: at every
        # point where another frame can observe the shared fuel counter
        # (a callee's block-boundary limit checks, and this block's own
        # check below) the total matches the VM's per-instruction
        # accounting exactly.  A call-free block degenerates to a single
        # up-front charge.
        body: List[str] = []
        segment: List[str] = []
        pending_fuel = 0
        for instr in block.instrs:
            segment.extend(self._emit_instr(instr, counters))
            pending_fuel += 1
            if instr.op in ("call", "call_indirect"):
                # Each segment ends at its (single) call, so charging the
                # segment's fuel first means the callee sees exactly the
                # VM's total at the call instruction.
                body.append(f"S.fuel += {pending_fuel}")
                body.extend(segment)
                segment = []
                pending_fuel = 0
        if pending_fuel:
            body.append(f"S.fuel += {pending_fuel}")
        body.extend(segment)
        for counter in ("loads", "stores", "calls"):
            if counters[counter]:
                lines.append(f"S.{counter} += {counters[counter]}")
        lines.extend(body)
        # The VM checks the fuel limit once per block iteration, after
        # the instructions and before charging the terminator.
        lines.append("if _L is not None and S.fuel > _L: "
                     "raise OutOfFuel(\"fuel limit %d exceeded\" % _L)")
        lines.append("S.fuel += 1")
        lines.extend(self._emit_terminator(block))
        return lines

    # ------------------------------------------------------------------
    # Terminators and edges.
    # ------------------------------------------------------------------
    def _edge(self, call: BlockCall,
              fallthrough: bool = False) -> List[str]:
        target = self.func.blocks[call.block]
        pairs = [(param, arg)
                 for (param, _), arg in zip(target.params, call.args)
                 if param != arg]
        lines = []
        if pairs:
            lhs = ", ".join(f"v{param}" for param, _ in pairs)
            rhs = ", ".join(f"v{arg}" for _, arg in pairs)
            lines.append(f"{lhs} = {rhs}")
        if fallthrough:
            # The layout successor is next in the chain leaf; leaving
            # ``_b`` alone makes its guard (and all later ones) true.
            lines.append(f"# fall through to block{call.block}")
        else:
            lines.append(f"_b = {self.index[call.block]}")
        return lines

    def _emit_terminator(self, block: Block) -> List[str]:
        term = block.terminator
        if isinstance(term, Jump):
            return self._edge(
                term.target,
                fallthrough=(self._chain_next.get(block.id)
                             == term.target.block))
        if isinstance(term, BrIf):
            lines = [f"if v{term.cond}:"]
            lines.extend(_INDENT + l for l in self._edge(term.if_true))
            lines.append("else:")
            lines.extend(_INDENT + l for l in self._edge(term.if_false))
            return lines
        if isinstance(term, BrTable):
            if not term.cases:
                return self._edge(term.default)
            lines = [f"_i = v{term.index}"]
            for pos, call in enumerate(term.cases):
                kw = "if" if pos == 0 else "elif"
                lines.append(f"{kw} _i == {pos}:")
                lines.extend(_INDENT + l for l in self._edge(call))
            lines.append("else:")
            lines.extend(_INDENT + l for l in self._edge(term.default))
            return lines
        if isinstance(term, Ret):
            if term.args:
                return [f"return v{term.args[0]}"]
            return ["return None"]
        if isinstance(term, Trap):
            return [f"raise VMTrap({term.message!r})"]
        raise UnsupportedConstruct(
            f"{self.func.name}: block{block.id} has no terminator")

    # ------------------------------------------------------------------
    # Instructions.
    # ------------------------------------------------------------------
    def _addr(self, instr: Instr, pre: List[str]) -> str:
        """The effective-address expression for a memory op (a temp when
        a static offset must be added)."""
        base = f"v{instr.args[0]}"
        if instr.imm:
            pre.append(f"_a = {base} + {instr.imm}")
            return "_a"
        return base

    def _emit_instr(self, instr: Instr, counters: Dict[str, int]
                    ) -> List[str]:
        op = instr.op
        args = instr.args
        r = f"v{instr.result}" if instr.result is not None else None

        if op == "iconst":
            return [f"{r} = {int(instr.imm)}"]
        if op == "fconst":
            literal, _ = _float_literal(instr.imm)
            return [f"{r} = {literal}"]
        if op in _WRAP_BINOPS:
            sym = _WRAP_BINOPS[op]
            return [f"{r} = (v{args[0]} {sym} v{args[1]}) & {MASK_HEX}"]
        if op in _PLAIN_BINOPS:
            sym = _PLAIN_BINOPS[op]
            return [f"{r} = v{args[0]} {sym} v{args[1]}"]
        if op == "ishl":
            return [f"{r} = (v{args[0]} << (v{args[1]} & 63)) & {MASK_HEX}"]
        if op == "ishr_u":
            return [f"{r} = v{args[0]} >> (v{args[1]} & 63)"]
        if op in _UNSIGNED_CMPS:
            self.used.add("_int")
            sym = _UNSIGNED_CMPS[op]
            return [f"{r} = _int(v{args[0]} {sym} v{args[1]})"]
        if op in _SIGNED_CMPS:
            # Signed compare via the sign-bias trick:
            # a <_s b  <=>  (a ^ 2**63) <_u (b ^ 2**63).
            self.used.add("_int")
            sym = _SIGNED_CMPS[op]
            return [f"{r} = _int((v{args[0]} ^ {SIGN_HEX}) {sym} "
                    f"(v{args[1]} ^ {SIGN_HEX}))"]
        if op in _FLOAT_BINOPS:
            sym = _FLOAT_BINOPS[op]
            return [f"{r} = v{args[0]} {sym} v{args[1]}"]
        if op in _FLOAT_CMPS:
            self.used.add("_int")
            sym = _FLOAT_CMPS[op]
            return [f"{r} = _int(v{args[0]} {sym} v{args[1]})"]
        if op in _HELPER_BINOPS:
            return [f"{r} = {_HELPER_BINOPS[op]}(v{args[0]}, v{args[1]})"]
        if op in _HELPER_UNOPS:
            return [f"{r} = {_HELPER_UNOPS[op]}(v{args[0]})"]
        if op == "fneg":
            return [f"{r} = -v{args[0]}"]
        if op == "fabs":
            return [f"{r} = _abs(v{args[0]})"]
        if op == "select":
            return [f"{r} = v{args[1]} if v{args[0]} else v{args[2]}"]

        if op == "load64":
            counters["loads"] += 1
            self.used.update(("M", "_ifb"))
            pre: List[str] = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob load64 at %#x" % {a})',
                f'{r} = _ifb(M[{a}:{a} + 8], "little")',
            ]
        if op == "store64":
            counters["stores"] += 1
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob store64 at %#x" % {a})',
                f'M[{a}:{a} + 8] = v{args[1]}.to_bytes(8, "little")',
            ]
        if op == "loadf64":
            counters["loads"] += 1
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob loadf64 at %#x" % {a})',
                f'{r} = _upf("<d", M, {a})[0]',
            ]
        if op == "storef64":
            counters["stores"] += 1
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            return pre + [
                f'if {a} < 0 or {a} + 8 > _ML: '
                f'raise VMTrap("oob storef64 at %#x" % {a})',
                f'_pki("<d", M, {a}, v{args[1]})',
            ]
        if op in _SIZED_LOADS:
            counters["loads"] += 1
            size, signed = _SIZED_LOADS[op]
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            if size == 1:
                raw = f"M[{a}]"
            else:
                self.used.add("_ifb")
                raw = f'_ifb(M[{a}:{a} + {size}], "little")'
            if signed:
                raw = f"_sext({raw}, {size * 8})"
            return pre + [
                f'if {a} < 0 or {a} + {size} > _ML: '
                f'raise VMTrap("oob {op} at %#x" % {a})',
                f"{r} = {raw}",
            ]
        if op in _SIZED_STORES:
            counters["stores"] += 1
            size = _SIZED_STORES[op]
            self.used.add("M")
            pre = []
            a = self._addr(instr, pre)
            mask = (1 << (size * 8)) - 1
            if size == 1:
                store = f"M[{a}] = v{args[1]} & {mask:#x}"
            else:
                store = (f"M[{a}:{a} + {size}] = "
                         f'(v{args[1]} & {mask:#x}).to_bytes({size}, '
                         f'"little")')
            return pre + [
                f'if {a} < 0 or {a} + {size} > _ML: '
                f'raise VMTrap("oob {op} at %#x" % {a})',
                store,
            ]

        if op == "call":
            counters["calls"] += 1
            self.used.add("_call")
            call_args = ", ".join(f"v{a}" for a in args)
            trailing = "," if len(args) == 1 else ""
            expr = f"_call({instr.imm!r}, ({call_args}{trailing}))"
            if r is not None:
                return [f"{r} = {expr}"]
            return [expr]
        if op == "call_indirect":
            self.used.add("_ctab")
            rest = args[1:]
            call_args = ", ".join(f"v{a}" for a in rest)
            trailing = "," if len(rest) == 1 else ""
            expr = f"_ctab(v{args[0]}, ({call_args}{trailing}))"
            if r is not None:
                return [f"{r} = {expr}"]
            return [expr]

        if op == "global_get":
            self.used.add("G")
            return [f"{r} = G[{instr.imm!r}]"]
        if op == "global_set":
            self.used.add("G")
            return [f"G[{instr.imm!r}] = v{args[0]}"]
        if op == "guard":
            # The VM catches GuardFailed at this function's call boundary
            # and rolls the counters back, so the segment fuel already
            # charged for this block is unwound with the deopt.
            return [f"if v{args[0]} != {int(instr.imm)}: "
                    f"raise GuardFailed({self.func.name!r})"]

        raise UnsupportedConstruct(
            f"{self.func.name}: unsupported opcode {op!r}")


def compile_python_source(name: str, source: str) -> Callable:
    """``compile()``/``exec()`` emitted backend source into a callable.

    Split out from :func:`compile_function` so warm-loaded sources from
    the artifact store (:mod:`repro.pipeline`) take the exact same path
    as freshly emitted ones.
    """
    env = dict(BACKEND_GLOBALS)
    try:
        code = compile(source, f"<pybackend:{name}>", "exec")
    except (SyntaxError, RecursionError, MemoryError) as exc:
        raise UnsupportedConstruct(
            f"{name}: emitted source does not compile: {exc}") from exc
    exec(code, env)
    pyfunc = env["_compiled"]
    pyfunc.__name__ = name
    pyfunc.__qualname__ = name
    return pyfunc


def compile_function(func: Function,
                     module: Optional[Module] = None) -> CompiledFunction:
    """Lower one verified IR function to a Python callable.

    Raises :class:`UnsupportedConstruct` when the function cannot be
    compiled; callers should fall back to the IR VM for that function.
    """
    emitter = PyEmitter(func, module)
    source = emitter.emit_source()
    return CompiledFunction(func.name, source,
                            compile_python_source(func.name, source),
                            dispatch_blocks=emitter.dispatch_blocks,
                            fallthrough_links=emitter.fallthrough_links)


def compile_functions(module: Module,
                      names: Optional[List[str]] = None
                      ) -> Tuple[Dict[str, Callable],
                                 List[Tuple[str, str]]]:
    """Compile a set of module functions, falling back per function.

    Returns ``(compiled, fallbacks)`` where ``compiled`` maps function
    name to callable and ``fallbacks`` lists ``(name, reason)`` pairs
    for functions left to the IR VM.
    """
    compiled: Dict[str, Callable] = {}
    fallbacks: List[Tuple[str, str]] = []
    for name in (list(module.functions) if names is None else names):
        func = module.functions.get(name)
        if func is None:
            fallbacks.append((name, "not an IR function"))
            continue
        try:
            compiled[name] = compile_function(func, module).pyfunc
        except UnsupportedConstruct as exc:
            fallbacks.append((name, str(exc)))
    return compiled, fallbacks
