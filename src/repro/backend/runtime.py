"""Runtime support for emitted Python code.

Every helper here mirrors one arm of the :mod:`repro.vm.machine`
evaluation loop bit-for-bit: the backend's correctness contract is that
a compiled residual function and the IR VM produce identical results,
traps, and printed output, so the rare/complex opcodes (trapping
division, float edge cases, sign extension) are implemented once, next
to each other, instead of being re-derived inline by the emitter.

The emitted code executes with :data:`BACKEND_GLOBALS` as its module
globals, so these helpers (and the trap exception types) are reachable
as plain global names without per-call imports.
"""

from __future__ import annotations

import math
import struct

from repro.ir.instructions import MASK64, to_signed
from repro.vm.machine import GuardFailed, OutOfFuel, VMTrap

__all__ = ["BACKEND_GLOBALS", "GuardFailed", "OutOfFuel", "VMTrap"]


def _idiv_s(a: int, b: int) -> int:
    a = to_signed(a)
    b = to_signed(b)
    if b == 0:
        raise VMTrap("integer divide by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & MASK64


def _idiv_u(a: int, b: int) -> int:
    if b == 0:
        raise VMTrap("integer divide by zero")
    return a // b


def _irem_s(a: int, b: int) -> int:
    a = to_signed(a)
    b = to_signed(b)
    if b == 0:
        raise VMTrap("integer remainder by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return (a - q * b) & MASK64


def _irem_u(a: int, b: int) -> int:
    if b == 0:
        raise VMTrap("integer remainder by zero")
    return a % b


def _ishr_s(a: int, s: int) -> int:
    return (to_signed(a) >> (s & 63)) & MASK64


def _itof(a: int) -> float:
    return float(to_signed(a))


def _ftoi(a: float) -> int:
    if math.isnan(a) or math.isinf(a):
        raise VMTrap("invalid float-to-int conversion")
    return int(a) & MASK64


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        return (math.nan if a == 0.0
                else math.copysign(math.inf, a) * math.copysign(1.0, b))
    return a / b


def _fsqrt(a: float) -> float:
    return math.sqrt(a) if a >= 0.0 else math.nan


def _ffloor(a: float) -> float:
    return float(math.floor(a))


def _bits_ftoi(a: float) -> int:
    return int.from_bytes(struct.pack("<d", a), "little")


def _bits_itof(a: int) -> float:
    return struct.unpack("<d", (a & MASK64).to_bytes(8, "little"))[0]


def _sext(raw: int, bits: int) -> int:
    if raw >= 1 << (bits - 1):
        raw -= 1 << bits
    return raw & MASK64


def _exhaust(vm, name: str) -> None:
    """Depth-limit trap for the compiled-callee prologue (PR 10).

    The prologue has already incremented ``vm._call_depth`` but has not
    entered the ``try`` whose ``finally`` decrements it, so the
    roll-back happens here — mirroring ``VM._dispatch``'s
    increment/check/decrement order and trap message exactly.
    """
    vm._call_depth -= 1
    raise VMTrap(f"call stack exhausted in {name}")


# The global namespace for emitted code (copied per compiled function so
# nothing can leak between modules).
BACKEND_GLOBALS = {
    "VMTrap": VMTrap,
    "OutOfFuel": OutOfFuel,
    "GuardFailed": GuardFailed,
    "_idiv_s": _idiv_s,
    "_idiv_u": _idiv_u,
    "_irem_s": _irem_s,
    "_irem_u": _irem_u,
    "_ishr_s": _ishr_s,
    "_itof": _itof,
    "_ftoi": _ftoi,
    "_fdiv": _fdiv,
    "_fsqrt": _fsqrt,
    "_ffloor": _ffloor,
    "_bits_ftoi": _bits_ftoi,
    "_bits_itof": _bits_itof,
    "_sext": _sext,
    "_exhaust": _exhaust,
    "_upf": struct.unpack_from,
    "_pki": struct.pack_into,
    "_abs": abs,
}
