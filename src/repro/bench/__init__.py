"""Benchmark harness utilities shared by the scripts in ``benchmarks/``."""

from repro.bench.harness import (
    WorkloadResult,
    geomean,
    run_js_workload,
    format_table,
)

__all__ = ["WorkloadResult", "geomean", "run_js_workload", "format_table"]
