"""Benchmark harness utilities shared by the scripts in ``benchmarks/``."""

from repro.bench.harness import (
    WorkloadResult,
    format_pipeline_stats,
    format_table,
    geomean,
    residual_shape,
    run_js_workload,
)

__all__ = [
    "WorkloadResult",
    "geomean",
    "run_js_workload",
    "format_table",
    "format_pipeline_stats",
    "residual_shape",
]
