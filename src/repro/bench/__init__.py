"""Benchmark harness utilities shared by the scripts in ``benchmarks/``."""

from repro.bench.harness import (
    BackendComparison,
    WorkloadResult,
    format_pipeline_stats,
    format_table,
    geomean,
    residual_shape,
    run_backend_comparison,
    run_js_workload,
)

__all__ = [
    "BackendComparison",
    "WorkloadResult",
    "geomean",
    "run_js_workload",
    "run_backend_comparison",
    "format_table",
    "format_pipeline_stats",
    "residual_shape",
]
