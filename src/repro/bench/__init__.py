"""Benchmark harness utilities shared by the scripts in ``benchmarks/``."""

from repro.bench.callprof import (
    CallProfile,
    best_ns_per_op,
    profile_call_boundary,
)
from repro.bench.harness import (
    BackendComparison,
    EngineCacheReport,
    WorkloadResult,
    dispatch_stats,
    format_pipeline_stats,
    format_table,
    geomean,
    guard_kind_counts,
    profiling_enabled,
    residual_shape,
    run_backend_comparison,
    run_engine_cache_report,
    run_js_workload,
    run_profiled,
)

__all__ = [
    "BackendComparison",
    "CallProfile",
    "best_ns_per_op",
    "profile_call_boundary",
    "EngineCacheReport",
    "WorkloadResult",
    "dispatch_stats",
    "geomean",
    "run_js_workload",
    "run_backend_comparison",
    "run_engine_cache_report",
    "format_table",
    "format_pipeline_stats",
    "guard_kind_counts",
    "profiling_enabled",
    "residual_shape",
    "run_profiled",
]
