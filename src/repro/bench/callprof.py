"""Call-boundary microprofiler (PR 10).

"Measure first": before the call-boundary fast path existed, every
steady-state guest call that crossed ``vm.call`` paid a fixed tax that
had nothing to do with the callee's body — name-resolution dict probes,
tier-hook and deopt-fallback membership probes, argument boxing
(building a list only for ``fn(self, *args)`` to unpack it again), and
caller-side depth bookkeeping.  This module decomposes that tax into
its components with isolated best-of timing loops against a *live*,
settled VM, so the numbers reflect the real dict sizes, real attribute
layouts, and the real compiled callee — not a synthetic mock.

Two end-to-end rows anchor the decomposition:

* ``bridge`` — one full ``vm.call(name, args)`` round trip, the cost a
  dispatch pays when a call site is *not* linked;
* ``linked`` — one raw ``fn(vm, a, b)`` positional call of the same
  compiled entry point, the cost after
  :class:`~repro.pipeline.links.CallLinkTable` patches the site.

The gap between them is the budget the link-slot optimization can
recover; the component rows say where it goes.  All figures are
nanoseconds per call, best-of-``repeats`` over ``loops``-iteration
inner loops (best-of is robust to one-sided scheduler noise — the same
policy as the steady-state latency benches).

The profiler snapshots and restores ``vm.stats`` around the timed
callee executions, so profiling is invisible to the deterministic fuel
accounting that the correctness tiers assert on.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence


def best_ns_per_op(op: Callable[[], None], loops: int = 2000,
                   repeats: int = 7) -> float:
    """Best-of wall time of ``op`` in ns, amortized over a tight loop.

    The loop overhead (range iteration, the ``op`` local load) is *not*
    subtracted: it is identical across components, so comparisons stay
    fair, and the absolute figures stay conservative (real cost is
    never higher than reported).
    """
    best = float("inf")
    r = range(loops)
    for _ in range(repeats):
        begin = time.perf_counter_ns()
        for _ in r:
            op()
        best = min(best, time.perf_counter_ns() - begin)
    return best / loops


@dataclasses.dataclass
class CallProfile:
    """One decomposed call-boundary measurement (all fields ns/call)."""

    name: str                       # callee profiled
    argc: int
    bridge_ns: float                # full vm.call(name, args)
    linked_ns: float                # raw fn(vm, a, b) positional
    components: Dict[str, float]    # component label -> ns/op

    def overhead_ns(self) -> float:
        """The per-call tax linking removes."""
        return self.bridge_ns - self.linked_ns

    def speedup(self) -> float:
        return self.bridge_ns / self.linked_ns if self.linked_ns else 0.0

    def rows(self) -> List[List[object]]:
        """Table rows (label, ns/call, share-of-overhead) for reports."""
        overhead = max(self.overhead_ns(), 1e-9)
        rows: List[List[object]] = [
            ["vm.call bridge (unlinked)", f"{self.bridge_ns:.0f}ns",
             "full boundary"],
            ["linked direct call", f"{self.linked_ns:.0f}ns",
             f"{self.speedup():.2f}x less per call"],
        ]
        for label, ns in self.components.items():
            rows.append([f"  of which: {label}", f"{ns:.0f}ns",
                         f"~{100.0 * ns / overhead:.0f}% of the gap"])
        return rows

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "argc": self.argc,
            "bridge_ns": self.bridge_ns,
            "linked_ns": self.linked_ns,
            "overhead_ns": self.overhead_ns(),
            "speedup": self.speedup(),
            "components_ns": dict(self.components),
        }


def profile_call_boundary(vm, name: str, args: Sequence[object],
                          loops: int = 2000,
                          repeats: int = 7) -> Optional[CallProfile]:
    """Decompose the steady-state cost of ``vm.call(name, args)``.

    ``name`` must resolve to an installed tier-2 compiled entry point
    (the steady-state case the linker targets); returns ``None``
    otherwise so benches can assert the service actually settled.
    Components measured, mirroring ``vm.call`` line by line:

    * ``resolve`` — the two name-resolution probes (imports miss,
      compiled hit);
    * ``hook probes`` — tier-hook and deopt-fallback membership tests;
    * ``arg boxing`` — building the args list and ``*args`` unpacking,
      versus passing the same values positionally;
    * ``depth (caller-side)`` — the legacy inc/check/try-finally-dec
      sequence the fixed-arity convention hoists into the callee.
    """
    fn = vm.compiled.get(name)
    if fn is None or getattr(fn, "_nparams", None) != len(args):
        return None
    args = list(args)
    argv = tuple(args)
    saved = vm.stats.snapshot()
    try:
        # End-to-end anchors.  ``linked`` builds the exact positional
        # call a patched link slot makes (no list, no unpacking).
        bridge_ns = best_ns_per_op(lambda: vm.call(name, args),
                                   loops, repeats)
        if len(argv) == 2:
            a0, a1 = argv
            linked = lambda: fn(vm, a0, a1)  # noqa: E731
        elif len(argv) == 1:
            a0, = argv
            linked = lambda: fn(vm, a0)      # noqa: E731
        else:
            linked = lambda: fn(vm, *argv)   # noqa: E731
        linked_ns = best_ns_per_op(linked, loops, repeats)
    finally:
        vm.stats.restore(saved)

    # Component loops: each isolates one boundary line against the
    # VM's real dicts and attributes.
    imports_get = vm._imports_get
    compiled_get = vm._compiled_get
    generics = vm.tier_generics
    fallbacks = vm.deopt_fallbacks

    def resolve():
        if imports_get(name) is None:
            compiled_get(name)

    def hook_probes():
        if vm.tier_hook is not None and name in generics:
            pass
        if fallbacks and name in fallbacks:
            pass

    sink = _sink_for(len(argv))

    def boxing():
        sink(vm, *list(argv))

    def positional():
        sink(vm, *argv)

    def depth():
        vm._call_depth += 1
        if vm._call_depth > vm._max_call_depth:
            vm._call_depth -= 1
            raise RuntimeError("unreachable")
        try:
            pass
        finally:
            vm._call_depth -= 1

    components = {
        "name resolution": best_ns_per_op(resolve, loops, repeats),
        "hook probes": best_ns_per_op(hook_probes, loops, repeats),
        "arg boxing": (best_ns_per_op(boxing, loops, repeats) -
                       best_ns_per_op(positional, loops, repeats)),
        "depth (caller-side)": best_ns_per_op(depth, loops, repeats),
    }
    return CallProfile(name=name, argc=len(argv), bridge_ns=bridge_ns,
                       linked_ns=linked_ns, components=components)


def _sink_for(argc: int) -> Callable:
    """A no-op callable with the same positional arity as the callee,
    so the boxing measurement times list-build + unpack, not the body."""
    if argc == 1:
        return lambda vm, a: None
    if argc == 2:
        return lambda vm, a, b: None
    if argc == 3:
        return lambda vm, a, b, c: None
    return lambda vm, *rest: None
