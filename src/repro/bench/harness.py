"""Benchmark helpers: per-config workload execution, geomean, tables,
mid-end (pass pipeline) reporting, and opt-in AOT profiling
(``REPRO_PROFILE=1``)."""

from __future__ import annotations

import dataclasses
import math
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.stats import PipelineStats
from repro.ir.function import Function
from repro.ir.instructions import guard_is_resuming, guard_site
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS


@dataclasses.dataclass
class WorkloadResult:
    name: str
    config: str
    printed: List[str]
    fuel: int
    wall_seconds: float
    compile_seconds: float = 0.0
    specialized_functions: int = 0
    backend: str = "vm"
    backend_compile_seconds: float = 0.0
    backend_fallbacks: int = 0


def run_js_workload(name: str, config: str,
                    runtime: Optional[JSRuntime] = None,
                    backend: Optional[str] = None) -> WorkloadResult:
    """Instantiate (or reuse) a JSRuntime for one workload/config and
    execute it once, separating specialize time, backend-compile time,
    and run time."""
    source = WORKLOADS[name]
    rt = runtime or JSRuntime(source, config)
    compile_seconds = 0.0
    is_aot = config in ("wevaled", "wevaled_state")
    if is_aot and not rt.aot_done:
        start = time.perf_counter()
        rt.aot_compile()
        compile_seconds = time.perf_counter() - start
    # Non-AOT configs have no residual code, so no tier-2 code can run;
    # label them "vm" regardless of the requested/default backend.
    backend = (backend or rt.options.backend) if is_aot else "vm"
    backend_compile = 0.0
    if is_aot and backend == "py":
        before = rt.compiler.backend_compile_seconds
        rt.compiler.compile_backend()  # idempotent; no-op when done
        backend_compile = rt.compiler.backend_compile_seconds - before
    start = time.perf_counter()
    vm = rt.run(backend) if is_aot else rt.run()
    wall = time.perf_counter() - start
    return WorkloadResult(
        name=name,
        config=config,
        printed=list(rt.printed),
        fuel=vm.stats.fuel,
        wall_seconds=wall,
        compile_seconds=compile_seconds,
        specialized_functions=rt.specialized_function_count(),
        backend=backend,
        backend_compile_seconds=backend_compile,
        backend_fallbacks=(len(rt.compiler.backend_fallbacks)
                           if rt.compiler is not None else 0),
    )


@dataclasses.dataclass
class BackendComparison:
    """Interp-vs-compiled execution of one workload's residual code."""

    name: str
    config: str
    fuel: int                     # identical across backends by contract
    aot_seconds: float            # specialize + mid-end
    backend_compile_seconds: float
    compiled_functions: int
    backend_fallbacks: int
    wall_vm_seconds: float        # residual IR on the VM (best of repeats)
    wall_py_seconds: float        # residual compiled to Python
    # Fall-through scheduler accounting over the compiled residuals.
    residual_blocks: int = 0
    dispatch_blocks: int = 0
    fallthrough_links: int = 0

    @property
    def speedup(self) -> float:
        return self.wall_vm_seconds / max(self.wall_py_seconds, 1e-12)


def dispatch_stats(module, names) -> Tuple[int, int, int]:
    """(total blocks, dispatch targets, fall-through links) across the
    named functions — the static dispatch-count delta of the emitter's
    fall-through block scheduler (emit-only; nothing is executed)."""
    from repro.backend import PyEmitter, UnsupportedConstruct
    blocks = dispatch = links = 0
    for name in names:
        func = module.functions.get(name)
        if func is None:
            continue
        emitter = PyEmitter(func, module)
        try:
            emitter.emit_source()
        except UnsupportedConstruct:
            continue
        blocks += func.num_blocks()
        dispatch += emitter.dispatch_blocks
        links += emitter.fallthrough_links
    return blocks, dispatch, links


def run_backend_comparison(name: str, config: str = "wevaled_state",
                           repeats: int = 3,
                           jobs: Optional[int] = None,
                           cache_dir: Optional[str] = None
                           ) -> BackendComparison:
    """AOT-compile one workload once, then run the snapshot both ways —
    residual IR on the VM and residual compiled to Python — asserting
    identical printed output and fuel before reporting the speedup.

    ``jobs``/``cache_dir`` configure the compilation engine (worker pool
    and persistent artifact store); they must not change any output,
    only compile time."""
    rt = JSRuntime(WORKLOADS[name], config, jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    rt.aot_compile()
    aot_seconds = time.perf_counter() - start
    rt.compiler.compile_backend()  # up front, outside the timed runs

    def best_run(backend: str):
        best = None
        fuel = printed = None
        for _ in range(repeats):
            mark = len(rt.printed)
            start = time.perf_counter()
            vm = rt.run(backend)
            elapsed = time.perf_counter() - start
            printed = rt.printed[mark:]
            fuel = vm.stats.fuel
            best = elapsed if best is None else min(best, elapsed)
        return best, fuel, printed

    wall_vm, fuel_vm, printed_vm = best_run("vm")
    wall_py, fuel_py, printed_py = best_run("py")
    assert printed_vm == printed_py, (
        f"{name}: backend output diverged: {printed_vm!r} != {printed_py!r}")
    assert fuel_vm == fuel_py, (
        f"{name}: backend fuel diverged: {fuel_vm} != {fuel_py}")
    blocks, dispatch, links = dispatch_stats(
        rt.module, [p.function_name for p in rt.compiler.processed])
    return BackendComparison(
        name=name,
        config=config,
        fuel=fuel_vm,
        aot_seconds=aot_seconds,
        backend_compile_seconds=rt.compiler.backend_compile_seconds,
        compiled_functions=len(rt.compiler.backend_functions),
        backend_fallbacks=len(rt.compiler.backend_fallbacks),
        wall_vm_seconds=wall_vm,
        wall_py_seconds=wall_py,
        residual_blocks=blocks,
        dispatch_blocks=dispatch,
        fallthrough_links=links,
    )


@dataclasses.dataclass
class EngineCacheReport:
    """Cold-vs-warm engine compile of one workload (one worker count).

    The warm run is a *fresh* runtime over the same ``cache_dir``; the
    engine's warm-start contract (asserted here) is that it specializes
    zero functions and produces byte-identical residual IR."""

    name: str
    config: str
    jobs: int
    requests: int
    cold_seconds: float
    warm_seconds: float
    cold_specialized: int
    warm_specialized: int
    warm_artifact_hits: int


def run_engine_cache_report(name: str, config: str = "wevaled_state",
                            jobs: int = 1,
                            cache_dir: Optional[str] = None
                            ) -> EngineCacheReport:
    """Measure cold (empty artifact store) vs warm (fully populated)
    AOT compile time through the engine path."""
    import shutil
    import tempfile
    from repro.ir import print_function

    own_dir = cache_dir is None
    root = tempfile.mkdtemp(prefix="repro-aot-") if own_dir else cache_dir
    try:
        rt_cold = JSRuntime(WORKLOADS[name], config, jobs=jobs,
                            cache_dir=root)
        start = time.perf_counter()
        rt_cold.aot_compile()
        cold_seconds = time.perf_counter() - start
        cold_stats = rt_cold.compiler.engine.stats

        rt_warm = JSRuntime(WORKLOADS[name], config, jobs=jobs,
                            cache_dir=root)
        start = time.perf_counter()
        rt_warm.aot_compile()
        warm_seconds = time.perf_counter() - start
        warm_stats = rt_warm.compiler.engine.stats
        # Warm-start contract: everything loads, nothing recompiles,
        # and the residual IR is byte-identical.
        if cold_stats.functions_specialized > 0:
            assert warm_stats.functions_specialized == 0, (
                f"{name}: warm engine run recompiled "
                f"{warm_stats.functions_specialized} function(s)")
        assert len(rt_cold.compiler.processed) == \
            len(rt_warm.compiler.processed) == warm_stats.requests, (
                f"{name}: cold/warm processed request counts diverged")
        for cold_p, warm_p in zip(rt_cold.compiler.processed,
                                  rt_warm.compiler.processed):
            cold_ir = print_function(
                rt_cold.module.functions[cold_p.function_name], order="id")
            warm_ir = print_function(
                rt_warm.module.functions[warm_p.function_name], order="id")
            assert cold_ir == warm_ir, (
                f"{name}: warm residual {warm_p.function_name} diverged")
        return EngineCacheReport(
            name=name,
            config=config,
            jobs=jobs,
            requests=warm_stats.requests,
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            cold_specialized=cold_stats.functions_specialized,
            warm_specialized=warm_stats.functions_specialized,
            warm_artifact_hits=warm_stats.artifact_hits,
        )
    finally:
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE=1`` asks benches to profile AOT work."""
    return os.environ.get("REPRO_PROFILE", "") == "1"


def run_profiled(fn: Callable[[], object],
                 top: int = 15) -> Tuple[object, Optional[str]]:
    """Call ``fn`` and, when ``REPRO_PROFILE=1``, run it under
    :mod:`cProfile` and render the ``top`` entries by cumulative time as
    a table — so every transform-speed report starts from data, not
    guesses.  Returns ``(fn's result, table text or None)``.

    Profiling inflates wall-clock (tracing overhead), so callers should
    time the un-profiled path separately or label profiled numbers."""
    if not profiling_enabled():
        return fn(), None
    import cProfile
    import pstats

    profile = cProfile.Profile()
    result = profile.runcall(fn)
    stats = pstats.Stats(profile)
    stats.sort_stats("cumulative")
    rows: List[List[object]] = []
    for func_key in stats.fcn_list[:top]:  # sorted by the call above
        _cc, nc, tt, ct, _callers = stats.stats[func_key]
        filename, lineno, name = func_key
        where = (name if filename.startswith(("<", "~"))
                 else f"{os.path.basename(filename)}:{lineno}({name})")
        rows.append([f"{ct:.3f}s", f"{tt:.3f}s", nc, where])
    table = format_table(["cumtime", "tottime", "calls",
                          f"function (top {top} by cumulative)"], rows)
    return result, (f"cProfile of AOT (REPRO_PROFILE=1): "
                    f"{stats.total_tt:.3f}s total in "
                    f"{stats.total_calls} calls\n{table}")


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def residual_shape(func: Function) -> Tuple[int, int, int]:
    """(instructions, blocks, non-entry block params) of a residual
    function — the static code-size axes the paper's S6.4 tracks."""
    return (func.num_instrs(), func.num_blocks(), func.total_block_params())


def guard_kind_counts(functions: Iterable[Function]) -> Dict[str, int]:
    """Count guard instructions by immediate form across ``functions``:
    ``entry`` (legacy monomorphic unwinding guards at function entry),
    ``site`` (polymorphic unwinding site guards), and ``resuming``
    (notify-and-fall-through site guards) — the observability axis for
    the speculative-inlining reports."""
    counts = {"entry": 0, "site": 0, "resuming": 0}
    for func in functions:
        for block in func.blocks.values():
            for instr in block.instrs:
                if instr.op != "guard":
                    continue
                if guard_is_resuming(instr.imm):
                    counts["resuming"] += 1
                elif guard_site(instr.imm) is not None:
                    counts["site"] += 1
                else:
                    counts["entry"] += 1
    return counts


def format_pipeline_stats(stats: PipelineStats) -> str:
    """Render mid-end pipeline stats as a paper-style table: one row per
    pass plus a summary row, for the transform-speed reports.

    Every column aggregates the same quantity in every row: ``runs``
    counts pass *executions* (not pipeline invocations), ``skips``
    counts scheduler-proven no-ops, and the ``total`` row is the column
    sum over passes.  Pipeline-level context (function count, rounds,
    instruction delta, wall time) goes on its own line so it can't be
    misread as a pass counter."""
    rows: List[List[object]] = []
    for name in sorted(stats.per_pass):
        pass_stats = stats.per_pass[name]
        rows.append([name, pass_stats.runs, pass_stats.skips,
                     pass_stats.changes, f"{pass_stats.seconds:.3f}s"])
    per_pass = list(stats.per_pass.values())
    rows.append(["total",
                 sum(p.runs for p in per_pass),
                 sum(p.skips for p in per_pass),
                 sum(p.changes for p in per_pass),
                 f"{sum(p.seconds for p in per_pass):.3f}s"])
    table = format_table(
        ["pass", "runs", "skips", "changes", "pass time"], rows)
    table += (f"\n{stats.runs} function(s), {stats.rounds} round(s), "
              f"{stats.instrs_before}->{stats.instrs_after} instrs, "
              f"{stats.seconds:.3f}s pipeline "
              f"({stats.workcheck_seconds:.3f}s in work detectors)")
    table += (f"\ninline: attempted={stats.inline_attempted} "
              f"committed={stats.inline_committed} "
              f"rejected_size={stats.inline_rejected_size}")
    if stats.fixpoint_cap_hits:
        table += (f"\nWARNING: fixpoint round cap hit on "
                  f"{stats.fixpoint_cap_hits} function(s)")
    return table


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table, the way the paper's harness prints results."""
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
