"""Benchmark helpers: per-config workload execution, geomean, tables."""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS


@dataclasses.dataclass
class WorkloadResult:
    name: str
    config: str
    printed: List[str]
    fuel: int
    wall_seconds: float
    compile_seconds: float = 0.0
    specialized_functions: int = 0


def run_js_workload(name: str, config: str,
                    runtime: Optional[JSRuntime] = None) -> WorkloadResult:
    """Instantiate (or reuse) a JSRuntime for one workload/config and
    execute it once, separating compile time from run time."""
    source = WORKLOADS[name]
    rt = runtime or JSRuntime(source, config)
    compile_seconds = 0.0
    if config in ("wevaled", "wevaled_state") and not rt._aot_done:
        start = time.perf_counter()
        rt.aot_compile()
        compile_seconds = time.perf_counter() - start
    start = time.perf_counter()
    vm = rt.run()
    wall = time.perf_counter() - start
    return WorkloadResult(
        name=name,
        config=config,
        printed=list(rt.printed),
        fuel=vm.stats.fuel,
        wall_seconds=wall,
        compile_seconds=compile_seconds,
        specialized_functions=rt.specialized_function_count(),
    )


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table, the way the paper's harness prints results."""
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
