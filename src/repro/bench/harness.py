"""Benchmark helpers: per-config workload execution, geomean, tables,
and mid-end (pass pipeline) reporting."""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.stats import PipelineStats
from repro.ir.function import Function
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS


@dataclasses.dataclass
class WorkloadResult:
    name: str
    config: str
    printed: List[str]
    fuel: int
    wall_seconds: float
    compile_seconds: float = 0.0
    specialized_functions: int = 0


def run_js_workload(name: str, config: str,
                    runtime: Optional[JSRuntime] = None) -> WorkloadResult:
    """Instantiate (or reuse) a JSRuntime for one workload/config and
    execute it once, separating compile time from run time."""
    source = WORKLOADS[name]
    rt = runtime or JSRuntime(source, config)
    compile_seconds = 0.0
    if config in ("wevaled", "wevaled_state") and not rt._aot_done:
        start = time.perf_counter()
        rt.aot_compile()
        compile_seconds = time.perf_counter() - start
    start = time.perf_counter()
    vm = rt.run()
    wall = time.perf_counter() - start
    return WorkloadResult(
        name=name,
        config=config,
        printed=list(rt.printed),
        fuel=vm.stats.fuel,
        wall_seconds=wall,
        compile_seconds=compile_seconds,
        specialized_functions=rt.specialized_function_count(),
    )


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def residual_shape(func: Function) -> Tuple[int, int, int]:
    """(instructions, blocks, non-entry block params) of a residual
    function — the static code-size axes the paper's S6.4 tracks."""
    return (func.num_instrs(), func.num_blocks(), func.total_block_params())


def format_pipeline_stats(stats: PipelineStats) -> str:
    """Render mid-end pipeline stats as a paper-style table: one row per
    pass plus a summary row, for the transform-speed reports."""
    rows: List[List[object]] = []
    for name in sorted(stats.per_pass):
        pass_stats = stats.per_pass[name]
        rows.append([name, pass_stats.runs, pass_stats.changes,
                     f"{pass_stats.seconds:.3f}s"])
    rows.append(["total", stats.runs,
                 f"{stats.instrs_before}->{stats.instrs_after} instrs",
                 f"{stats.seconds:.3f}s"])
    table = format_table(["pass", "runs", "changes", "time"], rows)
    if stats.fixpoint_cap_hits:
        table += (f"\nWARNING: fixpoint round cap hit on "
                  f"{stats.fixpoint_cap_hits} function(s)")
    return table


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table, the way the paper's harness prints results."""
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
