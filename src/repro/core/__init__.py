"""weval: the partial-evaluation transform (the paper's contribution).

The public surface:

* :class:`~repro.core.request.SpecializationRequest` with argument modes
  ``Runtime`` / ``SpecializedConst`` / ``SpecializedMemory`` (paper S3.5);
* :func:`~repro.core.specialize.specialize` — the context-controlled
  constant-propagation transform (S3.1-S3.4, Fig. 5);
* :class:`~repro.core.snapshot.SnapshotCompiler` — the Wizer-style
  enqueue -> snapshot -> specialize -> resume workflow;
* :class:`~repro.core.cache.SpecializationCache` (S6.5);
* :class:`~repro.core.stats.SpecializationStats` — elided load/store and
  code-size accounting (S6.2, S6.4).
"""

from repro.core.request import (
    ArgMode,
    Runtime,
    SpecializedConst,
    SpecializedMemory,
    SpeculatedConst,
    SpecializationRequest,
)
from repro.core.specialize import specialize, SpecializeError
from repro.core.intrinsics import (
    INTRINSICS,
    register_weval_imports,
    intrinsic_name,
)
from repro.core.snapshot import SnapshotCompiler, WevalRuntime
from repro.core.cache import SpecializationCache
from repro.core.stats import SpecializationStats

__all__ = [
    "ArgMode",
    "Runtime",
    "SpecializedConst",
    "SpecializedMemory",
    "SpeculatedConst",
    "SpecializationRequest",
    "specialize",
    "SpecializeError",
    "INTRINSICS",
    "register_weval_imports",
    "intrinsic_name",
    "SnapshotCompiler",
    "WevalRuntime",
    "SpecializationCache",
    "SpecializationStats",
]
