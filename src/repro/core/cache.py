"""Specialization cache (S6.5).

The paper caches on "input Wasm module hash plus the function
specialization request's argument data" to avoid redundant work for the
unchanging AOT IC corpus and to speed up incremental compilation.  We key
on (a) a fingerprint of the generic function body, (b) the request's
argument modes, and (c) the contents of every memory range the request
promises constant.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.core.request import (
    SpecializationRequest,
    SpecializedMemory,
)
from repro.core.specialize import SpecializeOptions, specialize
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.printer import print_function


def _function_fingerprint(func: Function) -> str:
    return hashlib.sha256(
        print_function(func, order="id").encode()).hexdigest()


def _memory_fingerprint(request: SpecializationRequest,
                        memory: bytes) -> str:
    h = hashlib.sha256()
    for mode in request.args:
        if isinstance(mode, SpecializedMemory):
            h.update(memory[mode.pointer:mode.pointer + mode.length])
            h.update(b"|")
    for start, length in request.extra_const_memory:
        h.update(memory[start:start + length])
        h.update(b"|")
    return h.hexdigest()


class SpecializationCache:
    """Memoizes weval outputs across identical requests."""

    def __init__(self):
        self._entries: Dict[tuple, Function] = {}
        self._fingerprints: Dict[int, str] = {}
        self.hits = 0
        self.misses = 0

    def _generic_fingerprint(self, func: Function) -> str:
        cached = self._fingerprints.get(id(func))
        if cached is None:
            cached = _function_fingerprint(func)
            self._fingerprints[id(func)] = cached
        return cached

    def get_or_specialize(self, module: Module,
                          request: SpecializationRequest,
                          options: Optional[SpecializeOptions] = None,
                          memory: Optional[bytes] = None) -> Tuple[Function,
                                                                   bool]:
        """Return ``(specialized function, was_cache_hit)``.

        The returned function is always a fresh clone named per the
        request, so callers may add it to a module without aliasing
        cached state.
        """
        snapshot = bytes(memory if memory is not None
                         else module.memory_init)
        generic = module.functions[request.generic]
        # options.backend keys the cache even though the residual IR is
        # backend-independent: the execution tier is part of the request
        # configuration, and sharing one cache across tiers is rarer
        # than the debugging confusion of a hit that silently ignores a
        # differing option.
        key = (self._generic_fingerprint(generic),
               request.cache_key(),
               _memory_fingerprint(request, snapshot),
               (options.ssa_mode, options.optimize, options.opt_config,
                options.opt_max_rounds, options.backend)
               if options else None)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return clone_function(cached, request.name()), True
        self.misses += 1
        func = specialize(module, request, options, snapshot)
        self._entries[key] = clone_function(func)
        return func, False
