"""Specialization cache (S6.5).

The paper caches on "input Wasm module hash plus the function
specialization request's argument data" to avoid redundant work for the
unchanging AOT IC corpus and to speed up incremental compilation.  We key
on (a) a fingerprint of the generic function body, (b) the request's
argument modes, (c) the contents of every memory range the request
promises constant, and (d) the specialization options that shape the
output.

The same key identifies entries in the *persistent* artifact store
(:mod:`repro.pipeline.artifacts`); :func:`request_key` is the shared
key constructor so the in-memory and on-disk tiers can never disagree
about identity.  Note that engine-only knobs (``jobs``, ``cache_dir``)
are deliberately *not* part of the key: they change how fast the output
is produced, never what it is.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.core.request import (
    SpecializationRequest,
    SpecializedMemory,
)
from repro.core.specialize import SpecializeOptions, specialize
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.printer import print_function


def function_fingerprint(func: Function) -> str:
    """Fingerprint of a function body (its printed IR, id order)."""
    return hashlib.sha256(
        print_function(func, order="id").encode()).hexdigest()


def memory_fingerprint(request: SpecializationRequest,
                       memory: bytes) -> str:
    """Fingerprint of every memory range the request promises constant."""
    h = hashlib.sha256()
    for mode in request.args:
        if isinstance(mode, SpecializedMemory):
            h.update(memory[mode.pointer:mode.pointer + mode.length])
            h.update(b"|")
    for start, length in request.extra_const_memory:
        h.update(memory[start:start + length])
        h.update(b"|")
    return h.hexdigest()


def options_key(options: Optional[SpecializeOptions]) -> Optional[tuple]:
    """The subset of options that changes specialization *output*.

    ``options.backend`` keys the cache even though the residual IR is
    backend-independent: the execution tier is part of the request
    configuration, and sharing one cache across tiers is rarer than the
    debugging confusion of a hit that silently ignores a differing
    option.
    """
    if options is None:
        return None
    return (options.ssa_mode, options.optimize, options.opt_config,
            options.opt_max_rounds, options.backend)


def request_key(module: Module, request: SpecializationRequest,
                options: Optional[SpecializeOptions],
                snapshot: bytes,
                fingerprints: Optional[Dict[int, str]] = None) -> tuple:
    """The canonical cache key for one specialization request.

    Layout (relied on by the pipeline engine): ``key[0]`` is the generic
    function fingerprint and ``key[2]`` the memory fingerprint.
    ``fingerprints`` is an optional per-module memo (generic bodies are
    large; hashing them once per batch instead of once per request
    matters for the IC corpus).
    """
    generic = module.functions[request.generic]
    if fingerprints is None:
        generic_fp = function_fingerprint(generic)
    else:
        generic_fp = fingerprints.get(id(generic))
        if generic_fp is None:
            generic_fp = function_fingerprint(generic)
            fingerprints[id(generic)] = generic_fp
    return (generic_fp,
            request.cache_key(),
            memory_fingerprint(request, snapshot),
            options_key(options))


class SpecializationCache:
    """Memoizes weval outputs across identical requests (in memory)."""

    def __init__(self):
        self._entries: Dict[tuple, Function] = {}
        self._fingerprints: Dict[int, str] = {}
        self.hits = 0
        self.misses = 0

    def key_for(self, module: Module, request: SpecializationRequest,
                options: Optional[SpecializeOptions],
                memory: Optional[bytes] = None) -> tuple:
        snapshot = bytes(memory if memory is not None
                         else module.memory_init)
        return request_key(module, request, options, snapshot,
                           self._fingerprints)

    def lookup(self, key: tuple, name: str) -> Optional[Function]:
        """Probe the cache; a hit returns a fresh clone named ``name``.

        Hit/miss counters are charged here, so callers composing the
        probe with an external compile path (the pipeline engine) keep
        the same accounting as :meth:`get_or_specialize`.
        """
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return clone_function(cached, name)

    def insert(self, key: tuple, func: Function) -> None:
        """Store a clone of ``func`` under ``key``."""
        self._entries[key] = clone_function(func)

    def get_or_specialize(self, module: Module,
                          request: SpecializationRequest,
                          options: Optional[SpecializeOptions] = None,
                          memory: Optional[bytes] = None) -> Tuple[Function,
                                                                   bool]:
        """Return ``(specialized function, was_cache_hit)``.

        The returned function is always a fresh clone named per the
        request, so callers may add it to a module without aliasing
        cached state.
        """
        snapshot = bytes(memory if memory is not None
                         else module.memory_init)
        key = request_key(module, request, options, snapshot,
                          self._fingerprints)
        cached = self.lookup(key, request.name())
        if cached is not None:
            return cached, True
        func = specialize(module, request, options, snapshot)
        self.insert(key, func)
        return func, False
