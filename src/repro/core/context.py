"""Specialization contexts (paper S3.1).

A context is an immutable tuple of entries.  ``push_context(v)`` appends
a ``("c", v)`` entry, ``update_context(v)`` replaces the most recent
``("c", ...)`` entry (discarding any value-specialization sub-entries
stacked above it), and ``pop_context()`` removes the top ``("c", ...)``
entry.  ``specialized_value`` appends a ``("sv", v)`` sub-entry — the
per-value sub-context of "The Trick" (S3.3).

Context values are *not* load-bearing for correctness: they only key the
duplication of specialized code.  An empty context is the root.
"""

from __future__ import annotations

from typing import Dict, Tuple

Context = Tuple[Tuple[str, object], ...]

ROOT: Context = ()

# The sentinel context value used when an intrinsic receives a run-time
# (non-constant) context: all such paths share one "generic copy" of the
# interpreter body, keeping the context set finite.
DYNAMIC = "__dyn__"

# Hash-consing table: contexts are dict-key components of every
# specialized-block key, so handing out one canonical tuple per distinct
# context lets dict probes and equality checks hit the identity fast
# path instead of comparing tuples element by element.
_INTERN: Dict[Context, Context] = {}
_INTERN_CAP = 1 << 20  # safety valve, never expected in practice


def _intern(ctx: Context) -> Context:
    cached = _INTERN.get(ctx)
    if cached is not None:
        return cached
    if len(_INTERN) >= _INTERN_CAP:
        _INTERN.clear()
    _INTERN[ctx] = ctx
    return ctx


def push(ctx: Context, value: int) -> Context:
    return _intern(ctx + (("c", value),))


def pop(ctx: Context) -> Context:
    ctx = _strip_sv(ctx)
    if not ctx:
        raise ValueError("pop_context on an empty context stack")
    return _intern(ctx[:-1])


def update(ctx: Context, value: int) -> Context:
    """Replace the top scalar entry (after any ``sv`` sub-entries)."""
    ctx = _strip_sv(ctx)
    if not ctx:
        # update without a push: treat as push (tolerant, like the paper's
        # "not load-bearing" stance).
        return _intern((("c", value),))
    return _intern(ctx[:-1] + (("c", value),))


def push_value(ctx: Context, value: object) -> Context:
    """Add a value-specialization sub-entry ("The Trick")."""
    return _intern(ctx + (("sv", value),))


def _strip_sv(ctx: Context) -> Context:
    while ctx and ctx[-1][0] == "sv":
        ctx = ctx[:-1]
    return ctx


def describe(ctx: Context) -> str:
    if not ctx:
        return "root"
    return "/".join(f"{kind}={value}" for kind, value in ctx)
