"""The weval intrinsics: names, signatures, and VM polyfills.

Intrinsics are declared as module *imports* (external functions), which
is the paper's mechanism for keeping them visible through any amount of
optimization of the interpreter body (S3, footnote 2).  There are two
families:

* **Hint intrinsics** (contexts, ``assert_const``, ``specialized_value``)
  are not load-bearing for correctness: the VM polyfills them as no-ops /
  identities, so the *generic* interpreter runs unchanged (S3.1).

* **State intrinsics** (virtual registers, in-memory locals, the operand
  stack) change where state lives, so they must only appear in the
  interpreter variant that is actually specialized (S4.3).  Their VM
  polyfills raise, which keeps accidental generic execution loud.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from repro.ir.function import Signature
from repro.ir.module import HostFunc, Module
from repro.ir.types import I64

PREFIX = "weval."


@dataclasses.dataclass(frozen=True)
class Intrinsic:
    """Description of one weval intrinsic."""

    name: str                     # import name, e.g. "weval.update_context"
    sig: Signature
    kind: str                     # "context" | "value" | "state"
    polyfill: Optional[Callable]  # host implementation for generic runs


def _noop(vm, *args):
    return None


def _identity(vm, value, *rest):
    return value


def _no_polyfill_factory(name):
    def fail(vm, *args):
        raise RuntimeError(
            f"state intrinsic {name} executed in generic code; state "
            f"intrinsics are only valid in the specialized interpreter "
            f"variant (paper S4.3)")
    return fail


def _sig(nparams: int, has_result: bool) -> Signature:
    return Signature(tuple([I64] * nparams), (I64,) if has_result else ())


_INTRINSIC_LIST = [
    # Context control (S3.1).
    Intrinsic(PREFIX + "push_context", _sig(1, False), "context", _noop),
    Intrinsic(PREFIX + "update_context", _sig(1, False), "context", _noop),
    Intrinsic(PREFIX + "pop_context", _sig(0, False), "context", _noop),
    # Directed value specialization, "The Trick" (S3.3): passes the value
    # through at run time.
    Intrinsic(PREFIX + "specialized_value", _sig(3, True), "value",
              _identity),
    # Debugging aid (S3.1): asserts compile-time constantness during
    # specialization; dynamically it is the identity.
    Intrinsic(PREFIX + "assert_const", _sig(1, True), "value", _identity),
    # Virtual registers (S4.1).
    Intrinsic(PREFIX + "read_reg", _sig(1, True), "state",
              _no_polyfill_factory("weval.read_reg")),
    Intrinsic(PREFIX + "write_reg", _sig(2, False), "state",
              _no_polyfill_factory("weval.write_reg")),
    # In-memory locals with lazy write-back (S4.2).
    Intrinsic(PREFIX + "read_local", _sig(2, True), "state",
              _no_polyfill_factory("weval.read_local")),
    Intrinsic(PREFIX + "write_local", _sig(3, False), "state",
              _no_polyfill_factory("weval.write_local")),
    Intrinsic(PREFIX + "flush", _sig(0, False), "state",
              _no_polyfill_factory("weval.flush")),
    # Virtualized operand stack (S4.2).
    Intrinsic(PREFIX + "push", _sig(2, False), "state",
              _no_polyfill_factory("weval.push")),
    Intrinsic(PREFIX + "pop", _sig(1, True), "state",
              _no_polyfill_factory("weval.pop")),
    Intrinsic(PREFIX + "read_stack", _sig(2, True), "state",
              _no_polyfill_factory("weval.read_stack")),
    Intrinsic(PREFIX + "write_stack", _sig(3, False), "state",
              _no_polyfill_factory("weval.write_stack")),
]

INTRINSICS: Dict[str, Intrinsic] = {i.name: i for i in _INTRINSIC_LIST}


def intrinsic_name(short: str) -> str:
    """Map a short name like ``"update_context"`` to the import name."""
    name = PREFIX + short
    if name not in INTRINSICS:
        raise KeyError(f"unknown weval intrinsic: {short}")
    return name


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def register_weval_imports(module: Module) -> None:
    """Add every weval intrinsic to a module as a host import (idempotent)."""
    for intr in INTRINSICS.values():
        if not module.has_function(intr.name):
            module.add_import(HostFunc(intr.name, intr.sig, intr.polyfill))
