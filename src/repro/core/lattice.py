"""The constant-propagation abstract domain used by the specializer.

An abstract value is either :class:`Const` (a compile-time-known i64 bit
pattern or f64) or :class:`Dyn` (a run-time value, identified by the SSA
value id it has in the *specialized* function being built).  There is no
explicit bottom: unreachable code is simply never transcribed.

:class:`ConstMemoryImage` implements the "constant memory" interface of
S3.5/S3.6: the byte ranges promised constant by a specialization request,
backed by the snapshot taken at request time.  Loads whose (folded)
address lands entirely inside a constant range fold to constants — this
is the mechanism that erases the bytecode from the compiled result.
"""

from __future__ import annotations

import math
import struct
import threading
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.instructions import (
    COMPARISON_OPS,
    FOLDABLE_FLOAT_BINOPS,
    FOLDABLE_INT_BINOPS,
    MASK64,
    to_signed,
    wrap_i64,
)
from repro.ir.types import F64, I64, Type


class Const:
    """A compile-time constant: int bit pattern (i64) or float (f64).

    Abstract values are compared billions of times across a large
    specialization (every meet touches every slot of every predecessor
    state), so both classes are slotted, hash-cached, and equipped with
    an identity fast path in ``__eq__``.  Combined with interning (see
    :func:`intern_const`), most equality checks reduce to a pointer
    comparison.  Equality semantics match the former frozen-dataclass
    behavior exactly: identity-or-``==`` per component, as tuple
    comparison does (so ``0.0 == -0.0``, distinct NaN objects stay
    unequal, and two Consts wrapping the *same* NaN object — e.g. the
    ``math.nan`` singleton the constant folder returns — stay equal,
    keeping NaN-valued entry states stable across rebuilds).
    """

    __slots__ = ("value", "ty", "_hash")

    def __init__(self, value: Union[int, float], ty: Type):
        if ty is I64:
            assert isinstance(value, int)
        else:
            assert isinstance(value, float)
        self.value = value
        self.ty = ty
        self._hash = hash((value, ty))

    def __eq__(self, other):
        if self is other:
            return True
        return (type(other) is Const
                and (self.value is other.value
                     or self.value == other.value)
                and self.ty is other.ty)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Const(value={self.value!r}, ty={self.ty!r})"


class Dyn:
    """A run-time value; ``vid`` is its id in the specialized function."""

    __slots__ = ("vid", "ty", "_hash")

    def __init__(self, vid: int, ty: Type):
        self.vid = vid
        self.ty = ty
        self._hash = hash((vid, ty))

    def __eq__(self, other):
        if self is other:
            return True
        return (type(other) is Dyn and self.vid == other.vid
                and self.ty is other.ty)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Dyn(vid={self.vid!r}, ty={self.ty!r})"


AbsVal = Union[Const, Dyn]


# ---------------------------------------------------------------------------
# Hash-consing of constants.
#
# The specializer re-creates the same small set of Const objects (opcode
# operands, pcs, flags, zeros) at nearly every transcription step.
# Interning i64 constants makes those objects *identical*, so state
# equality checks, meets, and signature comparisons hit the ``is`` fast
# path instead of structural comparison.  f64 constants are left alone:
# they are rare, and an equality-keyed table would conflate 0.0/-0.0
# (whose bit patterns the optimizer deliberately keeps distinct).
#
# Hit/miss counters are thread-local so the pipeline engine's worker
# threads (one specialization per task) each observe a consistent delta.
# ---------------------------------------------------------------------------

_CONST_INTERN: Dict[int, Const] = {}
_CONST_INTERN_CAP = 1 << 20  # safety valve, never expected in practice
_intern_tls = threading.local()


def intern_const(value: Union[int, float], ty: Type) -> Const:
    """Return a canonical :class:`Const` (i64 values are hash-consed)."""
    if ty is not I64:
        return Const(value, ty)
    cached = _CONST_INTERN.get(value)
    if cached is not None:
        _intern_tls.hits = getattr(_intern_tls, "hits", 0) + 1
        return cached
    if len(_CONST_INTERN) >= _CONST_INTERN_CAP:
        _CONST_INTERN.clear()
    cached = _CONST_INTERN[value] = Const(value, ty)
    _intern_tls.misses = getattr(_intern_tls, "misses", 0) + 1
    return cached


def intern_counters() -> Tuple[int, int]:
    """(hits, misses) of :func:`intern_const` on the calling thread."""
    return (getattr(_intern_tls, "hits", 0),
            getattr(_intern_tls, "misses", 0))


ZERO = intern_const(0, I64)


class ConstMemoryImage:
    """Constant-memory oracle: snapshot bytes + promised-constant ranges."""

    def __init__(self, snapshot: bytes,
                 ranges: Optional[List[Tuple[int, int]]] = None):
        self.snapshot = snapshot
        self.ranges: List[Tuple[int, int]] = []  # (start, end) half-open
        for start, length in (ranges or []):
            self.add_range(start, length)

    def add_range(self, start: int, length: int) -> None:
        if length <= 0:
            return
        end = start + length
        if start < 0 or end > len(self.snapshot):
            raise ValueError(
                f"constant range [{start:#x}, {end:#x}) outside snapshot")
        self.ranges.append((start, end))

    def contains(self, addr: int, size: int) -> bool:
        return any(start <= addr and addr + size <= end
                   for start, end in self.ranges)

    def read(self, addr: int, size: int, signed: bool) -> Optional[int]:
        """Read an integer if the whole access is in constant memory."""
        if not self.contains(addr, size):
            return None
        raw = int.from_bytes(self.snapshot[addr:addr + size], "little")
        if signed and raw >= 1 << (size * 8 - 1):
            raw -= 1 << (size * 8)
        return wrap_i64(raw)

    def read_f64(self, addr: int) -> Optional[float]:
        if not self.contains(addr, 8):
            return None
        return struct.unpack_from("<d", self.snapshot, addr)[0]


# ---------------------------------------------------------------------------
# Pure-op constant folding (shared by the specializer and the optimizer).
# Semantics must match repro.vm.machine exactly; ops that would trap
# (division by zero, invalid float->int) return None and are left to run.
# ---------------------------------------------------------------------------

_LOAD_SIZES = {
    "load8_u": (1, False), "load8_s": (1, True),
    "load16_u": (2, False), "load16_s": (2, True),
    "load32_u": (4, False), "load32_s": (4, True),
    "load64": (8, False),
}


def load_size(op: str) -> Optional[Tuple[int, bool]]:
    return _LOAD_SIZES.get(op)


def fold_pure_op(op: str, imm: object,
                 args: List[Union[int, float]]) -> Optional[Union[int, float]]:
    """Fold a pure op over constant operand values, or return None."""
    if op == "iconst" or op == "fconst":
        return imm
    if op in FOLDABLE_INT_BINOPS:
        return _fold_int_binop(op, args[0], args[1])
    if op in FOLDABLE_FLOAT_BINOPS:
        return _fold_float_binop(op, args[0], args[1])
    if op == "fneg":
        return -args[0]
    if op == "fabs":
        return abs(args[0])
    if op == "fsqrt":
        return math.sqrt(args[0]) if args[0] >= 0.0 else math.nan
    if op == "ffloor":
        return float(math.floor(args[0]))
    if op == "itof":
        return float(to_signed(args[0]))
    if op == "ftoi":
        if math.isnan(args[0]) or math.isinf(args[0]):
            return None
        return wrap_i64(int(args[0]))
    if op == "bits_ftoi":
        return int.from_bytes(struct.pack("<d", args[0]), "little")
    if op == "bits_itof":
        return struct.unpack("<d", (args[0] & MASK64).to_bytes(8, "little"))[0]
    if op == "select":
        return args[1] if args[0] != 0 else args[2]
    return None


def _fold_int_binop(op: str, a: int, b: int) -> Optional[int]:
    if op == "iadd":
        return (a + b) & MASK64
    if op == "isub":
        return (a - b) & MASK64
    if op == "imul":
        return (a * b) & MASK64
    if op == "idiv_u":
        return a // b if b else None
    if op == "irem_u":
        return a % b if b else None
    if op == "idiv_s":
        if b == 0:
            return None
        sa, sb = to_signed(a), to_signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return wrap_i64(q)
    if op == "irem_s":
        if b == 0:
            return None
        sa, sb = to_signed(a), to_signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return wrap_i64(sa - q * sb)
    if op == "iand":
        return a & b
    if op == "ior":
        return a | b
    if op == "ixor":
        return a ^ b
    if op == "ishl":
        return (a << (b & 63)) & MASK64
    if op == "ishr_u":
        return a >> (b & 63)
    if op == "ishr_s":
        return wrap_i64(to_signed(a) >> (b & 63))
    if op == "ieq":
        return int(a == b)
    if op == "ine":
        return int(a != b)
    if op == "ilt_s":
        return int(to_signed(a) < to_signed(b))
    if op == "ilt_u":
        return int(a < b)
    if op == "ile_s":
        return int(to_signed(a) <= to_signed(b))
    if op == "ile_u":
        return int(a <= b)
    if op == "igt_s":
        return int(to_signed(a) > to_signed(b))
    if op == "igt_u":
        return int(a > b)
    if op == "ige_s":
        return int(to_signed(a) >= to_signed(b))
    if op == "ige_u":
        return int(a >= b)
    return None


def _fold_float_binop(op: str, a: float, b: float) -> Optional[float]:
    if op == "fadd":
        return a + b
    if op == "fsub":
        return a - b
    if op == "fmul":
        return a * b
    if op == "fdiv":
        if b == 0.0:
            if a == 0.0:
                return math.nan
            return math.copysign(math.inf, a) * math.copysign(1.0, b)
        return a / b
    if op in COMPARISON_OPS:
        if op == "feq":
            return int(a == b)
        if op == "fne":
            return int(a != b)
        if op == "flt":
            return int(a < b)
        if op == "fle":
            return int(a <= b)
        if op == "fgt":
            return int(a > b)
        if op == "fge":
            return int(a >= b)
    return None
