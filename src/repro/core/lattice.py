"""The constant-propagation abstract domain used by the specializer.

An abstract value is either :class:`Const` (a compile-time-known i64 bit
pattern or f64) or :class:`Dyn` (a run-time value, identified by the SSA
value id it has in the *specialized* function being built).  There is no
explicit bottom: unreachable code is simply never transcribed.

:class:`ConstMemoryImage` implements the "constant memory" interface of
S3.5/S3.6: the byte ranges promised constant by a specialization request,
backed by the snapshot taken at request time.  Loads whose (folded)
address lands entirely inside a constant range fold to constants — this
is the mechanism that erases the bytecode from the compiled result.
"""

from __future__ import annotations

import dataclasses
import math
import struct
from typing import List, Optional, Tuple, Union

from repro.ir.instructions import (
    COMPARISON_OPS,
    FOLDABLE_FLOAT_BINOPS,
    FOLDABLE_INT_BINOPS,
    MASK64,
    to_signed,
    wrap_i64,
)
from repro.ir.types import F64, I64, Type


@dataclasses.dataclass(frozen=True)
class Const:
    """A compile-time constant: int bit pattern (i64) or float (f64)."""

    value: Union[int, float]
    ty: Type

    def __post_init__(self):
        if self.ty == I64:
            assert isinstance(self.value, int)
        else:
            assert isinstance(self.value, float)


@dataclasses.dataclass(frozen=True)
class Dyn:
    """A run-time value; ``vid`` is its id in the specialized function."""

    vid: int
    ty: Type


AbsVal = Union[Const, Dyn]


class ConstMemoryImage:
    """Constant-memory oracle: snapshot bytes + promised-constant ranges."""

    def __init__(self, snapshot: bytes,
                 ranges: Optional[List[Tuple[int, int]]] = None):
        self.snapshot = snapshot
        self.ranges: List[Tuple[int, int]] = []  # (start, end) half-open
        for start, length in (ranges or []):
            self.add_range(start, length)

    def add_range(self, start: int, length: int) -> None:
        if length <= 0:
            return
        end = start + length
        if start < 0 or end > len(self.snapshot):
            raise ValueError(
                f"constant range [{start:#x}, {end:#x}) outside snapshot")
        self.ranges.append((start, end))

    def contains(self, addr: int, size: int) -> bool:
        return any(start <= addr and addr + size <= end
                   for start, end in self.ranges)

    def read(self, addr: int, size: int, signed: bool) -> Optional[int]:
        """Read an integer if the whole access is in constant memory."""
        if not self.contains(addr, size):
            return None
        raw = int.from_bytes(self.snapshot[addr:addr + size], "little")
        if signed and raw >= 1 << (size * 8 - 1):
            raw -= 1 << (size * 8)
        return wrap_i64(raw)

    def read_f64(self, addr: int) -> Optional[float]:
        if not self.contains(addr, 8):
            return None
        return struct.unpack_from("<d", self.snapshot, addr)[0]


# ---------------------------------------------------------------------------
# Pure-op constant folding (shared by the specializer and the optimizer).
# Semantics must match repro.vm.machine exactly; ops that would trap
# (division by zero, invalid float->int) return None and are left to run.
# ---------------------------------------------------------------------------

_LOAD_SIZES = {
    "load8_u": (1, False), "load8_s": (1, True),
    "load16_u": (2, False), "load16_s": (2, True),
    "load32_u": (4, False), "load32_s": (4, True),
    "load64": (8, False),
}


def load_size(op: str) -> Optional[Tuple[int, bool]]:
    return _LOAD_SIZES.get(op)


def fold_pure_op(op: str, imm: object,
                 args: List[Union[int, float]]) -> Optional[Union[int, float]]:
    """Fold a pure op over constant operand values, or return None."""
    if op == "iconst" or op == "fconst":
        return imm
    if op in FOLDABLE_INT_BINOPS:
        return _fold_int_binop(op, args[0], args[1])
    if op in FOLDABLE_FLOAT_BINOPS:
        return _fold_float_binop(op, args[0], args[1])
    if op == "fneg":
        return -args[0]
    if op == "fabs":
        return abs(args[0])
    if op == "fsqrt":
        return math.sqrt(args[0]) if args[0] >= 0.0 else math.nan
    if op == "ffloor":
        return float(math.floor(args[0]))
    if op == "itof":
        return float(to_signed(args[0]))
    if op == "ftoi":
        if math.isnan(args[0]) or math.isinf(args[0]):
            return None
        return wrap_i64(int(args[0]))
    if op == "bits_ftoi":
        return int.from_bytes(struct.pack("<d", args[0]), "little")
    if op == "bits_itof":
        return struct.unpack("<d", (args[0] & MASK64).to_bytes(8, "little"))[0]
    if op == "select":
        return args[1] if args[0] != 0 else args[2]
    return None


def _fold_int_binop(op: str, a: int, b: int) -> Optional[int]:
    if op == "iadd":
        return (a + b) & MASK64
    if op == "isub":
        return (a - b) & MASK64
    if op == "imul":
        return (a * b) & MASK64
    if op == "idiv_u":
        return a // b if b else None
    if op == "irem_u":
        return a % b if b else None
    if op == "idiv_s":
        if b == 0:
            return None
        sa, sb = to_signed(a), to_signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return wrap_i64(q)
    if op == "irem_s":
        if b == 0:
            return None
        sa, sb = to_signed(a), to_signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return wrap_i64(sa - q * sb)
    if op == "iand":
        return a & b
    if op == "ior":
        return a | b
    if op == "ixor":
        return a ^ b
    if op == "ishl":
        return (a << (b & 63)) & MASK64
    if op == "ishr_u":
        return a >> (b & 63)
    if op == "ishr_s":
        return wrap_i64(to_signed(a) >> (b & 63))
    if op == "ieq":
        return int(a == b)
    if op == "ine":
        return int(a != b)
    if op == "ilt_s":
        return int(to_signed(a) < to_signed(b))
    if op == "ilt_u":
        return int(a < b)
    if op == "ile_s":
        return int(to_signed(a) <= to_signed(b))
    if op == "ile_u":
        return int(a <= b)
    if op == "igt_s":
        return int(to_signed(a) > to_signed(b))
    if op == "igt_u":
        return int(a > b)
    if op == "ige_s":
        return int(to_signed(a) >= to_signed(b))
    if op == "ige_u":
        return int(a >= b)
    return None


def _fold_float_binop(op: str, a: float, b: float) -> Optional[float]:
    if op == "fadd":
        return a + b
    if op == "fsub":
        return a - b
    if op == "fmul":
        return a * b
    if op == "fdiv":
        if b == 0.0:
            if a == 0.0:
                return math.nan
            return math.copysign(math.inf, a) * math.copysign(1.0, b)
        return a / b
    if op in COMPARISON_OPS:
        if op == "feq":
            return int(a == b)
        if op == "fne":
            return int(a != b)
        if op == "flt":
            return int(a < b)
        if op == "fle":
            return int(a <= b)
        if op == "fgt":
            return int(a > b)
        if op == "fge":
            return int(a >= b)
    return None
