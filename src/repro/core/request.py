"""Specialization requests: the semantics-preserving interface (S3.5).

A request names a generic function and gives each parameter one of three
modes:

* :class:`Runtime` — unknown at specialization time;
* :class:`SpecializedConst` — the parameter will have this exact value;
* :class:`SpecializedMemory` — the parameter is a pointer to ``length``
  bytes that are constant at invocation time (e.g. bytecode).

The request is a *promise*: the specialized function is equivalent to the
generic one whenever the promise holds at the call.  To retain
function-pointer compatibility the specialized function keeps the full
parameter list and simply ignores specialized parameters.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple


class ArgMode:
    """Base class for parameter specialization modes."""


@dataclasses.dataclass(frozen=True)
class Runtime(ArgMode):
    """The parameter is only known at run time."""


@dataclasses.dataclass(frozen=True)
class SpecializedConst(ArgMode):
    """The parameter will have this constant value (i64 or f64)."""

    value: object


@dataclasses.dataclass(frozen=True)
class SpecializedMemory(ArgMode):
    """The parameter is a pointer to constant bytes in the heap image."""

    pointer: int
    length: int


@dataclasses.dataclass(frozen=True)
class SpeculatedConst(ArgMode):
    """The parameter is *expected* to have this value (profile-observed).

    Unlike :class:`SpecializedConst`, the promise is not guaranteed by
    the embedder: the specializer folds the value as a constant but emits
    an entry ``guard`` instruction checking the actual argument, and a
    failed guard deoptimizes the call back to the generic function (see
    :mod:`repro.pipeline.tiering`).  i64 parameters only.
    """

    value: int


@dataclasses.dataclass
class SpecializationRequest:
    """One unit of work for the weval transform."""

    generic: str
    args: List[ArgMode]
    specialized_name: Optional[str] = None
    # Additional (addr, length) ranges promised constant, beyond the
    # SpecializedMemory parameters (e.g. tables the bytecode points into).
    extra_const_memory: List[Tuple[int, int]] = dataclasses.field(
        default_factory=list)
    # Speculative inlining plan: ((site_id, ((table_index, callee_fp),
    # ...)), ...).  Each entry asks the specializer to splice the named
    # table entries' bodies into the residual at that call_indirect site,
    # behind a polymorphic guard on the callee index.  The callee
    # fingerprints pin the exact bodies the plan was built against, so
    # cached artifacts cannot be replayed against a different module.
    inline_plan: Tuple = ()

    def name(self) -> str:
        if self.specialized_name:
            return self.specialized_name
        parts = []
        for arg in self.args:
            if isinstance(arg, SpecializedConst):
                parts.append(f"c{arg.value}")
            elif isinstance(arg, SpecializedMemory):
                parts.append(f"m{arg.pointer:x}")
            elif isinstance(arg, SpeculatedConst):
                parts.append(f"g{arg.value}")
            else:
                parts.append("r")
        base = f"{self.generic}.spec.{'_'.join(parts)}"
        if self.inline_plan:
            base += f".inl{len(self.inline_plan)}"
        return base

    def cache_key(self) -> tuple:
        """A hashable key identifying this request's argument data (used
        by :class:`~repro.core.cache.SpecializationCache` together with a
        hash of the module and the referenced memory contents)."""
        frozen_args = tuple(
            (type(a).__name__,) + tuple(dataclasses.asdict(a).items())
            for a in self.args)
        return (self.generic, frozen_args, tuple(self.extra_const_memory),
                self.inline_plan)
