"""The Wizer-style snapshot workflow (S3.5, S6).

The paper integrates weval "from the inside": the runtime enqueues
specialization requests while it initializes (parses source, creates
bytecode), a snapshot of the heap is taken, weval processes the requests
and appends new functions to the module, function pointers in the heap
are patched, and execution resumes from the snapshot.

:class:`SnapshotCompiler` reproduces that life-cycle:

1. ``instantiate()`` — create a VM over the module;
2. run the guest's init export (it may call host functions that in turn
   call :meth:`enqueue`);
3. ``process_requests()`` — specialize each request (through the cache,
   if one is given), append the function to the module, register it in
   the function table, and patch the 64-bit result slot in the heap with
   the table index;
4. ``freeze()`` — write the heap back as the module's initial memory;
5. ``resume()`` — a fresh VM starting from the snapshot, where the
   runtime finds its function pointers filled in and calls specialized
   code via ``call_indirect``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cache import SpecializationCache
from repro.core.request import SpecializationRequest
from repro.core.specialize import SpecializeOptions, specialize
from repro.core.stats import SpecializationStats
from repro.ir.module import Module
from repro.vm.machine import VM


@dataclasses.dataclass
class ProcessedRequest:
    request: SpecializationRequest
    function_name: str
    table_index: int
    result_addr: int
    cache_hit: bool


class SnapshotCompiler:
    """Drives the enqueue -> snapshot -> specialize -> resume workflow."""

    def __init__(self, module: Module,
                 options: Optional[SpecializeOptions] = None,
                 cache: Optional[SpecializationCache] = None):
        self.module = module
        self.options = options or SpecializeOptions()
        self.cache = cache
        self.vm: Optional[VM] = None
        self.pending: List[Tuple[SpecializationRequest, int]] = []
        self.processed: List[ProcessedRequest] = []
        self.total_stats = SpecializationStats()
        # Tier-2 backend state (populated lazily by compile_backend).
        self.backend_functions: Dict[str, Callable] = {}
        self.backend_fallbacks: List[Tuple[str, str]] = []
        self.backend_compile_seconds = 0.0
        self._backend_compiled = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def instantiate(self) -> VM:
        if self.vm is None:
            self.vm = VM(self.module)
        return self.vm

    def run_init(self, func_name: str, args=()) -> object:
        """Run the guest's initialization export (the ``wizer_init``
        analog); requests may be enqueued during this call."""
        return self.instantiate().call(func_name, list(args))

    def enqueue(self, request: SpecializationRequest,
                result_addr: int) -> None:
        """Queue a request; ``result_addr`` is the heap address of the
        64-bit slot to be patched with the new function's table index."""
        self.pending.append((request, result_addr))

    def process_requests(self) -> List[ProcessedRequest]:
        """Specialize all pending requests against the current heap."""
        vm = self.instantiate()
        snapshot = bytes(vm.memory)
        processed = []
        for request, result_addr in self.pending:
            name = self._unique_name(request)
            request = dataclasses.replace(request, specialized_name=name)
            hit = False
            if self.cache is not None:
                func, hit = self.cache.get_or_specialize(
                    self.module, request, self.options, snapshot)
            else:
                func = specialize(self.module, request, self.options,
                                  snapshot)
            stats = getattr(func, "_weval_stats", None)
            if stats is not None:
                self.total_stats.merge(stats)
            self.module.add_function(func)
            index = self.module.add_table_entry(func.name)
            vm.store_u64(result_addr, index)
            processed.append(ProcessedRequest(request, func.name, index,
                                              result_addr, hit))
        self.processed.extend(processed)
        self.pending = []
        return processed

    def _unique_name(self, request: SpecializationRequest) -> str:
        base = request.name()
        if not self.module.has_function(base):
            return base
        counter = 1
        while self.module.has_function(f"{base}.{counter}"):
            counter += 1
        return f"{base}.{counter}"

    def freeze(self) -> Module:
        """Write the live heap back as the module's initial memory (the
        snapshot itself)."""
        vm = self.instantiate()
        self.module.memory_init = bytearray(vm.memory)
        self.module.globals.update(vm.globals)
        return self.module

    def compile_backend(self,
                        names: Optional[List[str]] = None
                        ) -> Dict[str, Callable]:
        """Compile residual functions to Python callables (tier 2).

        ``names`` defaults to every processed specialization (idempotent
        in that case); a partial list compiles only those functions and
        leaves the full set to a later call.  Functions the emitter
        cannot express are recorded in ``backend_fallbacks`` and stay on
        the IR VM.
        """
        from repro.backend import compile_functions
        full = names is None
        if full:
            if self._backend_compiled:
                return self.backend_functions
            names = [p.function_name for p in self.processed]
        start = time.perf_counter()
        todo = [n for n in names if n not in self.backend_functions]
        compiled, fallbacks = compile_functions(self.module, todo)
        self.backend_functions.update(compiled)
        recompiled = set(todo)
        self.backend_fallbacks = [f for f in self.backend_fallbacks
                                  if f[0] not in recompiled] + fallbacks
        self.backend_compile_seconds += time.perf_counter() - start
        if full:
            self._backend_compiled = True
        return compiled

    def resume(self, backend: Optional[str] = None) -> VM:
        """A fresh VM resuming from the frozen snapshot.

        ``backend`` overrides ``options.backend`` for this VM: ``"py"``
        attaches the compiled residual functions (compiling them on
        first use), ``"vm"`` interprets the IR.
        """
        vm = VM(self.module)
        if (backend or self.options.backend) == "py":
            self.compile_backend()
            vm.install_compiled(self.backend_functions)
        return vm

    # ------------------------------------------------------------------
    # Convenience: the whole pipeline in one call.
    # ------------------------------------------------------------------
    def aot_compile(self, init_func: str, init_args=()) -> VM:
        self.run_init(init_func, init_args)
        self.process_requests()
        self.freeze()
        return self.resume()


# The embedding-facing alias: a "runtime with weval support".
WevalRuntime = SnapshotCompiler
