"""The Wizer-style snapshot workflow (S3.5, S6).

The paper integrates weval "from the inside": the runtime enqueues
specialization requests while it initializes (parses source, creates
bytecode), a snapshot of the heap is taken, weval processes the requests
and appends new functions to the module, function pointers in the heap
are patched, and execution resumes from the snapshot.

:class:`SnapshotCompiler` reproduces that life-cycle:

1. ``instantiate()`` — create a VM over the module;
2. run the guest's init export (it may call host functions that in turn
   call :meth:`enqueue`);
3. ``process_requests()`` — hand the whole batch to the
   :class:`~repro.pipeline.engine.CompilationEngine` (which specializes
   through the in-memory cache and the on-disk artifact store, in
   parallel when ``options.jobs > 1``), then — single-threaded, in
   request order — append each function to the module, register it in
   the function table, and patch the 64-bit result slot in the heap
   with the table index;
4. ``freeze()`` — write the heap back as the module's initial memory;
5. ``resume()`` — a fresh VM starting from the snapshot, where the
   runtime finds its function pointers filled in and calls specialized
   code via ``call_indirect``.

All three guest runtimes (`jsvm`, `luavm`, `min`) drive their AOT flow
through this class, so engine configuration (``jobs=``, ``cache_dir=``,
``backend=`` on :class:`~repro.core.specialize.SpecializeOptions`) is
the *only* per-runtime compilation wiring left.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.cache import SpecializationCache
from repro.core.request import SpecializationRequest
from repro.core.specialize import SpecializeOptions
from repro.core.stats import SpecializationStats
from repro.ir.module import Module
from repro.vm.machine import VM


@dataclasses.dataclass
class ProcessedRequest:
    request: SpecializationRequest
    function_name: str
    table_index: int
    result_addr: int
    cache_hit: bool            # in-memory SpecializationCache hit
    artifact_hit: bool = False  # residual loaded from the on-disk store
    # Fault containment: a request whose compile crashed.  The module,
    # table, and heap were left untouched (table_index is -1) — the
    # guest keeps calling whatever the slot already held, i.e. tier 0.
    error: Optional[str] = None


class SnapshotCompiler:
    """Drives the enqueue -> snapshot -> specialize -> resume workflow."""

    def __init__(self, module: Module,
                 options: Optional[SpecializeOptions] = None,
                 cache: Optional[SpecializationCache] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None):
        from repro.pipeline.engine import CompilationEngine
        self.module = module
        self.options = options or SpecializeOptions()
        self.cache = cache
        self.engine = CompilationEngine(module, self.options, cache,
                                        jobs=jobs, cache_dir=cache_dir)
        self.vm: Optional[VM] = None
        self.pending: List[Tuple[SpecializationRequest, int]] = []
        self.processed: List[ProcessedRequest] = []
        self.total_stats = SpecializationStats()
        # Tier-2 backend state (populated by the engine's emit stage when
        # ``options.backend == "py"``, or lazily by compile_backend).
        self.backend_functions: Dict[str, Callable] = {}
        self.backend_fallbacks: List[Tuple[str, str]] = []
        self.backend_compile_seconds = 0.0
        self._backend_compiled = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def instantiate(self) -> VM:
        if self.vm is None:
            self.vm = VM(self.module)
        return self.vm

    def run_init(self, func_name: str, args=()) -> object:
        """Run the guest's initialization export (the ``wizer_init``
        analog); requests may be enqueued during this call."""
        return self.instantiate().call(func_name, list(args))

    def enqueue(self, request: SpecializationRequest,
                result_addr: int) -> None:
        """Queue a request; ``result_addr`` is the heap address of the
        64-bit slot to be patched with the new function's table index."""
        self.pending.append((request, result_addr))

    def process_requests(self) -> List[ProcessedRequest]:
        """Compile all pending requests against the current heap and
        apply the results (module mutation, table registration, heap
        patching) in request order."""
        vm = self.instantiate()
        snapshot = bytes(vm.memory)
        taken: Set[str] = set()
        batch: List[Tuple[SpecializationRequest, int]] = []
        for request, result_addr in self.pending:
            name = self._unique_name(request, taken)
            taken.add(name)
            batch.append((dataclasses.replace(request,
                                              specialized_name=name),
                          result_addr))

        emit_before = self.engine.stats.emit_seconds
        results = self.engine.compile_batch([req for req, _ in batch],
                                            snapshot)
        self.backend_compile_seconds += (self.engine.stats.emit_seconds
                                         - emit_before)

        processed = []
        for (request, result_addr), result in zip(batch, results):
            if result.error is not None:
                # Contained compile failure: apply *nothing* for this
                # request — no module mutation, no table slot, no heap
                # patch — so the guest's function pointer still names
                # the generic tier-0 path.  Sibling requests in the
                # same batch are applied normally.
                processed.append(ProcessedRequest(
                    request, request.name(), -1, result_addr,
                    False, False, error=result.error))
                continue
            func = result.function
            stats = getattr(func, "_weval_stats", None)
            if stats is not None:
                self.total_stats.merge(stats)
            self.module.add_function(func)
            index = self.module.add_table_entry(func.name)
            vm.store_u64(result_addr, index)
            if result.pyfunc is not None:
                self.backend_functions[func.name] = result.pyfunc
            elif result.fallback_reason is not None:
                self.backend_fallbacks.append((func.name,
                                               result.fallback_reason))
            processed.append(ProcessedRequest(
                request, func.name, index, result_addr,
                result.cache_hit, result.artifact_hit))
        if self.options.backend == "py":
            # The engine emitted (or warm-loaded) every backend function
            # in the batch; a later full compile_backend() is a no-op.
            self._backend_compiled = True
        self.processed.extend(processed)
        self.pending = []
        return processed

    def _unique_name(self, request: SpecializationRequest,
                     taken: Set[str] = frozenset()) -> str:
        base = request.name()
        if not self.module.has_function(base) and base not in taken:
            return base
        counter = 1
        while self.module.has_function(f"{base}.{counter}") or \
                f"{base}.{counter}" in taken:
            counter += 1
        return f"{base}.{counter}"

    def freeze(self) -> Module:
        """Write the live heap back as the module's initial memory (the
        snapshot itself)."""
        vm = self.instantiate()
        self.module.memory_init = bytearray(vm.memory)
        self.module.globals.update(vm.globals)
        return self.module

    def compile_backend(self,
                        names: Optional[List[str]] = None
                        ) -> Dict[str, Callable]:
        """Compile residual functions to Python callables (tier 2).

        ``names`` defaults to every processed specialization (idempotent
        in that case); a partial list compiles only those functions and
        leaves the full set to a later call.  Functions the emitter
        cannot express are recorded in ``backend_fallbacks`` and stay on
        the IR VM.  Delegates to the engine, so emission runs on the
        worker pool and emitted source persists in the artifact store.
        """
        full = names is None
        if full:
            if self._backend_compiled:
                return self.backend_functions
            names = [p.function_name for p in self.processed
                     if p.error is None]
        start = time.perf_counter()
        todo = [n for n in names if n not in self.backend_functions]
        compiled, fallbacks = self.engine.compile_backend_functions(todo)
        self.backend_functions.update(compiled)
        recompiled = set(todo)
        self.backend_fallbacks = [f for f in self.backend_fallbacks
                                  if f[0] not in recompiled] + fallbacks
        self.backend_compile_seconds += time.perf_counter() - start
        if full:
            self._backend_compiled = True
        return compiled

    def resume(self, backend: Optional[str] = None) -> VM:
        """A fresh VM resuming from the frozen snapshot.

        ``backend`` overrides ``options.backend`` for this VM: ``"py"``
        attaches the compiled residual functions (compiling them on
        first use), ``"vm"`` interprets the IR.
        """
        vm = VM(self.module)
        if (backend or self.options.backend) == "py":
            self.compile_backend()
            vm.install_compiled(self.backend_functions)
        return vm

    # ------------------------------------------------------------------
    # Convenience: the whole pipeline in one call.
    # ------------------------------------------------------------------
    def aot_compile(self, init_func: str, init_args=()) -> VM:
        self.run_init(init_func, init_args)
        self.process_requests()
        self.freeze()
        return self.resume()


# The embedding-facing alias: a "runtime with weval support".
WevalRuntime = SnapshotCompiler
