"""The weval transform: user-context-controlled constant propagation.

This is the paper's core algorithm (Fig. 5).  Given a generic function
and a :class:`~repro.core.request.SpecializationRequest`, it produces a
new function in which:

* blocks are duplicated per specialization *context* — contexts are
  driven by the interpreter's own ``update_context(pc)`` annotations, so
  the interpreter loop unrolls over the (constant) bytecode;
* constant propagation runs while transcribing, folding loads from
  promised-constant memory, so the result is a *bytecode-erased
  compilation*: no loads from the bytecode stream survive and dispatch
  branches fold away;
* run-time-data-dependent control flow is handled by
  ``specialized_value`` ("The Trick", S3.3), which emits a ``br_table``
  over the declared range with one specialized continuation per value
  (plus a fully generic default continuation, preserving semantics for
  out-of-range values);
* interpreter state annotated with register/local/stack intrinsics is
  lifted into SSA values with lazy write-back (S4).

The transform is a fixpoint: specialized blocks are keyed by
⟨context, generic block⟩; entry states are met over predecessor edges
and blocks are rebuilt when their entry state changes.  SSA validity of
the output holds by construction (see :mod:`repro.core.state`); the
``naive`` SSA mode reproduces the paper's S3.4 parameter-blow-up
ablation.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core import context as ctx_mod
from repro.core.intrinsics import INTRINSICS
from repro.core.lattice import (
    ZERO,
    AbsVal,
    Const,
    ConstMemoryImage,
    Dyn,
    fold_pure_op,
    intern_const,
    intern_counters,
    load_size,
)
from repro.core.request import (
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    SpeculatedConst,
)
from repro.core.state import (
    FlowState,
    LocalSlot,
    MeetResult,
    SlotKey,
    StackSlot,
    binding_of,
    meet_states,
    single_pred_entry_state,
    states_equal,
    states_equal_observable,
    unstable_slots,
)
from repro.core.stats import SpecializationStats
from repro.ir.cfg import reverse_postorder
from repro.ir.clone import clone_function
from repro.ir.renumber import canonicalize_function
from repro.ir.function import Block, Function
from repro.ir.instructions import (
    OPCODES,
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
    terminator_values,
)
from repro.ir.module import Module
from repro.ir.types import F64, I64, Type


class SpecializeError(Exception):
    """Specialization failed (bad request, assert_const violation, ...)."""


def _default_backend() -> str:
    """Execution tier for residual code; overridable per environment."""
    return os.environ.get("REPRO_BACKEND", "vm")


@dataclasses.dataclass
class SpecializeOptions:
    """Tunables for the transform."""

    ssa_mode: str = "minimal"          # "minimal" | "naive" (S3.4 ablation)
    optimize: bool = True              # run the post pipeline on the output
    opt_config: str = "default"        # named pipeline (see opt.PIPELINES)
    opt_max_rounds: int = 6            # pipeline fixpoint round cap
    verify_opt: bool = False           # run the IR verifier after each pass
    # Execution tier for the residual code: "vm" interprets the IR,
    # "py" compiles it to native Python functions (repro.backend) with
    # automatic per-function fallback to the VM.  Defaults to the
    # REPRO_BACKEND environment variable (or "vm").
    backend: str = dataclasses.field(default_factory=_default_backend)
    # Code-shape mode for the py backend: "structured" reconstructs
    # loops/joins as native ``while``/``if`` nests (relooper-style) with
    # batched fuel accounting; "dispatch" is the flat block-dispatch
    # tree.  Both are trap/print/fuel-identical; structured regions the
    # emitter cannot reduce fall back to dispatch per function.  The
    # residual IR is unaffected, so this is not part of the specializer
    # cache key — but it IS part of the emitted-artifact key.
    emit_mode: str = "structured"
    # Artifact granularity for the py backend's warm start: "code"
    # additionally persists the ``compile()``d code object (marshal,
    # keyed by the interpreter magic) beside the emitted source, so a
    # warm restart skips parsing/compiling entirely; "source" stores
    # text only.  Loads silently fall back to source on any
    # marshal/interpreter skew, so results are identical either way —
    # this knob is NOT part of any cache key.
    codegen: str = "code"
    # Compilation-engine knobs (repro.pipeline): worker count for batch
    # compilation and the root of the persistent on-disk artifact store
    # (None disables persistence).  Neither affects specialization
    # *output*, so neither is part of any cache key.
    jobs: int = 1
    cache_dir: Optional[str] = None
    # Worker-pool flavor for the engine's pure specialize stage:
    # "thread" shares the module in-process; "process" ships the module
    # (serialized, import signatures only) to a ProcessPoolExecutor and
    # sidesteps the GIL.  Output is bit-identical either way — the
    # determinism tier asserts it — so, like ``jobs``, this is NOT part
    # of any cache key.
    pool: str = "thread"
    max_revisits: int = 64             # per-key convergence safeguard
    max_value_specializations: int = 4096
    max_iterations: int = 2_000_000
    # Once this many distinct contexts exist, further new contexts are
    # collapsed into the shared dynamic context.  Contexts only steer code
    # duplication, never correctness, so this is a sound safety valve
    # against runaway specialization of dynamically-unreachable paths.
    max_contexts: int = 100_000
    # Deterministic fault injection for the robustness tier
    # (repro.pipeline.faults.FaultPlan, or None for production).  The
    # plan only *fails* pipeline stages — it never changes what a
    # successful compile produces — so, like ``jobs``/``pool``, it is
    # deliberately NOT part of any cache key.
    fault_plan: Optional[object] = None
    # Escape hatch for the fixpoint engine's throughput machinery:
    # disables unchanged-input meet skipping in the specializer and both
    # levels of mid-end pass skipping (dirty sets and work detectors),
    # recomputing everything the fast engine claims it may elide.  Output
    # is byte-identical either way — the determinism tier asserts it — so
    # this knob is deliberately NOT part of any cache key.
    debug_exhaustive: bool = False

    def __post_init__(self):
        if self.ssa_mode not in ("minimal", "naive"):
            raise ValueError(f"bad ssa_mode {self.ssa_mode!r}")
        if self.backend not in ("vm", "py"):
            raise ValueError(f"bad backend {self.backend!r}")
        if self.emit_mode not in ("structured", "dispatch"):
            raise ValueError(f"bad emit_mode {self.emit_mode!r}")
        if self.codegen not in ("source", "code"):
            raise ValueError(f"bad codegen {self.codegen!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.pool not in ("thread", "process"):
            raise ValueError(f"bad pool {self.pool!r}")
        from repro.opt.pass_manager import PIPELINES
        if self.opt_config not in PIPELINES:
            raise ValueError(f"bad opt_config {self.opt_config!r}")


Key = Tuple[tuple, int]  # (context, generic block id)

_PROLOGUE_KEY: Key = (("__prologue__",), -1)

# Per-opcode transcription dispatch, precomputed once at import:
# ``op -> (pure, load_size() pair or None, is_loadf64)``.  The
# transcription loop is one of the two hottest paths of cold AOT (with
# meet_states); folding the OPCODES probe, the load_size() call, and
# the loadf64 compare into a single dict hit removes three lookups per
# transcribed instruction.
_TRANSCRIBE_DISPATCH: Dict[str, tuple] = {
    op: (info.pure, load_size(op), op == "loadf64")
    for op, info in OPCODES.items()
}

# Kill switch for the sole-contributor meet fast path.  Like
# ``debug_exhaustive`` it changes how the entry state is computed, never
# what it is — the fixpoint tier flips it off and asserts the full
# ``meet_states`` rebuild produces byte-identical residuals — so it is
# deliberately outside every cache key.
SINGLE_PRED_FAST_MEET = True


@dataclasses.dataclass
class _Edge:
    position: int
    succ_key: Key
    overrides: Dict[int, AbsVal]
    call: BlockCall


class _KeyInfo:
    """Bookkeeping for one specialized block (one ⟨context, block⟩ pair).

    ``out_version`` is a monotone counter bumped only when a rebuild
    changes this block's *observable* behavior (its out-state or its
    outgoing edges); successors snapshot the versions they consumed in
    ``last_input_sig`` so an unchanged input set skips the whole meet.
    ``minted`` caches the value ids allocated at each mint position of a
    rebuild, so re-transcribing from an equal entry state reproduces the
    exact same SSA ids — that stability is what makes ``out_version``
    stick and kills the id-churn re-flow cascades of the FIFO engine.
    """

    __slots__ = ("key", "spec_block", "entry_state",
                 "out_state", "edges_out", "in_edges", "param_ids",
                 "param_slots", "revisits", "force_all_params", "built",
                 "pinned_slots", "out_version", "last_input_sig",
                 "minted", "mint_pos", "priority")

    def __init__(self, key: Key, spec_block: Block):
        self.key = key
        self.spec_block = spec_block
        self.entry_state: Optional[FlowState] = None
        self.out_state: Optional[FlowState] = None
        self.edges_out: List[_Edge] = []
        self.in_edges: Dict[Tuple[Key, int], Dict[int, AbsVal]] = {}
        self.param_ids: Dict[SlotKey, int] = {}
        self.param_slots: List[SlotKey] = []
        self.revisits = 0
        self.force_all_params = False
        self.built = False
        self.pinned_slots = set()
        self.out_version = 0
        self.last_input_sig: Optional[tuple] = None
        self.minted: List[int] = []
        self.mint_pos = 0
        self.priority: Tuple[int, int] = (0, 0)


class _Specializer:
    def __init__(self, module: Module, request: SpecializationRequest,
                 options: SpecializeOptions,
                 memory: Optional[bytes] = None):
        self.module = module
        self.request = request
        self.options = options
        self.stats = SpecializationStats()

        generic = module.functions.get(request.generic)
        if generic is None:
            raise SpecializeError(f"unknown function {request.generic!r}")
        if len(request.args) != len(generic.sig.params):
            raise SpecializeError(
                f"{request.generic}: request has {len(request.args)} arg "
                f"modes, function has {len(generic.sig.params)} params")

        self.generic = self._prepare(generic)
        self.live_in, self.live_out, self.block_params = \
            self._liveness(self.generic)

        snapshot = bytes(memory if memory is not None
                         else module.memory_init)
        self.image = ConstMemoryImage(snapshot)
        for arg, mode in zip(generic.sig.params, request.args):
            if isinstance(mode, SpecializedMemory):
                self.image.add_range(mode.pointer, mode.length)
        for start, length in request.extra_const_memory:
            self.image.add_range(start, length)

        self.out = Function(request.name(), generic.sig)
        self.infos: Dict[Key, _KeyInfo] = {}
        self.queued: Set[Key] = set()
        self._iterations = 0
        self._seen_contexts: Set[tuple] = set()

        # Worklist policy: a priority queue ordered by (context discovery
        # index, generic-block reverse-postorder index).  Within one
        # context the generic CFG is flowed predecessors-first, and
        # contexts are flowed roughly in the order specialization
        # discovers them, which tracks forward progress through the
        # unrolled interpreter.  Processing predecessors before successors
        # lets meets converge in ~one pass over reducible regions instead
        # of re-flowing.  Both engines share this order — the convergence
        # damper's pin set depends on the visit order, so the order is
        # part of which (equally valid) fixpoint is chosen;
        # ``debug_exhaustive`` only disables the *skipping* machinery
        # (unchanged-input meets), which is the part whose soundness the
        # determinism tier must check.
        self._exhaustive = options.debug_exhaustive
        self._heap: List[Tuple[Tuple[int, int], Key]] = []
        self._rpo_index: Dict[int, int] = {
            bid: i for i, bid in enumerate(reverse_postorder(self.generic))}
        self._rpo_unreachable = len(self._rpo_index)
        self._ctx_order: Dict[tuple, int] = {}
        self._key_strs: Dict[Key, str] = {}
        self._mint_info: Optional[_KeyInfo] = None

    # ------------------------------------------------------------------
    # Preparation: clone + split blocks after specialized_value calls.
    # ------------------------------------------------------------------
    @staticmethod
    def _prepare(generic: Function) -> Function:
        func = clone_function(generic)
        work = list(func.blocks.keys())
        for bid in work:
            block = func.blocks[bid]
            while True:
                split_at = None
                for i, instr in enumerate(block.instrs):
                    if (instr.op == "call" and
                            instr.imm == "weval.specialized_value" and
                            i + 1 <= len(block.instrs)):
                        if i + 1 < len(block.instrs) or True:
                            split_at = i
                            break
                if split_at is None:
                    break
                cont = func.new_block()
                cont.instrs = block.instrs[split_at + 1:]
                cont.terminator = block.terminator
                block.instrs = block.instrs[:split_at + 1]
                block.terminator = Jump(BlockCall(cont.id, ()))
                block = cont
        return func

    @staticmethod
    def _liveness(func: Function):
        """Backward liveness: per-block live-in sets and param id lists."""
        uses: Dict[int, Set[int]] = {}
        defs: Dict[int, Set[int]] = {}
        params: Dict[int, List[int]] = {}
        for bid, block in func.blocks.items():
            block_defs = {v for v, _ in block.params}
            block_uses: Set[int] = set()
            for instr in block.instrs:
                block_uses.update(instr.args)
                if instr.result is not None:
                    block_defs.add(instr.result)
            if block.terminator is not None:
                block_uses.update(terminator_values(block.terminator))
            uses[bid] = block_uses - block_defs
            defs[bid] = block_defs
            params[bid] = [v for v, _ in block.params]

        succs: Dict[int, List[int]] = {}
        for bid, block in func.blocks.items():
            succs[bid] = ([c.block for c in block.terminator.targets()]
                          if block.terminator else [])

        live_in: Dict[int, Set[int]] = {bid: set(uses[bid])
                                        for bid in func.blocks}
        changed = True
        while changed:
            changed = False
            for bid in func.blocks:
                live_out: Set[int] = set()
                for succ in succs[bid]:
                    live_out.update(live_in[succ])
                new = uses[bid] | (live_out - defs[bid])
                if new != live_in[bid]:
                    live_in[bid] = new
                    changed = True
        # Live-out sets bound what successors can observe of a block's
        # out-state env — the domain of the out-version change check.
        live_out_sets: Dict[int, Set[int]] = {}
        for bid in func.blocks:
            out: Set[int] = set()
            for succ in succs[bid]:
                out.update(live_in[succ])
                out.update(params[succ])
            live_out_sets[bid] = out
        return live_in, live_out_sets, params

    # ------------------------------------------------------------------
    # Worklist management.
    # ------------------------------------------------------------------
    def _get_or_create(self, key: Key) -> _KeyInfo:
        info = self.infos.get(key)
        if info is None:
            info = _KeyInfo(key, self.out.new_block())
            ctx, gblock = key
            order = self._ctx_order.setdefault(ctx, len(self._ctx_order))
            info.priority = (order, self._rpo_index.get(
                gblock, self._rpo_unreachable + gblock))
            self.infos[key] = info
            self.stats.contexts_created += 1
        return info

    def _enqueue(self, key: Key) -> None:
        if key not in self.queued:
            self.queued.add(key)
            # The priority pair is a bijection of the key (one context
            # index, one block index each), so heap comparisons never
            # reach the key itself.
            heapq.heappush(self._heap, (self.infos[key].priority, key))

    def _pop(self) -> Key:
        return heapq.heappop(self._heap)[1]

    # ------------------------------------------------------------------
    # Driver.
    # ------------------------------------------------------------------
    def run(self) -> Function:
        start = time.perf_counter()
        intern_hits0, intern_misses0 = intern_counters()
        self._seed()
        while self.queued:
            self._iterations += 1
            if self._iterations > self.options.max_iterations:
                raise SpecializeError(
                    f"{self.request.name()}: specialization did not "
                    f"converge after {self._iterations} iterations")
            key = self._pop()
            self.queued.discard(key)
            self._process(key)
        self._fill_edges()
        # Erase the fixpoint history from the numbering: canonical ids
        # make the output independent of revisit counts and skip
        # decisions (and drop debris blocks from abandoned edges), which
        # is what lets the fast and debug_exhaustive engines be compared
        # byte for byte.
        canonicalize_function(self.out)
        self.stats.output_blocks = len(self.out.blocks)
        self.stats.output_instrs = self.out.num_instrs()
        self.stats.output_block_params = self.out.total_block_params()
        intern_hits1, intern_misses1 = intern_counters()
        self.stats.intern_hits = intern_hits1 - intern_hits0
        self.stats.intern_misses = intern_misses1 - intern_misses0
        self.stats.wallclock_seconds = time.perf_counter() - start
        return self.out

    def _seed(self) -> None:
        prologue = self.out.new_block()
        self.out.entry = prologue.id
        seed_env: Dict[int, AbsVal] = {}
        for (gvid, ty), mode in zip(self.generic.entry_block().params,
                                    self.request.args):
            if isinstance(mode, Runtime):
                vid = self.out.add_block_param(prologue, ty)
                seed_env[gvid] = Dyn(vid, ty)
            elif isinstance(mode, SpecializedConst):
                vid = self.out.add_block_param(prologue, ty)  # ignored
                value = mode.value
                if ty == I64:
                    value = int(value) & ((1 << 64) - 1)
                else:
                    value = float(value)
                seed_env[gvid] = intern_const(value, ty)
            elif isinstance(mode, SpecializedMemory):
                vid = self.out.add_block_param(prologue, ty)  # ignored
                if ty != I64:
                    raise SpecializeError("SpecializedMemory arg must be i64")
                seed_env[gvid] = intern_const(mode.pointer, ty)
            elif isinstance(mode, SpeculatedConst):
                # Guarded speculation: fold the profile-observed value as
                # a constant, but keep the parameter live and check it at
                # entry — a mismatch at run time deopts to the generic
                # function instead of computing with a wrong constant.
                vid = self.out.add_block_param(prologue, ty)
                if ty != I64:
                    raise SpecializeError("SpeculatedConst arg must be i64")
                value = int(mode.value) & ((1 << 64) - 1)
                prologue.instrs.append(
                    Instr("guard", None, (vid,), value, None))
                seed_env[gvid] = intern_const(value, ty)
            else:
                raise SpecializeError(f"bad arg mode {mode!r}")

        entry_key: Key = (ctx_mod.ROOT, self.generic.entry)
        entry_info = self._get_or_create(entry_key)
        call = BlockCall(entry_info.spec_block.id, ())
        prologue.terminator = Jump(call)

        prologue_info = _KeyInfo(_PROLOGUE_KEY, prologue)
        prologue_info.built = True
        prologue_info.out_state = FlowState()
        prologue_info.edges_out = [_Edge(0, entry_key, seed_env, call)]
        self.infos[_PROLOGUE_KEY] = prologue_info
        entry_info.in_edges[(_PROLOGUE_KEY, 0)] = seed_env
        self._enqueue(entry_key)

    # ------------------------------------------------------------------
    # Per-key processing: meet entries, rebuild if changed.
    # ------------------------------------------------------------------
    def _edge_sort_key(self, item) -> Tuple[str, int]:
        pred_key, pos = item[0]
        text = self._key_strs.get(pred_key)
        if text is None:
            text = self._key_strs[pred_key] = str(pred_key)
        return (text, pos)

    def _process(self, key: Key) -> None:
        info = self.infos[key]
        self.stats.block_visits += 1
        contributions = []
        input_sig = []
        for (pred_key, pos), overrides in sorted(
                info.in_edges.items(), key=self._edge_sort_key):
            pred = self.infos.get(pred_key)
            if pred is None or pred.out_state is None:
                continue
            contributions.append((pred.out_state, overrides))
            input_sig.append((pred_key, pos, pred.out_version))
        if not contributions:
            return
        # Change detection: if every contributing predecessor still has
        # the out-version this key last consumed, the meet's inputs are
        # unchanged and so is its result — skip it entirely.  (Stable
        # minting in _rebuild is what keeps out-versions from churning.)
        input_sig = tuple(input_sig)
        if (not self._exhaustive and info.built
                and input_sig == info.last_input_sig):
            self.stats.meets_skipped += 1
            return

        gblock_id = key[1]
        env_domain = set(self.live_in[gblock_id])
        env_domain.update(self.block_params[gblock_id])

        def param_for(slot: SlotKey, ty: Type) -> int:
            vid = info.param_ids.get(slot)
            if vid is None:
                vid = self.out.new_value(ty)
                info.param_ids[slot] = vid
            return vid

        def run_meet():
            # Sole-contributor fast path: no join can force a block
            # parameter, so the meet degenerates to reusing the
            # predecessor's out-state (exact — both engines take it, and
            # the determinism tier pins the output bytes).
            if (SINGLE_PRED_FAST_MEET
                    and len(contributions) == 1
                    and not info.pinned_slots
                    and not info.force_all_params
                    and self.options.ssa_mode != "naive"):
                pred_state, pred_overrides = contributions[0]
                self.stats.meets_single_pred += 1
                return single_pred_entry_state(pred_state, pred_overrides,
                                               env_domain)
            return meet_states(
                contributions, env_domain,
                lambda gvid: self.generic.value_types[gvid],
                param_for,
                naive=(self.options.ssa_mode == "naive"),
                force_all_params=info.force_all_params,
                pinned_slots=info.pinned_slots,
            )

        meet = run_meet()
        self.stats.meets_performed += 1
        info.last_input_sig = input_sig
        if info.built and info.entry_state is not None \
                and states_equal(meet.state, info.entry_state):
            info.param_slots = meet.param_slots
            return
        info.revisits += 1
        if info.revisits > self.options.max_revisits and \
                not info.force_all_params and info.entry_state is not None:
            # Convergence damper: SSA-id churn in cyclic regions can make
            # entry states oscillate forever (predecessor rebuilds mint
            # fresh value ids).  Pin exactly the slots that changed to
            # stable block parameters; stable constants (e.g. the pc)
            # keep flowing as constants.
            new_pins = unstable_slots(info.entry_state, meet.state)
            if new_pins - info.pinned_slots:
                info.pinned_slots |= new_pins
                meet = run_meet()
            elif info.revisits > 4 * self.options.max_revisits:
                # Last resort: everything becomes a parameter.
                info.force_all_params = True
                meet = run_meet()
        if info.built:
            self.stats.block_revisits += 1
        info.entry_state = meet.state
        info.param_slots = meet.param_slots
        self._rebuild(info)

    # ------------------------------------------------------------------
    # Block transcription.
    # ------------------------------------------------------------------
    def _slot_type(self, slot: SlotKey) -> Type:
        if slot[0] == "env":
            return self.generic.value_types[slot[1]]
        return I64

    def _rebuild(self, info: _KeyInfo) -> None:
        ctx, gblock_id = info.key
        gblock = self.generic.blocks[gblock_id]
        block = info.spec_block
        block.params = [(info.param_ids[slot], self._slot_type(slot))
                        for slot in info.param_slots]
        block.instrs = []
        block.terminator = None
        self.stats.blocks_specialized += 1

        old_out = info.out_state
        old_edges = [(e.succ_key, e.position, e.overrides)
                     for e in info.edges_out]

        # Drop old outgoing edge registrations; they will be re-added.
        for edge in info.edges_out:
            succ = self.infos.get(edge.succ_key)
            if succ is not None:
                succ.in_edges.pop((info.key, edge.position), None)
        info.edges_out = []

        state = info.entry_state.copy()
        const_cache: Dict[Tuple[object, Type], int] = {}
        pending_sv: Optional[Tuple[Instr, int, int, AbsVal]] = None

        # Stable minting: value ids allocated during this rebuild come
        # from the per-key position cache, so transcribing the same entry
        # state twice yields identical ids (see _KeyInfo).
        self._mint_info = info
        info.mint_pos = 0
        try:
            for instr in gblock.instrs:
                if instr.op == "call" and instr.imm in INTRINSICS:
                    ctx, pending_sv = self._transcribe_intrinsic(
                        block, state, const_cache, ctx, instr)
                    if pending_sv is not None:
                        break  # specialized_value is last by preparation
                else:
                    self._transcribe_instr(block, state, const_cache, instr)

            if pending_sv is not None:
                self._emit_value_specialization(info, block, state,
                                                const_cache, ctx, gblock,
                                                pending_sv)
            else:
                self._transcribe_terminator(info, block, state, const_cache,
                                            ctx, gblock)
        finally:
            self._mint_info = None
        info.out_state = state
        info.built = True
        # Version-bump only on *observable* change: successors read the
        # env through their entry domains (bounded by this block's
        # live-outs) and the edge overrides (compared below); bindings
        # for values dead past this block can churn without invalidating
        # any downstream meet.
        if old_out is None or \
                not states_equal_observable(old_out, state,
                                            self.live_out[gblock_id]) or \
                [(e.succ_key, e.position, e.overrides)
                 for e in info.edges_out] != old_edges:
            info.out_version += 1

    # --- plain instructions ------------------------------------------------
    def _mint(self, ty: Type) -> int:
        """Allocate an SSA value id, stably across rebuilds of one key.

        Inside a rebuild, ids are handed out by position from the owning
        key's mint cache so an identical re-transcription reproduces the
        same ids; outside (phase 2 edge fixups), fresh ids are minted.
        Reused positions refresh ``value_types`` in case the instruction
        at that position changed type between rebuilds.
        """
        info = self._mint_info
        if info is None:
            return self.out.new_value(ty)
        pos = info.mint_pos
        info.mint_pos = pos + 1
        if pos < len(info.minted):
            vid = info.minted[pos]
            self.out.value_types[vid] = ty
            return vid
        vid = self.out.new_value(ty)
        info.minted.append(vid)
        return vid

    def _mat(self, block: Block,
             const_cache: Dict[Tuple[object, Type], int],
             value: AbsVal) -> int:
        """Materialize an abstract value as an SSA value in ``block``."""
        if isinstance(value, Dyn):
            return value.vid
        key = (value.value, value.ty)
        vid = const_cache.get(key)
        if vid is None:
            op = "iconst" if value.ty == I64 else "fconst"
            vid = self._mint(value.ty)
            block.instrs.append(Instr(op, vid, (), value.value, value.ty))
            const_cache[key] = vid
        return vid

    def _transcribe_instr(self, block: Block, state: FlowState,
                          const_cache, instr: Instr) -> None:
        op = instr.op
        pure, size_info, is_loadf64 = _TRANSCRIBE_DISPATCH[op]
        try:
            abs_args = [state.env[a] for a in instr.args]
        except KeyError as exc:
            raise SpecializeError(
                f"{self.request.name()}: value v{exc.args[0]} not bound "
                f"during transcription (internal error)") from exc

        # Loads from promised-constant memory fold to constants: this is
        # the bytecode-erasing step.
        if size_info is not None and isinstance(abs_args[0], Const):
            size, signed = size_info
            addr = (abs_args[0].value + (instr.imm or 0)) & ((1 << 64) - 1)
            folded = self.image.read(addr, size, signed)
            if folded is not None:
                state.env[instr.result] = intern_const(folded, I64)
                self.stats.loads_folded_from_const_memory += 1
                return
        if is_loadf64 and isinstance(abs_args[0], Const):
            addr = (abs_args[0].value + (instr.imm or 0)) & ((1 << 64) - 1)
            folded_f = self.image.read_f64(addr)
            if folded_f is not None:
                state.env[instr.result] = Const(folded_f, F64)
                self.stats.loads_folded_from_const_memory += 1
                return

        # Pure constant folding.
        if pure and all(isinstance(a, Const) for a in abs_args):
            folded = fold_pure_op(op, instr.imm,
                                  [a.value for a in abs_args])
            if folded is not None:
                ty = instr.result_type or I64
                state.env[instr.result] = intern_const(folded, ty)
                self.stats.instrs_folded += 1
                return

        args = tuple(self._mat(block, const_cache, a) for a in abs_args)
        if instr.result is not None:
            ty = instr.result_type
            vid = self._mint(ty)
            state.env[instr.result] = Dyn(vid, ty)
        else:
            vid = None
        block.instrs.append(Instr(op, vid, args, instr.imm,
                                  instr.result_type))

    # --- intrinsics ----------------------------------------------------------
    def _require_const_int(self, value: AbsVal, what: str) -> int:
        if not isinstance(value, Const):
            raise SpecializeError(
                f"{self.request.name()}: {what} must be a specialization-"
                f"time constant")
        return int(value.value)

    def _transcribe_intrinsic(self, block: Block, state: FlowState,
                              const_cache, ctx, instr: Instr):
        name = instr.imm[len("weval."):]
        abs_args = [state.env[a] for a in instr.args]
        stats = self.stats

        if name == "push_context":
            if isinstance(abs_args[0], Const):
                ctx = ctx_mod.push(ctx, abs_args[0].value)
            else:
                # A run-time context value collapses into the shared
                # "generic copy" context: the worst case the paper
                # describes (S3.1) where specialization degrades to the
                # original interpreter body — but stays sound and keeps
                # the context set finite.
                stats.dynamic_context_updates += 1
                ctx = ctx_mod.push(ctx, ctx_mod.DYNAMIC)
            return ctx, None
        if name == "update_context":
            if isinstance(abs_args[0], Const):
                ctx = ctx_mod.update(ctx, abs_args[0].value)
            else:
                stats.dynamic_context_updates += 1
                ctx = ctx_mod.update(ctx, ctx_mod.DYNAMIC)
            return ctx, None
        if name == "pop_context":
            return ctx_mod.pop(ctx), None
        if name == "assert_const":
            if not isinstance(abs_args[0], Const):
                raise SpecializeError(
                    f"{self.request.name()}: weval.assert_const failed: "
                    f"value is not a specialization-time constant")
            state.env[instr.result] = abs_args[0]
            return ctx, None
        if name == "specialized_value":
            if isinstance(abs_args[0], Const):
                state.env[instr.result] = abs_args[0]
                return ctx, None
            lo = self._require_const_int(abs_args[1],
                                         "specialized_value low bound")
            hi = self._require_const_int(abs_args[2],
                                         "specialized_value high bound")
            if hi < lo or hi - lo + 1 > self.options.max_value_specializations:
                raise SpecializeError(
                    f"{self.request.name()}: specialized_value range "
                    f"[{lo}, {hi}] invalid or too large")
            return ctx, (instr, lo, hi, abs_args[0])

        # --- state intrinsics (S4) ----------------------------------------
        if name == "read_reg":
            idx = self._require_const_int(abs_args[0], "register index")
            state.env[instr.result] = state.regs.get(idx, ZERO)
            stats.reg_reads += 1
            return ctx, None
        if name == "write_reg":
            idx = self._require_const_int(abs_args[0], "register index")
            state.regs[idx] = abs_args[1]
            stats.reg_writes += 1
            return ctx, None
        if name == "read_local":
            idx = self._require_const_int(abs_args[0], "local index")
            slot = state.locals.get(idx)
            if slot is not None:
                state.env[instr.result] = slot.value
                stats.local_loads_elided += 1
                return ctx, None
            addr = self._mat(block, const_cache, abs_args[1])
            vid = self._mint(I64)
            block.instrs.append(Instr("load64", vid, (addr,), 0, I64))
            loaded = Dyn(vid, I64)
            state.locals[idx] = LocalSlot(abs_args[1], loaded, False)
            state.env[instr.result] = loaded
            stats.local_loads_real += 1
            return ctx, None
        if name == "write_local":
            idx = self._require_const_int(abs_args[0], "local index")
            state.locals[idx] = LocalSlot(abs_args[1], abs_args[2], True)
            stats.local_stores_elided += 1
            return ctx, None
        if name == "flush":
            self._flush(block, state, const_cache)
            return ctx, None
        if name == "push":
            state.stack.append(StackSlot(abs_args[0], abs_args[1], True))
            stats.stack_stores_elided += 1
            return ctx, None
        if name == "pop":
            if state.stack:
                slot = state.stack.pop()
                state.env[instr.result] = slot.value
                stats.stack_loads_elided += 1
            else:
                addr = self._mat(block, const_cache, abs_args[0])
                vid = self._mint(I64)
                block.instrs.append(Instr("load64", vid, (addr,), 0, I64))
                state.env[instr.result] = Dyn(vid, I64)
                stats.stack_loads_real += 1
            return ctx, None
        if name == "read_stack":
            depth = self._require_const_int(abs_args[0], "stack depth")
            if depth < len(state.stack):
                state.env[instr.result] = state.stack[-1 - depth].value
                stats.stack_loads_elided += 1
            else:
                addr = self._mat(block, const_cache, abs_args[1])
                vid = self._mint(I64)
                block.instrs.append(Instr("load64", vid, (addr,), 0, I64))
                state.env[instr.result] = Dyn(vid, I64)
                stats.stack_loads_real += 1
            return ctx, None
        if name == "write_stack":
            depth = self._require_const_int(abs_args[0], "stack depth")
            if depth < len(state.stack):
                old = state.stack[-1 - depth]
                state.stack[-1 - depth] = StackSlot(old.addr, abs_args[2],
                                                    True)
                stats.stack_stores_elided += 1
            else:
                addr = self._mat(block, const_cache, abs_args[1])
                value = self._mat(block, const_cache, abs_args[2])
                block.instrs.append(Instr("store64", None, (addr, value), 0,
                                          None))
                stats.stack_stores_real += 1
            return ctx, None
        raise SpecializeError(f"unhandled intrinsic weval.{name}")

    def _flush(self, block: Block, state: FlowState, const_cache) -> None:
        """Write back all dirty locals and stack slots (S4.2)."""
        for idx in sorted(state.locals):
            slot = state.locals[idx]
            if slot.dirty:
                addr = self._mat(block, const_cache, slot.addr)
                value = self._mat(block, const_cache, slot.value)
                block.instrs.append(Instr("store64", None, (addr, value),
                                          0, None))
                state.locals[idx] = LocalSlot(slot.addr, slot.value, False)
                self.stats.local_stores_real += 1
        for pos, slot in enumerate(state.stack):
            if slot.dirty:
                addr = self._mat(block, const_cache, slot.addr)
                value = self._mat(block, const_cache, slot.value)
                block.instrs.append(Instr("store64", None, (addr, value),
                                          0, None))
                state.stack[pos] = StackSlot(slot.addr, slot.value, False)
                self.stats.stack_stores_real += 1

    # --- terminators ---------------------------------------------------------
    def _add_edge(self, info: _KeyInfo, position: int, ctx, gtarget: int,
                  overrides: Dict[int, AbsVal]) -> BlockCall:
        if ctx not in self._seen_contexts:
            if len(self._seen_contexts) >= self.options.max_contexts:
                ctx = (("c", ctx_mod.DYNAMIC),)
            self._seen_contexts.add(ctx)
        succ_key: Key = (ctx, gtarget)
        succ = self._get_or_create(succ_key)
        call = BlockCall(succ.spec_block.id, ())
        succ.in_edges[(info.key, position)] = overrides
        info.edges_out.append(_Edge(position, succ_key, overrides, call))
        self._enqueue(succ_key)
        return call

    def _branch_overrides(self, state: FlowState,
                          gcall: BlockCall) -> Dict[int, AbsVal]:
        """Map generic branch arguments onto the target block's params."""
        params = self.block_params[gcall.block]
        return {param: state.env[arg]
                for param, arg in zip(params, gcall.args)}

    def _transcribe_terminator(self, info: _KeyInfo, block: Block,
                               state: FlowState, const_cache, ctx,
                               gblock: Block) -> None:
        term = gblock.terminator
        if isinstance(term, Jump):
            call = self._add_edge(info, 0, ctx, term.target.block,
                                  self._branch_overrides(state, term.target))
            block.terminator = Jump(call)
            return
        if isinstance(term, BrIf):
            cond = state.env[term.cond]
            if isinstance(cond, Const):
                taken = term.if_true if cond.value != 0 else term.if_false
                call = self._add_edge(info, 0, ctx, taken.block,
                                      self._branch_overrides(state, taken))
                block.terminator = Jump(call)
                self.stats.branches_folded += 1
                return
            cond_vid = self._mat(block, const_cache, cond)
            tcall = self._add_edge(info, 0, ctx, term.if_true.block,
                                   self._branch_overrides(state,
                                                          term.if_true))
            fcall = self._add_edge(info, 1, ctx, term.if_false.block,
                                   self._branch_overrides(state,
                                                          term.if_false))
            block.terminator = BrIf(cond_vid, tcall, fcall)
            return
        if isinstance(term, BrTable):
            index = state.env[term.index]
            if isinstance(index, Const):
                i = index.value
                gcall = (term.cases[i] if 0 <= i < len(term.cases)
                         else term.default)
                call = self._add_edge(info, 0, ctx, gcall.block,
                                      self._branch_overrides(state, gcall))
                block.terminator = Jump(call)
                self.stats.branches_folded += 1
                return
            index_vid = self._mat(block, const_cache, index)
            cases = []
            for pos, gcall in enumerate(term.cases):
                cases.append(self._add_edge(
                    info, pos, ctx, gcall.block,
                    self._branch_overrides(state, gcall)))
            dcall = self._add_edge(info, len(term.cases), ctx,
                                   term.default.block,
                                   self._branch_overrides(state,
                                                          term.default))
            block.terminator = BrTable(index_vid, cases, dcall)
            return
        if isinstance(term, Ret):
            args = tuple(self._mat(block, const_cache, state.env[a])
                         for a in term.args)
            block.terminator = Ret(args)
            return
        if isinstance(term, Trap):
            block.terminator = Trap(term.message)
            return
        raise SpecializeError(f"block{gblock.id} has no terminator")

    def _emit_value_specialization(self, info: _KeyInfo, block: Block,
                                   state: FlowState, const_cache, ctx,
                                   gblock: Block, pending) -> None:
        """Lower a runtime-valued ``specialized_value`` ("The Trick")."""
        instr, lo, hi, value = pending
        term = gblock.terminator
        assert isinstance(term, Jump) and not term.target.args, \
            "preparation must isolate specialized_value before a plain jump"
        cont = term.target.block

        value_vid = self._mat(block, const_cache, value)
        lo_vid = self._mat(block, const_cache, intern_const(lo, I64))
        index_vid = self._mint(I64)
        block.instrs.append(Instr("isub", index_vid, (value_vid, lo_vid),
                                  None, I64))
        cases = []
        for i in range(hi - lo + 1):
            sub_ctx = ctx_mod.push_value(ctx, lo + i)
            overrides = {instr.result: intern_const((lo + i) & ((1 << 64) - 1), I64)}
            cases.append(self._add_edge(info, i, sub_ctx, cont, overrides))
        # Out-of-range values take a continuation specialized with no
        # knowledge of the value: semantics are preserved for any input.
        dyn_ctx = ctx_mod.push_value(ctx, "dyn")
        dcall = self._add_edge(info, hi - lo + 1, dyn_ctx, cont,
                               {instr.result: value})
        block.terminator = BrTable(index_vid, cases, dcall)

    # ------------------------------------------------------------------
    # Phase 2: fill in branch arguments and write-back fixups.
    # ------------------------------------------------------------------
    def _fill_edges(self) -> None:
        for info in self.infos.values():
            if not info.built or not info.edges_out:
                continue
            block = info.spec_block
            out = info.out_state
            const_cache: Dict[Tuple[object, Type], int] = {}
            flushed: Set[Tuple[str, int]] = set()
            for edge in info.edges_out:
                succ = self.infos[edge.succ_key]
                if succ.entry_state is None:
                    continue
                self._emit_edge_fixups(block, const_cache, out,
                                       succ.entry_state, flushed)
                args = []
                for slot in succ.param_slots:
                    value = binding_of(out, edge.overrides, slot)
                    if value is None:
                        raise SpecializeError(
                            f"{self.request.name()}: no value for slot "
                            f"{slot} on edge to {edge.succ_key} "
                            f"(internal error)")
                    args.append(self._mat(block, const_cache, value))
                edge.call.args = tuple(args)

    def _emit_edge_fixups(self, block: Block, const_cache, out: FlowState,
                          succ_entry: FlowState,
                          flushed: Set[Tuple[str, int]]) -> None:
        """Flush dirty cached state that the successor does not keep.

        Writing back early is always sound: the store writes the current
        (correct) value to the slot's canonical address.
        """
        for idx, slot in out.locals.items():
            if slot.dirty and idx not in succ_entry.locals \
                    and ("lcl", idx) not in flushed:
                addr = self._mat(block, const_cache, slot.addr)
                value = self._mat(block, const_cache, slot.value)
                self._insert_before_terminator(
                    block, Instr("store64", None, (addr, value), 0, None))
                flushed.add(("lcl", idx))
                self.stats.local_stores_real += 1
        keep = len(succ_entry.stack)
        for pos in range(keep, len(out.stack)):
            slot = out.stack[pos]
            if slot.dirty and ("stk", pos) not in flushed:
                addr = self._mat(block, const_cache, slot.addr)
                value = self._mat(block, const_cache, slot.value)
                self._insert_before_terminator(
                    block, Instr("store64", None, (addr, value), 0, None))
                flushed.add(("stk", pos))
                self.stats.stack_stores_real += 1

    @staticmethod
    def _insert_before_terminator(block: Block, instr: Instr) -> None:
        block.instrs.append(instr)


def specialize(module: Module, request: SpecializationRequest,
               options: Optional[SpecializeOptions] = None,
               memory: Optional[bytes] = None,
               stats: Optional[SpecializationStats] = None) -> Function:
    """Run the weval transform and return the specialized function.

    ``memory`` is the heap snapshot backing constant-memory reads
    (defaults to the module's initial memory image).  The returned
    function is *not* added to the module; see
    :class:`~repro.core.snapshot.SnapshotCompiler` for the integrated
    workflow.
    """
    options = options or SpecializeOptions()
    plan = getattr(request, "inline_plan", ())
    if plan:
        # Speculative inlining: specialize the plan-stripped request
        # first (the deterministic base residual the site ids were
        # enumerated against), splice the plan's callees behind
        # polymorphic guards, then re-run the mid-end — the win is that
        # optimization now crosses the former call boundary.
        import dataclasses as _dc
        from repro.ir.renumber import canonicalize_function
        from repro.opt.inline import InlineError, apply_inline_plan
        base_request = _dc.replace(request, inline_plan=())
        func = specialize(module, base_request, options, memory)
        spec_stats = func._weval_stats  # noqa: SLF001
        try:
            apply_inline_plan(func, module, plan, stats=spec_stats.opt)
        except InlineError as exc:
            raise SpecializeError(str(exc)) from exc
        func.name = request.name()
        if options.optimize:
            from repro.opt.pipeline import optimize_function
            optimize_function(func, max_rounds=options.opt_max_rounds,
                              config=options.opt_config, module=module,
                              stats=spec_stats.opt,
                              verify=options.verify_opt or None,
                              exhaustive=options.debug_exhaustive)
        canonicalize_function(func)
        if stats is not None:
            stats.merge(spec_stats)
        func._weval_stats = spec_stats  # noqa: SLF001
        return func
    spec = _Specializer(module, request, options, memory)
    func = spec.run()
    if options.optimize:
        from repro.opt.pipeline import optimize_function
        optimize_function(func, max_rounds=options.opt_max_rounds,
                          config=options.opt_config, module=module,
                          stats=spec.stats.opt,
                          verify=options.verify_opt or None,
                          exhaustive=options.debug_exhaustive)
    if stats is not None:
        stats.merge(spec.stats)
    func._weval_stats = spec.stats  # noqa: SLF001 - attached for reporting
    return func
