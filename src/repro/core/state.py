"""Flow-sensitive specialization state and its meet operator.

The state carried from specialized block to specialized block has four
components:

* ``env`` — the bindings of *generic* SSA values to abstract values
  (:class:`~repro.core.lattice.Const` or :class:`~repro.core.lattice.Dyn`)
  in the specialized function.  This is the specializer's value map
  (paper Fig. 5 ``valuemap``/``valuestate``), made flow-sensitive so that
  SSA validity of the output holds *by construction*: where predecessor
  bindings disagree at a join, a block parameter is created.  This plays
  the role of the paper's SSA-repair "minimal cut" (S3.4) — parameters
  appear only where contexts actually glue different subgraphs together.
  The ``naive`` mode instead turns every binding into a parameter at
  every join, reproducing the paper's ~5x block-parameter blow-up
  ablation.

* ``regs`` — the virtual register file (S4.1): a hidden, zero-initialized
  array held entirely in SSA values.

* ``locals`` — in-memory locals operating as a write-back cache (S4.2):
  each slot carries its canonical address, current value, and dirty flag.

* ``stack`` — the virtualized operand stack (S4.2): a list of slots above
  an unknown base, each with canonical address, value, and dirty flag.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.lattice import ZERO, AbsVal, Const, Dyn
from repro.ir.types import I64, Type

# A slot key identifies one potential block parameter of a specialized
# block.  Forms: ("env", gvid), ("reg", idx), ("lcl_val", idx),
# ("lcl_addr", idx), ("stk_val", pos), ("stk_addr", pos).
SlotKey = Tuple[str, int]


@dataclasses.dataclass(frozen=True)
class LocalSlot:
    addr: AbsVal
    value: AbsVal
    dirty: bool


@dataclasses.dataclass(frozen=True)
class StackSlot:
    addr: AbsVal
    value: AbsVal
    dirty: bool


class FlowState:
    """Mutable specialization state flowing through one specialized block."""

    __slots__ = ("env", "regs", "locals", "stack")

    def __init__(self):
        self.env: Dict[int, AbsVal] = {}
        self.regs: Dict[int, AbsVal] = {}
        self.locals: Dict[int, LocalSlot] = {}
        self.stack: List[StackSlot] = []

    def copy(self) -> "FlowState":
        other = FlowState()
        other.env = dict(self.env)
        other.regs = dict(self.regs)
        other.locals = dict(self.locals)
        other.stack = list(self.stack)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowState env={len(self.env)} regs={len(self.regs)} "
                f"locals={len(self.locals)} stack={len(self.stack)}>")


def _abs_equal(a: Optional[AbsVal], b: Optional[AbsVal]) -> bool:
    # Interned abstract values (repro.core.lattice) make the identity
    # check the common case; == is the structural fallback.
    return a is b or a == b


def states_equal(a: FlowState, b: FlowState) -> bool:
    """Cheap whole-state equality for fixpoint change detection.

    Dict/list comparison short-circuits on per-element identity, so with
    interned lattice values and the specializer's stable value minting
    this is close to a pointer walk.
    """
    return (a.env == b.env and a.regs == b.regs
            and a.locals == b.locals and a.stack == b.stack)


def states_equal_observable(old: FlowState, new: FlowState,
                            env_domain: Set[int]) -> bool:
    """Equality of the parts of an out-state that successors can see.

    A block's transcription state carries *every* generic binding it
    flowed through, but a successor's meet reads only the bindings in
    its own entry domain (its live-ins, a subset of this block's
    live-outs) plus the branch arguments (compared separately as edge
    overrides) — while regs, locals, and the operand stack are observed
    in full.  Comparing only the observable projection is what lets a
    rebuild whose entry state changed in successor-invisible ways keep
    its ``out_version``, so downstream meets are skipped.
    """
    if old.regs != new.regs or old.locals != new.locals \
            or old.stack != new.stack:
        return False
    old_get, new_get = old.env.get, new.env.get
    for key in env_domain:
        if not _abs_equal(old_get(key), new_get(key)):
            return False
    return True


def binding_of(state: FlowState, overrides: Dict[int, AbsVal],
               slot: SlotKey) -> Optional[AbsVal]:
    """Look up a slot's value in a predecessor's out-state (with the
    per-edge env overrides applied).  Returns None if absent."""
    kind, index = slot
    if kind == "env":
        if index in overrides:
            return overrides[index]
        return state.env.get(index)
    if kind == "reg":
        return state.regs.get(index, ZERO)
    if kind == "lcl_val":
        slot_obj = state.locals.get(index)
        return slot_obj.value if slot_obj else None
    if kind == "lcl_addr":
        slot_obj = state.locals.get(index)
        return slot_obj.addr if slot_obj else None
    if kind == "stk_val":
        if index < len(state.stack):
            return state.stack[index].value
        return None
    if kind == "stk_addr":
        if index < len(state.stack):
            return state.stack[index].addr
        return None
    raise KeyError(f"bad slot key {slot!r}")


class MeetResult:
    """Outcome of meeting predecessor states into a block entry state."""

    def __init__(self, state: FlowState, param_slots: List[SlotKey]):
        self.state = state
        self.param_slots = param_slots


def unstable_slots(old: FlowState, new: FlowState) -> Set[SlotKey]:
    """Slots whose abstract value differs between two entry states.

    Used by the convergence damper: slots that keep changing across
    revisits (typically because a predecessor block re-emits its
    instructions with fresh SSA ids on every rebuild) are pinned to
    stable block parameters; slots with genuinely stable values —
    constants like the interpreter pc — are left alone.
    """
    changed: Set[SlotKey] = set()
    for key in set(old.env) | set(new.env):
        if old.env.get(key) != new.env.get(key):
            changed.add(("env", key))
    for key in set(old.regs) | set(new.regs):
        if old.regs.get(key) != new.regs.get(key):
            changed.add(("reg", key))
    for key in set(old.locals) | set(new.locals):
        old_slot = old.locals.get(key)
        new_slot = new.locals.get(key)
        if old_slot is None or new_slot is None:
            continue  # structural add/drop is monotone already
        if old_slot.addr != new_slot.addr:
            changed.add(("lcl_addr", key))
        if old_slot.value != new_slot.value:
            changed.add(("lcl_val", key))
    for pos in range(min(len(old.stack), len(new.stack))):
        if old.stack[pos].addr != new.stack[pos].addr:
            changed.add(("stk_addr", pos))
        if old.stack[pos].value != new.stack[pos].value:
            changed.add(("stk_val", pos))
    return changed


def single_pred_entry_state(state: FlowState,
                            overrides: Dict[int, AbsVal],
                            env_domain: Set[int]) -> MeetResult:
    """Entry state when exactly one predecessor contributes.

    With a single contributor and no forced parameters, every slot of
    :func:`meet_states` trivially keeps the predecessor's value, so the
    slot-by-slot meet machinery (``binding_of`` per slot, ``meet_slot``
    closure calls) collapses to reusing the predecessor's out-state
    components directly: the env is restricted to the entry domain with
    the edge overrides applied, and regs/locals/stack are shallow
    copies sharing the predecessor's (immutable) slot objects.  The
    result is value-identical to the full meet — asserted byte-for-byte
    by the fixpoint determinism tier — at a fraction of the cost, which
    matters because reducible interpreter CFGs make one-predecessor
    blocks the overwhelmingly common case.

    Callers must not take this path when parameters could be forced
    (``naive`` SSA mode, pinned slots, ``force_all_params``).
    """
    result = FlowState()
    env = state.env
    renv = result.env
    for gvid in env_domain:
        if gvid in overrides:
            renv[gvid] = overrides[gvid]
        else:
            value = env.get(gvid)
            if value is not None:
                renv[gvid] = value
    result.regs = dict(state.regs)
    result.locals = dict(state.locals)
    result.stack = list(state.stack)
    return MeetResult(result, [])


def meet_states(
    contributions: Sequence[Tuple[FlowState, Dict[int, AbsVal]]],
    env_domain: Set[int],
    value_type: Callable[[int], Type],
    param_for: Callable[[SlotKey, Type], int],
    naive: bool = False,
    force_all_params: bool = False,
    pinned_slots: Optional[Set[SlotKey]] = None,
) -> MeetResult:
    """Meet predecessor (out-state, env-overrides) pairs into an entry
    state for a specialized block.

    ``env_domain`` is the set of generic value ids that must be bound at
    entry (live-in plus the generic block's parameters).  ``param_for``
    allocates (or retrieves, stably) the block-parameter value id for a
    slot.  ``naive=True`` parameterizes every slot (the paper's S3.4
    max-SSA ablation); ``force_all_params`` has the same effect and is
    the last-resort convergence safeguard.  ``pinned_slots`` forces
    specific slots to parameters — the fine-grained safeguard used to
    damp SSA-id churn in cyclic regions without losing constants that
    are actually stable.
    """
    make_params = naive or force_all_params
    pinned_slots = pinned_slots or set()
    result = FlowState()
    param_slots: List[SlotKey] = []

    def meet_slot(slot: SlotKey, ty: Type,
                  values: List[Optional[AbsVal]]) -> Optional[AbsVal]:
        """Meet one slot: same everywhere -> keep; else block param.
        None anywhere -> slot is unavailable (caller decides)."""
        if any(v is None for v in values):
            return None
        first = values[0]
        if (not make_params and slot not in pinned_slots
                and all(_abs_equal(v, first) for v in values[1:])):
            return first
        vid = param_for(slot, ty)
        param_slots.append(slot)
        return Dyn(vid, ty)

    # --- env ------------------------------------------------------------
    for gvid in sorted(env_domain):
        slot = ("env", gvid)
        values = [binding_of(s, o, slot) for s, o in contributions]
        ty = value_type(gvid)
        met = meet_slot(slot, ty, values)
        if met is not None:
            result.env[gvid] = met
        # A missing binding can only come from a stale edge; leaving the
        # slot out makes any genuine use fail loudly during transcription.

    # --- virtual registers ----------------------------------------------
    reg_keys: Set[int] = set()
    for state, _ in contributions:
        reg_keys.update(state.regs)
    for idx in sorted(reg_keys):
        slot = ("reg", idx)
        values = [binding_of(s, o, slot) for s, o in contributions]
        met = meet_slot(slot, I64, values)
        assert met is not None  # regs default to Const(0), never None
        result.regs[idx] = met

    # --- locals (write-back cache) ----------------------------------------
    local_keys = None
    for state, _ in contributions:
        keys = set(state.locals)
        local_keys = keys if local_keys is None else (local_keys & keys)
    for idx in sorted(local_keys or ()):
        addr_values = [binding_of(s, o, ("lcl_addr", idx))
                       for s, o in contributions]
        val_values = [binding_of(s, o, ("lcl_val", idx))
                      for s, o in contributions]
        addr = meet_slot(("lcl_addr", idx), I64, addr_values)
        value = meet_slot(("lcl_val", idx), I64, val_values)
        if addr is None or value is None:
            continue
        dirty = any(s.locals[idx].dirty for s, _ in contributions)
        result.locals[idx] = LocalSlot(addr, value, dirty)

    # --- operand stack -----------------------------------------------------
    depths = {len(s.stack) for s, _ in contributions}
    if len(depths) == 1:
        depth = depths.pop()
        for pos in range(depth):
            addr = meet_slot(("stk_addr", pos), I64,
                             [binding_of(s, o, ("stk_addr", pos))
                              for s, o in contributions])
            value = meet_slot(("stk_val", pos), I64,
                              [binding_of(s, o, ("stk_val", pos))
                               for s, o in contributions])
            if addr is None or value is None:
                # Truncate at the first incoherent position: everything
                # above it is dropped too (flushed at the edges).
                break
            dirty = any(s.stack[pos].dirty for s, _ in contributions)
            result.stack.append(StackSlot(addr, value, dirty))
    # Mismatched depths: abstract stack is dropped entirely; phase 2
    # flushes each predecessor's dirty slots on its edge.

    return MeetResult(result, param_slots)
