"""Statistics collected while specializing (S6.2, S6.4, S6.5).

All counters are *static* (counts of instruction sites in generated code)
except where a benchmark combines them with the VM's dynamic counters.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class SpecializationStats:
    """Counters for one specialization (or a sum over many)."""

    # State-intrinsic effectiveness (S6.2).
    stack_loads_elided: int = 0
    stack_loads_real: int = 0
    stack_stores_elided: int = 0
    stack_stores_real: int = 0
    local_loads_elided: int = 0
    local_loads_real: int = 0
    local_stores_elided: int = 0
    local_stores_real: int = 0
    reg_reads: int = 0
    reg_writes: int = 0
    # Transform work.
    blocks_specialized: int = 0
    block_revisits: int = 0
    contexts_created: int = 0
    instrs_folded: int = 0
    loads_folded_from_const_memory: int = 0
    branches_folded: int = 0
    dynamic_context_updates: int = 0  # update_context seen with runtime arg
    # Output shape.
    output_blocks: int = 0
    output_instrs: int = 0
    output_block_params: int = 0
    wallclock_seconds: float = 0.0

    def merge(self, other: "SpecializationStats") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))

    # Convenience ratios for the S6.2-style report.
    def stack_load_elision_rate(self) -> float:
        total = self.stack_loads_elided + self.stack_loads_real
        return self.stack_loads_elided / total if total else 0.0

    def stack_store_elision_rate(self) -> float:
        total = self.stack_stores_elided + self.stack_stores_real
        return self.stack_stores_elided / total if total else 0.0

    def local_load_elision_rate(self) -> float:
        total = self.local_loads_elided + self.local_loads_real
        return self.local_loads_elided / total if total else 0.0

    def local_store_elision_rate(self) -> float:
        total = self.local_stores_elided + self.local_stores_real
        return self.local_stores_elided / total if total else 0.0
