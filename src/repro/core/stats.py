"""Statistics collected while specializing (S6.2, S6.4, S6.5).

All counters are *static* (counts of instruction sites in generated code)
except where a benchmark combines them with the VM's dynamic counters.
:class:`PassStats` / :class:`PipelineStats` account for the
post-specialization mid-end (``repro.opt``): per-pass change and timing
counters fed by the pass manager.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass
class PassStats:
    """Counters for one named optimization pass (or a sum over runs).

    ``runs`` counts actual pass *executions*; ``skips`` counts rounds
    where the dirty-set scheduler proved the pass had no work and did
    not run it."""

    runs: int = 0
    changes: int = 0
    skips: int = 0
    seconds: float = 0.0

    def merge(self, other: "PassStats") -> None:
        self.runs += other.runs
        self.changes += other.changes
        self.skips += other.skips
        self.seconds += other.seconds


@dataclasses.dataclass
class PipelineStats:
    """Counters for pass-pipeline executions (one or a sum over many).

    ``fixpoint_cap_hits`` counts pipeline runs that exhausted
    ``max_rounds`` while passes were still reporting changes — i.e. the
    fixpoint was *not* reached and residual redundancy may remain.
    """

    runs: int = 0
    rounds: int = 0
    fixpoint_cap_hits: int = 0
    passes_skipped: int = 0          # scheduler no-op skips (both levels)
    passes_skipped_nowork: int = 0   # ... of which by a work detector
    workcheck_seconds: float = 0.0   # time spent inside work detectors
    instrs_before: int = 0
    instrs_after: int = 0
    blocks_before: int = 0
    blocks_after: int = 0
    seconds: float = 0.0
    # Speculative inlining decisions (repro.opt.inline).
    inline_attempted: int = 0        # plan sites considered
    inline_committed: int = 0        # sites actually spliced
    inline_rejected_size: int = 0    # targets over the hard size cap
    per_pass: Dict[str, PassStats] = dataclasses.field(default_factory=dict)

    def pass_stats(self, name: str) -> PassStats:
        stats = self.per_pass.get(name)
        if stats is None:
            stats = self.per_pass[name] = PassStats()
        return stats

    def instrs_removed(self) -> int:
        return self.instrs_before - self.instrs_after

    def merge(self, other: "PipelineStats") -> None:
        for field in dataclasses.fields(self):
            if field.name == "per_pass":
                continue
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        for name, stats in other.per_pass.items():
            self.pass_stats(name).merge(stats)


@dataclasses.dataclass
class EngineStats:
    """Counters for :class:`~repro.pipeline.engine.CompilationEngine`
    batches (one batch or a sum over many).

    ``functions_specialized`` counts *fresh* weval runs only — the
    warm-start proof for the artifact store is exactly this counter
    staying at zero on a second run over the same module and requests.
    """

    requests: int = 0
    functions_specialized: int = 0   # fresh weval transforms
    cache_hits: int = 0              # in-memory SpecializationCache hits
    artifact_hits: int = 0           # residual IR loaded from disk
    artifact_invalid: int = 0        # version skew / fp mismatch / corrupt
    artifacts_written: int = 0
    backend_emitted: int = 0         # fresh PyEmitter runs
    backend_source_hits: int = 0     # emitted source loaded from disk
    backend_code_hits: int = 0       # ... of which with a usable code
                                     # object (no re-parse/compile)
    backend_fallbacks: int = 0
    inline_requests: int = 0         # requests carrying an inline plan
    specialize_seconds: float = 0.0  # summed across workers (CPU-ish)
    emit_seconds: float = 0.0        # summed across workers
    wall_seconds: float = 0.0        # batch wall clock
    jobs: int = 0                    # max worker count used so far
    # Fault containment (PR 9): per-request failures and degradations.
    requests_failed: int = 0         # results returned with .error set
    pool_rebuilds: int = 0           # broken process pool, rebuilt once
    pool_degradations: int = 0       # ... broken again: threads for good
    store_write_failures: int = 0    # artifact-store writes that failed
    store_degraded: int = 0          # 1 while the store is memory-only

    def merge(self, other: "EngineStats") -> None:
        for field in dataclasses.fields(self):
            if field.name == "jobs":
                self.jobs = max(self.jobs, other.jobs)
                continue
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))


@dataclasses.dataclass
class TieringStats:
    """Counters for :class:`~repro.pipeline.tiering.TieringController`.

    ``tier0_calls`` counts calls that actually executed on the generic
    interpreter — hook-observed calls that were redirected to an
    installed specialization (or promoted at that boundary) are not
    tier-0 executions.  ``deopts`` counts guard failures
    unwound at a call boundary; ``demotions`` counts speculative
    residuals retired because of one (at most one per function — the
    respecialized replacement carries no guards).
    """

    tier0_calls: int = 0
    promotions: int = 0              # functions promoted off tier 0
    speculative_promotions: int = 0  # ... of which carry entry guards
    tier2_installs: int = 0          # backend callables installed
    deopts: int = 0
    demotions: int = 0
    promote_seconds: float = 0.0     # wall clock spent inside promotions
    # Speculative inlining (PR 8): per-call-site speculation lifecycle.
    inline_sites_planned: int = 0    # sites placed into an inline plan
    inline_candidates_rejected: int = 0  # hot sites rejected (size/poly)
    site_misses: int = 0             # resuming-guard misses observed
    site_demotions: int = 0          # sites retired after a miss/deopt
    # Fault containment (PR 9): quarantine / blacklist / storm breaker.
    compile_failures: int = 0        # contained promotion exceptions
    quarantines: int = 0             # functions put into backoff
    quarantine_retries: int = 0      # promotion retried after backoff
    quarantine_recoveries: int = 0   # ... and the retry succeeded
    blacklists: int = 0              # functions pinned tier-0 for good
    storm_pins: int = 0              # functions pinned generic by the
                                     # deopt-storm breaker

    def merge(self, other: "TieringStats") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))


@dataclasses.dataclass
class SpecializationStats:
    """Counters for one specialization (or a sum over many)."""

    # State-intrinsic effectiveness (S6.2).
    stack_loads_elided: int = 0
    stack_loads_real: int = 0
    stack_stores_elided: int = 0
    stack_stores_real: int = 0
    local_loads_elided: int = 0
    local_loads_real: int = 0
    local_stores_elided: int = 0
    local_stores_real: int = 0
    reg_reads: int = 0
    reg_writes: int = 0
    # Transform work.
    blocks_specialized: int = 0
    block_revisits: int = 0
    block_visits: int = 0            # worklist pops (incl. skipped meets)
    meets_performed: int = 0
    meets_skipped: int = 0           # inputs unchanged: meet elided
    meets_single_pred: int = 0       # sole-contributor fast-path meets
    intern_hits: int = 0             # lattice-constant hash-cons hits
    intern_misses: int = 0
    contexts_created: int = 0
    instrs_folded: int = 0
    loads_folded_from_const_memory: int = 0
    branches_folded: int = 0
    dynamic_context_updates: int = 0  # update_context seen with runtime arg
    # Output shape.
    output_blocks: int = 0
    output_instrs: int = 0
    output_block_params: int = 0
    wallclock_seconds: float = 0.0
    # Post-specialization mid-end accounting (filled by the pass manager).
    opt: PipelineStats = dataclasses.field(default_factory=PipelineStats)

    def merge(self, other: "SpecializationStats") -> None:
        for field in dataclasses.fields(self):
            mine = getattr(self, field.name)
            if hasattr(mine, "merge"):
                mine.merge(getattr(other, field.name))
            else:
                setattr(self, field.name,
                        mine + getattr(other, field.name))

    # Convenience ratios for the S6.2/S6.5-style reports.
    def intern_hit_rate(self) -> float:
        total = self.intern_hits + self.intern_misses
        return self.intern_hits / total if total else 0.0

    def revisit_rate(self) -> float:
        """Re-flows per worklist visit — the S6.5 transform-speed waste
        metric (0 means every block was built exactly once)."""
        return (self.block_revisits / self.block_visits
                if self.block_visits else 0.0)

    def stack_load_elision_rate(self) -> float:
        total = self.stack_loads_elided + self.stack_loads_real
        return self.stack_loads_elided / total if total else 0.0

    def stack_store_elision_rate(self) -> float:
        total = self.stack_stores_elided + self.stack_stores_real
        return self.stack_stores_elided / total if total else 0.0

    def local_load_elision_rate(self) -> float:
        total = self.local_loads_elided + self.local_loads_real
        return self.local_loads_elided / total if total else 0.0

    def local_store_elision_rate(self) -> float:
        total = self.local_stores_elided + self.local_stores_real
        return self.local_stores_elided / total if total else 0.0
