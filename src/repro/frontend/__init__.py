"""mini-C: a small systems language compiled to :mod:`repro.ir`.

The paper applies weval to interpreters written in C/C++ and compiled to
WebAssembly.  Our stand-in is mini-C: a C-flavoured language with
``u64``/``f64`` scalars, local arrays on a shadow stack, explicit memory
builtins (``load64``/``store64``/...), ``extern`` host functions,
structured control flow including ``switch``, and the full set of
``weval_*`` intrinsics.  Interpreter listings in this repository look
essentially like the paper's Fig. 1 and Fig. 9.

Public API::

    program = compile_source(source_text)
    program.add_to_module(module)     # adds functions + imports + globals
"""

from repro.frontend.errors import CompileError
from repro.frontend.compiler import CompiledProgram, compile_source

__all__ = ["CompileError", "CompiledProgram", "compile_source"]
