"""AST node definitions for mini-C.

All nodes carry a source position for diagnostics.  Types are the strings
``"u64"``, ``"f64"``, and ``"void"`` (function results only).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple


@dataclasses.dataclass
class Node:
    line: int
    col: int


# ---------------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class IntLit(Node):
    value: int


@dataclasses.dataclass
class FloatLit(Node):
    value: float


@dataclasses.dataclass
class VarRef(Node):
    name: str


@dataclasses.dataclass
class Unary(Node):
    op: str            # "-", "!", "~"
    operand: "Expr"


@dataclasses.dataclass
class Binary(Node):
    op: str            # arithmetic / comparison / bitwise / "&&" / "||"
    left: "Expr"
    right: "Expr"


@dataclasses.dataclass
class Ternary(Node):
    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"


@dataclasses.dataclass
class Call(Node):
    callee: str
    args: List["Expr"]


@dataclasses.dataclass
class Index(Node):
    """``base[index]``: 8-byte-scaled load from memory.  The element type
    is ``f64`` when ``base`` names a local ``f64`` array, else ``u64``."""

    base: "Expr"
    index: "Expr"


Expr = Node  # informal union; every expression subclasses Node


# ---------------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class DeclStmt(Node):
    type: str          # "u64" | "f64"
    name: str
    init: Optional[Expr]
    array_size: Optional[int] = None  # local array on the shadow stack


@dataclasses.dataclass
class AssignStmt(Node):
    name: str
    op: str            # "=", "+=", "-=", ...
    value: Expr


@dataclasses.dataclass
class IncDecStmt(Node):
    name: str
    op: str            # "++" | "--"


@dataclasses.dataclass
class StoreStmt(Node):
    """``base[index] = value;``"""

    base: Expr
    index: Expr
    op: str            # "=", "+=", ...
    value: Expr


@dataclasses.dataclass
class ExprStmt(Node):
    expr: Expr         # call for effect


@dataclasses.dataclass
class BlockStmt(Node):
    """A bare ``{ ... }`` compound statement (its own scope)."""

    body: List["Stmt"]


@dataclasses.dataclass
class IfStmt(Node):
    cond: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"]


@dataclasses.dataclass
class WhileStmt(Node):
    cond: Expr
    body: List["Stmt"]


@dataclasses.dataclass
class ForStmt(Node):
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: List["Stmt"]


@dataclasses.dataclass
class BreakStmt(Node):
    pass


@dataclasses.dataclass
class ContinueStmt(Node):
    pass


@dataclasses.dataclass
class ReturnStmt(Node):
    value: Optional[Expr]


@dataclasses.dataclass
class SwitchCase:
    values: List[int]          # one or more ``case N:`` labels
    is_default: bool
    body: List["Stmt"]


@dataclasses.dataclass
class SwitchStmt(Node):
    selector: Expr
    cases: List[SwitchCase]


Stmt = Node


# ---------------------------------------------------------------------------
# Top level.
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class FuncDef(Node):
    name: str
    result: str                       # "u64" | "f64" | "void"
    params: List[Tuple[str, str]]     # (type, name)
    body: List[Stmt]


@dataclasses.dataclass
class ExternDecl(Node):
    name: str
    result: str
    params: List[Tuple[str, str]]


@dataclasses.dataclass
class Program:
    functions: List[FuncDef]
    externs: List[ExternDecl]
