"""Lowering of mini-C ASTs to SSA IR.

SSA construction follows Braun et al. (CC 2013): variables are resolved
to SSA values on the fly, with block parameters created lazily at join
points and in unsealed (loop header) blocks.  Redundant block parameters
are left for the optimizer's param-pruning pass.

Local arrays live on a *shadow stack*: a module global ``__sp`` holds the
stack pointer (growing downward); functions that declare arrays carve a
frame in their prologue and restore ``__sp`` at every return.
"""

from __future__ import annotations

import dataclasses
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.intrinsics import INTRINSICS, register_weval_imports
from repro.frontend import ast_nodes as ast
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_source
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Block, Function, Signature
from repro.ir.instructions import BlockCall, BrIf, BrTable, Jump, Ret, Trap, wrap_i64
from repro.ir.module import HostFunc, Module
from repro.ir.types import F64, I64, Type

SHADOW_SP = "__sp"

_TYPE_MAP = {"u64": I64, "f64": F64}

# Builtins that lower 1:1 to IR opcodes: name -> (opcode, arg types, result).
_MEMORY_BUILTINS = {
    "load64": ("load64", (I64,), I64),
    "load32u": ("load32_u", (I64,), I64),
    "load32s": ("load32_s", (I64,), I64),
    "load16u": ("load16_u", (I64,), I64),
    "load16s": ("load16_s", (I64,), I64),
    "load8u": ("load8_u", (I64,), I64),
    "load8s": ("load8_s", (I64,), I64),
    "loadf64": ("loadf64", (I64,), F64),
    "store64": ("store64", (I64, I64), None),
    "store32": ("store32", (I64, I64), None),
    "store16": ("store16", (I64, I64), None),
    "store8": ("store8", (I64, I64), None),
    "storef64": ("storef64", (I64, F64), None),
    "itof": ("itof", (I64,), F64),
    "ftoi": ("ftoi", (F64,), I64),
    "fbits": ("bits_ftoi", (F64,), I64),
    "ffrombits": ("bits_itof", (I64,), F64),
    "fsqrt": ("fsqrt", (F64,), F64),
    "ffloor": ("ffloor", (F64,), F64),
    "fabs": ("fabs", (F64,), F64),
}

# Signed-integer builtins (u64 defaults to C-unsigned semantics).
_SIGNED_BUILTINS = {
    "sdiv": "idiv_s",
    "srem": "irem_s",
    "slt": "ilt_s",
    "sle": "ile_s",
    "sgt": "igt_s",
    "sge": "ige_s",
    "sshr": "ishr_s",
}

_INT_BINOPS = {
    "+": "iadd", "-": "isub", "*": "imul", "/": "idiv_u", "%": "irem_u",
    "&": "iand", "|": "ior", "^": "ixor", "<<": "ishl", ">>": "ishr_u",
    "==": "ieq", "!=": "ine", "<": "ilt_u", "<=": "ile_u",
    ">": "igt_u", ">=": "ige_u",
}
_FLOAT_BINOPS = {
    "+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
    "==": "feq", "!=": "fne", "<": "flt", "<=": "fle",
    ">": "fgt", ">=": "fge",
}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


@dataclasses.dataclass
class VarInfo:
    """One declared variable (unique per declaration, scopes may shadow)."""

    uid: int
    name: str
    ty: Type
    is_array: bool = False
    elem_ty: Optional[Type] = None


@dataclasses.dataclass
class CompiledProgram:
    """The output of :func:`compile_source`."""

    functions: Dict[str, Function]
    externs: Dict[str, Signature]
    weval_imports: List[str]
    uses_shadow_stack: bool
    source: str

    def add_to_module(self, module: Module,
                      externs: Optional[Dict[str, object]] = None) -> None:
        """Add compiled functions to ``module``.

        ``externs`` maps extern names to host callables; every extern the
        program declares must either be provided here or already exist on
        the module.  weval intrinsic imports are registered automatically.
        """
        externs = externs or {}
        register_weval_imports(module)
        if self.uses_shadow_stack and SHADOW_SP not in module.globals:
            module.add_global(SHADOW_SP, module.memory_size)
        for name, sig in self.externs.items():
            if module.has_function(name):
                continue
            if name not in externs:
                raise CompileError(
                    f"extern {name!r} not provided and not in module")
            module.add_import(HostFunc(name, sig, externs[name]))
        for func in self.functions.values():
            module.add_function(func)


class _FuncLowerer:
    """Lowers one mini-C function to an SSA :class:`Function`."""

    def __init__(self, program_ctx: "_ProgramContext", node: ast.FuncDef):
        self.ctx = program_ctx
        self.node = node
        params = tuple(_TYPE_MAP[t] for t, _ in node.params)
        results = (() if node.result == "void"
                   else (_TYPE_MAP[node.result],))
        self.fb = FunctionBuilder(node.name, Signature(params, results))
        self.func = self.fb.func

        # Braun SSA state.
        self.current_def: Dict[int, Dict[int, int]] = {}
        self.sealed: set = set()
        self.incomplete: Dict[int, List[Tuple[VarInfo, int]]] = {}
        self.preds: Dict[int, List[int]] = {self.fb.entry.id: []}
        self.edges: Dict[Tuple[int, int], List[BlockCall]] = {}

        # Scoping.
        self.scopes: List[Dict[str, VarInfo]] = [{}]
        self._var_uid = 0

        # Loop / switch targets: list of (break_block, continue_block|None).
        self.break_targets: List[Block] = []
        self.continue_targets: List[Block] = []

        # Shadow stack.
        self.array_offsets: Dict[int, int] = {}  # id(DeclStmt) -> offset
        self.frame_size = 0
        self.saved_sp: Optional[int] = None

        self.sealed.add(self.fb.entry.id)

    # ------------------------------------------------------------------
    # Scope / variable helpers.
    # ------------------------------------------------------------------
    def declare(self, name: str, ty: Type, node: ast.Node,
                is_array: bool = False,
                elem_ty: Optional[Type] = None) -> VarInfo:
        scope = self.scopes[-1]
        if name in scope:
            raise CompileError(f"redeclaration of {name!r}",
                               node.line, node.col)
        self._var_uid += 1
        var = VarInfo(self._var_uid, name, ty, is_array, elem_ty)
        scope[name] = var
        self.current_def[var.uid] = {}
        return var

    def lookup(self, name: str, node: ast.Node) -> VarInfo:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise CompileError(f"use of undeclared variable {name!r}",
                           node.line, node.col)

    # ------------------------------------------------------------------
    # Braun SSA construction.
    # ------------------------------------------------------------------
    def write_variable(self, var: VarInfo, block_id: int, value: int) -> None:
        self.current_def[var.uid][block_id] = value

    def read_variable(self, var: VarInfo, block_id: int) -> int:
        defs = self.current_def[var.uid]
        if block_id in defs:
            return defs[block_id]
        return self._read_recursive(var, block_id)

    def _read_recursive(self, var: VarInfo, block_id: int) -> int:
        block = self.func.blocks[block_id]
        if block_id not in self.sealed:
            param = self.func.add_block_param(block, var.ty)
            self.incomplete.setdefault(block_id, []).append((var, param))
            value = param
        else:
            preds = self.preds.get(block_id, [])
            if len(preds) == 1:
                value = self.read_variable(var, preds[0])
            elif not preds:
                raise CompileError(
                    f"variable {var.name!r} may be used before definition",
                    self.node.line, self.node.col)
            else:
                param = self.func.add_block_param(block, var.ty)
                self.write_variable(var, block_id, param)
                self._add_param_args(var, block_id)
                value = param
        self.write_variable(var, block_id, value)
        return value

    def _add_param_args(self, var: VarInfo, block_id: int) -> None:
        for pred in self.preds[block_id]:
            value = self.read_variable(var, pred)
            for call in self.edges[(pred, block_id)]:
                call.args = call.args + (value,)

    def seal_block(self, block: Block) -> None:
        if block.id in self.sealed:
            return
        # Mark sealed *before* filling in the pending parameters: recursive
        # reads triggered while filling must not enqueue new incomplete
        # params on this block (they would be lost).
        self.sealed.add(block.id)
        for var, _param in self.incomplete.pop(block.id, []):
            self._add_param_args(var, block.id)

    # ------------------------------------------------------------------
    # CFG helpers (terminators that record predecessor edges).
    # ------------------------------------------------------------------
    def new_block(self) -> Block:
        block = self.fb.new_block()
        self.preds[block.id] = []
        return block

    def _record_edge(self, src: Block, call: BlockCall) -> None:
        self.preds.setdefault(call.block, []).append(src.id)
        self.edges.setdefault((src.id, call.block), []).append(call)

    def terminate_jump(self, target: Block) -> None:
        src = self.fb.current
        call = BlockCall(target.id, ())
        src.terminator = Jump(call)
        self._record_edge(src, call)

    def terminate_br_if(self, cond: int, if_true: Block,
                        if_false: Block) -> None:
        src = self.fb.current
        tcall = BlockCall(if_true.id, ())
        fcall = BlockCall(if_false.id, ())
        src.terminator = BrIf(cond, tcall, fcall)
        self._record_edge(src, tcall)
        self._record_edge(src, fcall)

    def terminate_br_table(self, index: int, cases: List[Block],
                           default: Block) -> None:
        src = self.fb.current
        case_calls = [BlockCall(b.id, ()) for b in cases]
        dcall = BlockCall(default.id, ())
        src.terminator = BrTable(index, case_calls, dcall)
        for call in case_calls:
            self._record_edge(src, call)
        self._record_edge(src, dcall)

    def terminate_return(self, value: Optional[int]) -> None:
        if self.frame_size and self.saved_sp is not None:
            self.fb.global_set(SHADOW_SP, self.saved_sp)
        self.fb.current.terminator = Ret(
            (value,) if value is not None else ())

    # ------------------------------------------------------------------
    # Top-level lowering.
    # ------------------------------------------------------------------
    def lower(self) -> Function:
        # Bind parameters as variables.
        for (ty_name, name), (value, _ty) in zip(self.node.params,
                                                 self.fb.entry.params):
            var = self.declare(name, _TYPE_MAP[ty_name], self.node)
            self.write_variable(var, self.fb.entry.id, value)

        # Pre-scan for arrays to size the frame.
        self._scan_arrays(self.node.body)
        if self.frame_size:
            old_sp = self.fb.global_get(SHADOW_SP)
            size = self.fb.iconst(self.frame_size)
            new_sp = self.fb.emit("isub", (old_sp, size))
            self.fb.global_set(SHADOW_SP, new_sp)
            self.saved_sp = old_sp
            self._frame_base = new_sp

        completed = self.lower_stmts(self.node.body)
        if completed:
            if self.node.result == "void":
                self.terminate_return(None)
            else:
                raise CompileError(
                    f"control reaches end of non-void function "
                    f"{self.node.name!r}", self.node.line, self.node.col)
        return self.func

    def _scan_arrays(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.DeclStmt) and stmt.array_size is not None:
                self.array_offsets[id(stmt)] = self.frame_size
                self.frame_size += stmt.array_size * 8
            elif isinstance(stmt, ast.IfStmt):
                self._scan_arrays(stmt.then_body)
                self._scan_arrays(stmt.else_body)
            elif isinstance(stmt, ast.WhileStmt):
                self._scan_arrays(stmt.body)
            elif isinstance(stmt, ast.ForStmt):
                if stmt.init is not None:
                    self._scan_arrays([stmt.init])
                self._scan_arrays(stmt.body)
            elif isinstance(stmt, ast.SwitchStmt):
                for case in stmt.cases:
                    self._scan_arrays(case.body)

    # ------------------------------------------------------------------
    # Statements.  Each lowering returns True if control can fall through.
    # ------------------------------------------------------------------
    def lower_stmts(self, stmts: List[ast.Stmt]) -> bool:
        self.scopes.append({})
        completed = True
        for stmt in stmts:
            if not completed:
                break  # unreachable code is dropped
            completed = self.lower_stmt(stmt)
        self.scopes.pop()
        return completed

    def lower_stmt(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, ast.BlockStmt):
            return self.lower_stmts(stmt.body)
        if isinstance(stmt, ast.DeclStmt):
            return self._lower_decl(stmt)
        if isinstance(stmt, ast.AssignStmt):
            return self._lower_assign(stmt)
        if isinstance(stmt, ast.IncDecStmt):
            return self._lower_incdec(stmt)
        if isinstance(stmt, ast.StoreStmt):
            return self._lower_store(stmt)
        if isinstance(stmt, ast.ExprStmt):
            return self._lower_expr_stmt(stmt)
        if isinstance(stmt, ast.IfStmt):
            return self._lower_if(stmt)
        if isinstance(stmt, ast.WhileStmt):
            return self._lower_while(stmt)
        if isinstance(stmt, ast.ForStmt):
            return self._lower_for(stmt)
        if isinstance(stmt, ast.SwitchStmt):
            return self._lower_switch(stmt)
        if isinstance(stmt, ast.BreakStmt):
            if not self.break_targets:
                raise CompileError("break outside loop/switch",
                                   stmt.line, stmt.col)
            self.terminate_jump(self.break_targets[-1])
            return False
        if isinstance(stmt, ast.ContinueStmt):
            if not self.continue_targets:
                raise CompileError("continue outside loop",
                                   stmt.line, stmt.col)
            self.terminate_jump(self.continue_targets[-1])
            return False
        if isinstance(stmt, ast.ReturnStmt):
            return self._lower_return(stmt)
        raise CompileError(f"unhandled statement {type(stmt).__name__}",
                           stmt.line, stmt.col)

    def _lower_decl(self, stmt: ast.DeclStmt) -> bool:
        ty = _TYPE_MAP[stmt.type]
        if stmt.array_size is not None:
            var = self.declare(stmt.name, I64, stmt, is_array=True,
                               elem_ty=ty)
            offset = self.array_offsets[id(stmt)]
            base = self._frame_base
            if offset:
                off = self.fb.iconst(offset)
                base = self.fb.emit("iadd", (base, off))
            self.write_variable(var, self.fb.current.id, base)
            return True
        var = self.declare(stmt.name, ty, stmt)
        if stmt.init is not None:
            value, vty = self.lower_expr(stmt.init)
            self._check_type(vty, ty, stmt)
        else:
            value = (self.fb.iconst(0) if ty == I64 else self.fb.fconst(0.0))
        self.write_variable(var, self.fb.current.id, value)
        return True

    def _lower_assign(self, stmt: ast.AssignStmt) -> bool:
        var = self.lookup(stmt.name, stmt)
        if var.is_array:
            raise CompileError(f"cannot assign to array {stmt.name!r}",
                               stmt.line, stmt.col)
        value, vty = self.lower_expr(stmt.value)
        if stmt.op != "=":
            base_op = stmt.op[:-1]
            current = self.read_variable(var, self.fb.current.id)
            value = self._binop(base_op, current, var.ty, value, vty, stmt)[0]
            vty = var.ty
        self._check_type(vty, var.ty, stmt)
        self.write_variable(var, self.fb.current.id, value)
        return True

    def _lower_incdec(self, stmt: ast.IncDecStmt) -> bool:
        var = self.lookup(stmt.name, stmt)
        if var.ty != I64 or var.is_array:
            raise CompileError("++/-- require a u64 scalar",
                               stmt.line, stmt.col)
        current = self.read_variable(var, self.fb.current.id)
        one = self.fb.iconst(1)
        op = "iadd" if stmt.op == "++" else "isub"
        self.write_variable(var, self.fb.current.id,
                            self.fb.emit(op, (current, one)))
        return True

    def _addr_and_elem(self, base_expr: ast.Expr, index_expr: ast.Expr,
                       node: ast.Node) -> Tuple[int, int, Type]:
        """Compute (address value, static offset, element type) for an
        ``base[index]`` access."""
        elem_ty = I64
        if isinstance(base_expr, ast.VarRef):
            var = self.lookup(base_expr.name, base_expr)
            if var.is_array and var.elem_ty is not None:
                elem_ty = var.elem_ty
        base, bty = self.lower_expr(base_expr)
        self._check_type(bty, I64, node)
        if isinstance(index_expr, ast.IntLit):
            return base, index_expr.value * 8, elem_ty
        index, ity = self.lower_expr(index_expr)
        self._check_type(ity, I64, node)
        three = self.fb.iconst(3)
        scaled = self.fb.emit("ishl", (index, three))
        addr = self.fb.emit("iadd", (base, scaled))
        return addr, 0, elem_ty

    def _lower_store(self, stmt: ast.StoreStmt) -> bool:
        addr, offset, elem_ty = self._addr_and_elem(stmt.base, stmt.index,
                                                    stmt)
        value, vty = self.lower_expr(stmt.value)
        if stmt.op != "=":
            base_op = stmt.op[:-1]
            load_op = "load64" if elem_ty == I64 else "loadf64"
            current = self.fb.emit(load_op, (addr,), imm=offset)
            value = self._binop(base_op, current, elem_ty, value, vty,
                                stmt)[0]
            vty = elem_ty
        self._check_type(vty, elem_ty, stmt)
        store_op = "store64" if elem_ty == I64 else "storef64"
        self.fb.emit(store_op, (addr, value), imm=offset)
        return True

    def _lower_expr_stmt(self, stmt: ast.ExprStmt) -> bool:
        call = stmt.expr
        assert isinstance(call, ast.Call)
        if call.callee in ("abort", "unreachable"):
            self.fb.current.terminator = Trap(f"{call.callee}() called")
            return False
        self.lower_call(call, want_result=False)
        return True

    def _lower_return(self, stmt: ast.ReturnStmt) -> bool:
        if self.node.result == "void":
            if stmt.value is not None:
                raise CompileError("void function returns a value",
                                   stmt.line, stmt.col)
            self.terminate_return(None)
            return False
        if stmt.value is None:
            raise CompileError("non-void function must return a value",
                               stmt.line, stmt.col)
        value, vty = self.lower_expr(stmt.value)
        self._check_type(vty, _TYPE_MAP[self.node.result], stmt)
        self.terminate_return(value)
        return False

    def _lower_if(self, stmt: ast.IfStmt) -> bool:
        cond = self._lower_condition(stmt.cond)
        then_block = self.new_block()
        else_block = self.new_block() if stmt.else_body else None
        join = self.new_block()
        self.terminate_br_if(cond, then_block,
                             else_block if else_block else join)
        self.seal_block(then_block)
        self.fb.switch_to(then_block)
        then_done = self.lower_stmts(stmt.then_body)
        if then_done:
            self.terminate_jump(join)
        else_done = True
        if else_block is not None:
            self.seal_block(else_block)
            self.fb.switch_to(else_block)
            else_done = self.lower_stmts(stmt.else_body)
            if else_done:
                self.terminate_jump(join)
        self.seal_block(join)
        if not self.preds[join.id]:
            # Both arms terminated: the join is unreachable.
            join.terminator = Trap("unreachable join")
            self.fb.switch_to(join)
            return False
        self.fb.switch_to(join)
        return True

    def _lower_while(self, stmt: ast.WhileStmt) -> bool:
        header = self.new_block()
        self.terminate_jump(header)
        self.fb.switch_to(header)
        cond = self._lower_condition(stmt.cond)
        cond_tail = self.fb.current  # condition may span blocks (&&/||)
        body = self.new_block()
        exit_block = self.new_block()
        self.fb.switch_to(cond_tail)
        self.terminate_br_if(cond, body, exit_block)
        self.seal_block(body)
        self.fb.switch_to(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(header)
        body_done = self.lower_stmts(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if body_done:
            self.terminate_jump(header)
        self.seal_block(header)
        self.seal_block(exit_block)
        self.fb.switch_to(exit_block)
        return True

    def _lower_for(self, stmt: ast.ForStmt) -> bool:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.new_block()
        self.terminate_jump(header)
        self.fb.switch_to(header)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
        else:
            cond = self.fb.iconst(1)
        body = self.new_block()
        exit_block = self.new_block()
        step_block = self.new_block()
        self.terminate_br_if(cond, body, exit_block)
        self.seal_block(body)
        self.fb.switch_to(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        body_done = self.lower_stmts(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if body_done:
            self.terminate_jump(step_block)
        self.seal_block(step_block)
        if self.preds[step_block.id]:
            self.fb.switch_to(step_block)
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            self.terminate_jump(header)
        else:
            step_block.terminator = Trap("unreachable for-step")
        self.seal_block(header)
        self.seal_block(exit_block)
        self.fb.switch_to(exit_block)
        self.scopes.pop()
        return True

    def _lower_switch(self, stmt: ast.SwitchStmt) -> bool:
        selector, sty = self.lower_expr(stmt.selector)
        self._check_type(sty, I64, stmt)
        join = self.new_block()
        case_blocks = [self.new_block() for _ in stmt.cases]
        default_block = join
        value_map: Dict[int, Block] = {}
        for case, block in zip(stmt.cases, case_blocks):
            if case.is_default:
                default_block = block
            for value in case.values:
                if value in value_map:
                    raise CompileError(f"duplicate case {value}",
                                       stmt.line, stmt.col)
                value_map[value] = block

        self._emit_switch_dispatch(selector, value_map, default_block)

        for block in case_blocks:
            self.seal_block(block)

        self.break_targets.append(join)
        any_complete = False
        for i, (case, block) in enumerate(zip(stmt.cases, case_blocks)):
            self.fb.switch_to(block)
            done = self.lower_stmts(case.body)
            if done:
                # C fallthrough into the next case, or out to the join.
                if i + 1 < len(case_blocks):
                    self.terminate_jump(case_blocks[i + 1])
                else:
                    self.terminate_jump(join)
                    any_complete = True
        self.break_targets.pop()
        self.seal_block(join)
        if not self.preds[join.id]:
            join.terminator = Trap("unreachable switch join")
            self.fb.switch_to(join)
            return False
        self.fb.switch_to(join)
        return True

    def _emit_switch_dispatch(self, selector: int,
                              value_map: Dict[int, Block],
                              default_block: Block) -> None:
        if not value_map:
            self.terminate_jump(default_block)
            return
        lo = min(value_map)
        hi = max(value_map)
        if 0 <= hi - lo < 1024:
            index = selector
            if lo != 0:
                low_const = self.fb.iconst(lo)
                index = self.fb.emit("isub", (selector, low_const))
            cases = [value_map.get(lo + i, default_block)
                     for i in range(hi - lo + 1)]
            self.terminate_br_table(index, cases, default_block)
            return
        # Sparse: chain of equality tests.
        for value, block in sorted(value_map.items()):
            const = self.fb.iconst(value)
            cond = self.fb.emit("ieq", (selector, const))
            next_test = self.new_block()
            self.terminate_br_if(cond, block, next_test)
            self.seal_block(next_test)
            self.fb.switch_to(next_test)
        self.terminate_jump(default_block)

    # ------------------------------------------------------------------
    # Expressions.  Each returns (value id, Type).
    # ------------------------------------------------------------------
    def _check_type(self, actual: Type, expected: Type,
                    node: ast.Node) -> None:
        if actual != expected:
            raise CompileError(
                f"type mismatch: expected {expected}, got {actual}",
                node.line, node.col)

    def _lower_condition(self, expr: ast.Expr) -> int:
        value, ty = self.lower_expr(expr)
        self._check_type(ty, I64, expr)
        return value

    def lower_expr(self, expr: ast.Expr) -> Tuple[int, Type]:
        if isinstance(expr, ast.IntLit):
            return self.fb.iconst(wrap_i64(expr.value)), I64
        if isinstance(expr, ast.FloatLit):
            return self.fb.fconst(expr.value), F64
        if isinstance(expr, ast.VarRef):
            var = self.lookup(expr.name, expr)
            return self.read_variable(var, self.fb.current.id), var.ty
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._lower_logical(expr)
            left, lty = self.lower_expr(expr.left)
            right, rty = self.lower_expr(expr.right)
            return self._binop(expr.op, left, lty, right, rty, expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Call):
            result = self.lower_call(expr, want_result=True)
            if result is None:
                raise CompileError(
                    f"void call {expr.callee!r} used as a value",
                    expr.line, expr.col)
            return result
        if isinstance(expr, ast.Index):
            addr, offset, elem_ty = self._addr_and_elem(expr.base,
                                                        expr.index, expr)
            op = "load64" if elem_ty == I64 else "loadf64"
            return self.fb.emit(op, (addr,), imm=offset), elem_ty
        raise CompileError(f"unhandled expression {type(expr).__name__}",
                           expr.line, expr.col)

    def _lower_unary(self, expr: ast.Unary) -> Tuple[int, Type]:
        value, ty = self.lower_expr(expr.operand)
        if expr.op == "-":
            if ty == F64:
                return self.fb.emit("fneg", (value,)), F64
            zero = self.fb.iconst(0)
            return self.fb.emit("isub", (zero, value)), I64
        if expr.op == "!":
            self._check_type(ty, I64, expr)
            zero = self.fb.iconst(0)
            return self.fb.emit("ieq", (value, zero)), I64
        if expr.op == "~":
            self._check_type(ty, I64, expr)
            ones = self.fb.iconst(wrap_i64(-1))
            return self.fb.emit("ixor", (value, ones)), I64
        raise CompileError(f"unhandled unary {expr.op!r}",
                           expr.line, expr.col)

    def _binop(self, op: str, left: int, lty: Type, right: int, rty: Type,
               node: ast.Node) -> Tuple[int, Type]:
        if lty != rty:
            raise CompileError(
                f"operand type mismatch for {op!r}: {lty} vs {rty} "
                f"(use itof/ftoi for conversions)", node.line, node.col)
        if lty == I64:
            opcode = _INT_BINOPS.get(op)
            if opcode is None:
                raise CompileError(f"operator {op!r} not valid on u64",
                                   node.line, node.col)
            return self.fb.emit(opcode, (left, right)), I64
        opcode = _FLOAT_BINOPS.get(op)
        if opcode is None:
            raise CompileError(f"operator {op!r} not valid on f64",
                               node.line, node.col)
        result_ty = I64 if op in _CMP_OPS else F64
        return self.fb.emit(opcode, (left, right)), result_ty

    def _lower_logical(self, expr: ast.Binary) -> Tuple[int, Type]:
        left = self._lower_condition(expr.left)
        rhs_block = self.new_block()
        join = self.new_block()
        param = self.func.add_block_param(join, I64)
        src = self.fb.current
        zero = self.fb.iconst(0)
        one = self.fb.iconst(1)
        short_value = zero if expr.op == "&&" else one
        tcall = BlockCall(rhs_block.id, ())
        fcall = BlockCall(join.id, (short_value,))
        if expr.op == "&&":
            src.terminator = BrIf(left, tcall, fcall)
        else:
            src.terminator = BrIf(left, fcall, tcall)
        self._record_edge(src, tcall)
        self._record_edge(src, fcall)
        self.seal_block(rhs_block)
        self.fb.switch_to(rhs_block)
        right = self._lower_condition(expr.right)
        rzero = self.fb.iconst(0)
        norm = self.fb.emit("ine", (right, rzero))
        src = self.fb.current
        call = BlockCall(join.id, (norm,))
        src.terminator = Jump(call)
        self._record_edge(src, call)
        self.seal_block(join)
        self.fb.switch_to(join)
        return param, I64

    def _lower_ternary(self, expr: ast.Ternary) -> Tuple[int, Type]:
        cond = self._lower_condition(expr.cond)
        then_block = self.new_block()
        else_block = self.new_block()
        join = self.new_block()
        self.terminate_br_if(cond, then_block, else_block)
        self.seal_block(then_block)
        self.seal_block(else_block)

        self.fb.switch_to(then_block)
        tvalue, tty = self.lower_expr(expr.if_true)
        tsrc = self.fb.current
        self.fb.switch_to(else_block)
        fvalue, fty = self.lower_expr(expr.if_false)
        fsrc = self.fb.current
        self._check_type(fty, tty, expr)

        param = self.func.add_block_param(join, tty)
        tcall = BlockCall(join.id, (tvalue,))
        tsrc.terminator = Jump(tcall)
        self._record_edge(tsrc, tcall)
        fcall = BlockCall(join.id, (fvalue,))
        fsrc.terminator = Jump(fcall)
        self._record_edge(fsrc, fcall)
        self.seal_block(join)
        self.fb.switch_to(join)
        return param, tty

    # ------------------------------------------------------------------
    # Calls.
    # ------------------------------------------------------------------
    def lower_call(self, expr: ast.Call,
                   want_result: bool) -> Optional[Tuple[int, Type]]:
        name = expr.callee

        # Direct-opcode builtins.
        if name in _MEMORY_BUILTINS:
            opcode, arg_types, result = _MEMORY_BUILTINS[name]
            args = self._lower_args(expr, arg_types)
            value = self.fb.emit(opcode, args, imm=0
                                 if opcode.startswith(("load", "store"))
                                 else None)
            if result is None:
                return None
            return value, result
        if name in _SIGNED_BUILTINS:
            opcode = _SIGNED_BUILTINS[name]
            args = self._lower_args(expr, (I64, I64))
            return self.fb.emit(opcode, args), I64
        if name == "select":
            args = self._lower_args_poly(expr)
            return args
        if name.startswith("icall"):
            return self._lower_icall(expr)

        # weval intrinsics (mini-C name weval_foo -> import weval.foo).
        if name.startswith("weval_"):
            return self._lower_intrinsic(expr)

        # User-defined or extern functions.
        sig = self.ctx.signature_of(name, expr)
        if len(expr.args) != len(sig.params):
            raise CompileError(
                f"{name!r} expects {len(sig.params)} args, got "
                f"{len(expr.args)}", expr.line, expr.col)
        args = []
        for arg_expr, ty in zip(expr.args, sig.params):
            value, vty = self.lower_expr(arg_expr)
            self._check_type(vty, ty, arg_expr)
            args.append(value)
        result_type = sig.results[0] if sig.results else None
        value = self.fb.call(name, args, result_type=result_type)
        if result_type is None:
            return None
        return value, result_type

    def _lower_args(self, expr: ast.Call, arg_types) -> List[int]:
        if len(expr.args) != len(arg_types):
            raise CompileError(
                f"{expr.callee!r} expects {len(arg_types)} args, got "
                f"{len(expr.args)}", expr.line, expr.col)
        args = []
        for arg_expr, ty in zip(expr.args, arg_types):
            value, vty = self.lower_expr(arg_expr)
            self._check_type(vty, ty, arg_expr)
            args.append(value)
        return args

    def _lower_args_poly(self, expr: ast.Call) -> Tuple[int, Type]:
        if len(expr.args) != 3:
            raise CompileError("select expects 3 args", expr.line, expr.col)
        cond = self._lower_condition(expr.args[0])
        tvalue, tty = self.lower_expr(expr.args[1])
        fvalue, fty = self.lower_expr(expr.args[2])
        self._check_type(fty, tty, expr)
        return self.fb.emit("select", (cond, tvalue, fvalue)), tty

    def _lower_icall(self, expr: ast.Call) -> Tuple[int, Type]:
        suffix = expr.callee[len("icall"):]
        if not suffix.isdigit():
            raise CompileError(f"unknown builtin {expr.callee!r}",
                               expr.line, expr.col)
        arity = int(suffix)
        if len(expr.args) != arity + 1:
            raise CompileError(
                f"{expr.callee} expects {arity + 1} args (index + "
                f"{arity} params)", expr.line, expr.col)
        values = []
        for arg_expr in expr.args:
            value, vty = self.lower_expr(arg_expr)
            self._check_type(vty, I64, arg_expr)
            values.append(value)
        sig = Signature(tuple([I64] * arity), (I64,))
        result = self.fb.call_indirect(sig, values[0], values[1:])
        return result, I64

    def _lower_intrinsic(self, expr: ast.Call) -> Optional[Tuple[int, Type]]:
        import_name = "weval." + expr.callee[len("weval_"):]
        intr = INTRINSICS.get(import_name)
        if intr is None:
            raise CompileError(f"unknown weval intrinsic {expr.callee!r}",
                               expr.line, expr.col)
        self.ctx.used_intrinsics.add(import_name)
        args = self._lower_args(expr, intr.sig.params)
        result_type = intr.sig.results[0] if intr.sig.results else None
        value = self.fb.call(import_name, args, result_type=result_type)
        if result_type is None:
            return None
        return value, result_type


class _ProgramContext:
    """Shared state across function lowerings: signatures and intrinsics."""

    def __init__(self, program: ast.Program):
        self.signatures: Dict[str, Signature] = {}
        self.externs: Dict[str, Signature] = {}
        self.used_intrinsics: set = set()
        for ext in program.externs:
            sig = Signature(
                tuple(_TYPE_MAP[t] for t, _ in ext.params),
                () if ext.result == "void" else (_TYPE_MAP[ext.result],))
            self.externs[ext.name] = sig
            self.signatures[ext.name] = sig
        for func in program.functions:
            if func.name in self.signatures:
                raise CompileError(f"duplicate definition of {func.name!r}",
                                   func.line, func.col)
            self.signatures[func.name] = Signature(
                tuple(_TYPE_MAP[t] for t, _ in func.params),
                () if func.result == "void"
                else (_TYPE_MAP[func.result],))

    def signature_of(self, name: str, node: ast.Node) -> Signature:
        sig = self.signatures.get(name)
        if sig is None:
            raise CompileError(
                f"call to undeclared function {name!r} (declare host "
                f"functions with 'extern')", node.line, node.col)
        return sig


def compile_source(source: str) -> CompiledProgram:
    """Compile mini-C source text to IR functions.

    Returns a :class:`CompiledProgram`; call ``add_to_module`` to place
    the functions (plus required imports and the shadow-stack global)
    into a :class:`~repro.ir.module.Module`.
    """
    program = parse_source(source)
    ctx = _ProgramContext(program)
    functions: Dict[str, Function] = {}
    uses_shadow_stack = False
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100000))
    try:
        for node in program.functions:
            lowerer = _FuncLowerer(ctx, node)
            functions[node.name] = lowerer.lower()
            if lowerer.frame_size:
                uses_shadow_stack = True
    finally:
        sys.setrecursionlimit(old_limit)
    return CompiledProgram(
        functions=functions,
        externs=ctx.externs,
        weval_imports=sorted(ctx.used_intrinsics),
        uses_shadow_stack=uses_shadow_stack,
        source=source,
    )
