"""Compile-time diagnostics for mini-C."""

from __future__ import annotations


class CompileError(Exception):
    """A mini-C front-end error, with 1-based source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)
