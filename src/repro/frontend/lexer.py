"""Tokenizer for mini-C."""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

from repro.frontend.errors import CompileError

KEYWORDS = {
    "u64", "f64", "void", "if", "else", "while", "for", "do", "break",
    "continue", "return", "switch", "case", "default", "extern",
}

# Multi-character operators, longest first so the scanner is greedy.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ":", "?",
]


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str        # "ident", "keyword", "int", "float", "op", "eof"
    text: str
    line: int
    col: int
    value: object = None  # parsed numeric value for int/float tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C source text, raising :class:`CompileError` on bad
    input.  ``//`` and ``/* */`` comments are skipped."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> CompileError:
        return CompileError(message, line, col)

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i:end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # Numbers.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i] in "0123456789abcdefABCDEF"):
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
                if i < n and source[i] == ".":
                    is_float = True
                    i += 1
                    while i < n and source[i].isdigit():
                        i += 1
                if i < n and source[i] in "eE":
                    is_float = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                    if i >= n or not source[i].isdigit():
                        raise error("malformed float exponent")
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            if is_float:
                tokens.append(Token("float", text, line, col, float(text)))
            else:
                tokens.append(Token("int", text, line, col, int(text, 0)))
            col += i - start
            continue
        # Operators and punctuation.
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens
