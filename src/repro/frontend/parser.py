"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize

# Binary operator precedence, loosest first.  ``&&``/``||`` and ``?:`` are
# handled separately for short-circuit lowering.
PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise CompileError(f"expected {want!r}, found {tok.text!r}",
                               tok.line, tok.col)
        return self.next()

    def error(self, message: str) -> CompileError:
        tok = self.peek()
        return CompileError(message, tok.line, tok.col)

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        functions: List[ast.FuncDef] = []
        externs: List[ast.ExternDecl] = []
        while not self.at("eof"):
            if self.at("keyword", "extern"):
                externs.append(self.parse_extern())
            else:
                functions.append(self.parse_function())
        return ast.Program(functions, externs)

    def parse_type(self, allow_void: bool = False) -> str:
        tok = self.peek()
        if tok.kind == "keyword" and tok.text in ("u64", "f64"):
            self.next()
            return tok.text
        if allow_void and tok.kind == "keyword" and tok.text == "void":
            self.next()
            return "void"
        raise self.error(f"expected a type, found {tok.text!r}")

    def parse_param_list(self) -> List[Tuple[str, str]]:
        self.expect("op", "(")
        params: List[Tuple[str, str]] = []
        if not self.at("op", ")"):
            while True:
                ty = self.parse_type()
                name = self.expect("ident").text
                params.append((ty, name))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return params

    def parse_extern(self) -> ast.ExternDecl:
        tok = self.expect("keyword", "extern")
        result = self.parse_type(allow_void=True)
        name = self.expect("ident").text
        params = self.parse_param_list()
        self.expect("op", ";")
        return ast.ExternDecl(tok.line, tok.col, name, result, params)

    def parse_function(self) -> ast.FuncDef:
        tok = self.peek()
        result = self.parse_type(allow_void=True)
        name = self.expect("ident").text
        params = self.parse_param_list()
        body = self.parse_block()
        return ast.FuncDef(tok.line, tok.col, name, result, params, body)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def parse_block(self) -> List[ast.Stmt]:
        self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.at("op", "}"):
            stmts.append(self.parse_statement())
        self.expect("op", "}")
        return stmts

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "keyword":
            if tok.text in ("u64", "f64"):
                return self.parse_declaration()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "switch":
                return self.parse_switch()
            if tok.text == "break":
                self.next()
                self.expect("op", ";")
                return ast.BreakStmt(tok.line, tok.col)
            if tok.text == "continue":
                self.next()
                self.expect("op", ";")
                return ast.ContinueStmt(tok.line, tok.col)
            if tok.text == "return":
                self.next()
                value = None
                if not self.at("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.ReturnStmt(tok.line, tok.col, value)
        if self.at("op", "{"):
            body = self.parse_block()
            return ast.BlockStmt(tok.line, tok.col, body)
        return self.parse_simple_statement(require_semicolon=True)

    def parse_declaration(self) -> ast.Stmt:
        tok = self.peek()
        ty = self.parse_type()
        name = self.expect("ident").text
        if self.accept("op", "["):
            size_tok = self.expect("int")
            self.expect("op", "]")
            self.expect("op", ";")
            return ast.DeclStmt(tok.line, tok.col, ty, name, None,
                                array_size=int(size_tok.value))
        init = None
        if self.accept("op", "="):
            init = self.parse_expression()
        self.expect("op", ";")
        return ast.DeclStmt(tok.line, tok.col, ty, name, init)

    def parse_simple_statement(self, require_semicolon: bool) -> ast.Stmt:
        """Assignment, increment/decrement, indexed store, or a bare call."""
        tok = self.peek()
        stmt = self._parse_simple_inner(tok)
        if require_semicolon:
            self.expect("op", ";")
        return stmt

    def _parse_simple_inner(self, tok: Token) -> ast.Stmt:
        if tok.kind == "ident":
            nxt = self.peek(1)
            if nxt.kind == "op" and nxt.text in ASSIGN_OPS:
                name = self.next().text
                op = self.next().text
                value = self.parse_expression()
                return ast.AssignStmt(tok.line, tok.col, name, op, value)
            if nxt.kind == "op" and nxt.text in ("++", "--"):
                name = self.next().text
                op = self.next().text
                return ast.IncDecStmt(tok.line, tok.col, name, op)
        # General expression; may become an indexed store or a call stmt.
        expr = self.parse_expression()
        if isinstance(expr, ast.Index) and self.peek().kind == "op" \
                and self.peek().text in ASSIGN_OPS:
            op = self.next().text
            value = self.parse_expression()
            return ast.StoreStmt(tok.line, tok.col, expr.base, expr.index,
                                 op, value)
        if isinstance(expr, ast.Call):
            return ast.ExprStmt(tok.line, tok.col, expr)
        raise CompileError("expression statement must be a call, assignment, "
                           "or indexed store", tok.line, tok.col)

    def parse_if(self) -> ast.Stmt:
        tok = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: List[ast.Stmt] = []
        if self.accept("keyword", "else"):
            if self.at("keyword", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.IfStmt(tok.line, tok.col, cond, then_body, else_body)

    def parse_while(self) -> ast.Stmt:
        tok = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_block()
        return ast.WhileStmt(tok.line, tok.col, cond, body)

    def parse_for(self) -> ast.Stmt:
        tok = self.expect("keyword", "for")
        self.expect("op", "(")
        init = None
        if not self.at("op", ";"):
            if self.at("keyword", "u64") or self.at("keyword", "f64"):
                init = self.parse_declaration()
            else:
                init = self.parse_simple_statement(require_semicolon=True)
        else:
            self.expect("op", ";")
        cond = None
        if not self.at("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.at("op", ")"):
            step = self.parse_simple_statement(require_semicolon=False)
        self.expect("op", ")")
        body = self.parse_block()
        return ast.ForStmt(tok.line, tok.col, init, cond, step, body)

    def parse_switch(self) -> ast.Stmt:
        tok = self.expect("keyword", "switch")
        self.expect("op", "(")
        selector = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[ast.SwitchCase] = []
        while not self.at("op", "}"):
            values: List[int] = []
            is_default = False
            # One or more labels.
            while True:
                if self.accept("keyword", "case"):
                    val_tok = self.expect("int")
                    values.append(int(val_tok.value))
                    self.expect("op", ":")
                elif self.accept("keyword", "default"):
                    is_default = True
                    self.expect("op", ":")
                else:
                    break
            if not values and not is_default:
                raise self.error("expected 'case' or 'default' label")
            body: List[ast.Stmt] = []
            while not (self.at("op", "}") or self.at("keyword", "case")
                       or self.at("keyword", "default")):
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(values, is_default, body))
        self.expect("op", "}")
        return ast.SwitchStmt(tok.line, tok.col, selector, cases)

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            tok = self.peek()
            if_true = self.parse_expression()
            self.expect("op", ":")
            if_false = self.parse_ternary()
            return ast.Ternary(tok.line, tok.col, cond, if_true, if_false)
        return cond

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = PRECEDENCE[level]
        while self.peek().kind == "op" and self.peek().text in ops:
            tok = self.next()
            right = self.parse_binary(level + 1)
            left = ast.Binary(tok.line, tok.col, tok.text, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(tok.line, tok.col, tok.text, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at("op", "["):
                tok = self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(tok.line, tok.col, expr, index)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return ast.IntLit(tok.line, tok.col, int(tok.value))
        if tok.kind == "float":
            self.next()
            return ast.FloatLit(tok.line, tok.col, float(tok.value))
        if tok.kind == "ident":
            self.next()
            if self.at("op", "("):
                self.next()
                args: List[ast.Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(tok.line, tok.col, tok.text, args)
            return ast.VarRef(tok.line, tok.col, tok.text)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse_source(source: str) -> ast.Program:
    return Parser(source).parse_program()
