"""SSA control-flow-graph intermediate representation.

This package provides the IR that the weval transform (``repro.core``)
operates on.  It is deliberately WebAssembly-flavoured: a module owns a
linear memory, a table of functions for indirect calls, and a set of
functions; each function is a CFG of basic blocks in SSA form with block
parameters instead of phi nodes.  The paper (S3.6) states the transform
works on "any IR that is a CFG of basic blocks" with explicit edges,
support for irreducible control flow, and a constant-memory interface;
this IR satisfies exactly those requirements.
"""

from repro.ir.types import Type, I64, F64
from repro.ir.instructions import (
    Instr,
    BlockCall,
    Jump,
    BrIf,
    BrTable,
    Ret,
    Trap,
    Terminator,
    OPCODES,
    OpInfo,
    wrap_i64,
    to_signed,
    to_unsigned,
)
from repro.ir.function import Block, Function, Signature
from repro.ir.module import Module, HostFunc
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import (
    successors,
    predecessors,
    reverse_postorder,
    postorder,
    retreating_edges,
)
from repro.ir.dominance import DominatorTree
from repro.ir.printer import print_function, print_module
from repro.ir.verifier import verify_function, verify_module, VerificationError
from repro.ir.verify import verify_after_pass

__all__ = [
    "Type",
    "I64",
    "F64",
    "Instr",
    "BlockCall",
    "Jump",
    "BrIf",
    "BrTable",
    "Ret",
    "Trap",
    "Terminator",
    "OPCODES",
    "OpInfo",
    "wrap_i64",
    "to_signed",
    "to_unsigned",
    "Block",
    "Function",
    "Signature",
    "Module",
    "HostFunc",
    "FunctionBuilder",
    "successors",
    "predecessors",
    "reverse_postorder",
    "postorder",
    "retreating_edges",
    "DominatorTree",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
    "verify_after_pass",
    "VerificationError",
]
