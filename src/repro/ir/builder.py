"""Convenience builder for constructing IR functions by hand.

Used by tests, by the mini-C frontend's lowering, and by the specializer
when emitting specialized function bodies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.function import Block, Function, Signature
from repro.ir.instructions import (
    OPCODES,
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
    wrap_i64,
)
from repro.ir.types import F64, I64, Type


class FunctionBuilder:
    """Builds a :class:`Function` block by block.

    Typical usage::

        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        entry = fb.entry
        x = entry.params[0][0]
        one = fb.iconst(1)
        y = fb.iadd(x, one)
        fb.ret(y)
    """

    def __init__(self, name: str, sig: Signature):
        self.func = Function(name, sig)
        self.entry = self.func.new_block()
        self.func.entry = self.entry.id
        for ty in sig.params:
            self.func.add_block_param(self.entry, ty)
        self.current: Block = self.entry

    # ------------------------------------------------------------------
    # Block management.
    # ------------------------------------------------------------------
    def new_block(self, param_types: Sequence[Type] = ()) -> Block:
        block = self.func.new_block()
        for ty in param_types:
            self.func.add_block_param(block, ty)
        return block

    def switch_to(self, block: Block) -> Block:
        self.current = block
        return block

    # ------------------------------------------------------------------
    # Instruction emission.
    # ------------------------------------------------------------------
    def emit(self, op: str, args: Sequence[int] = (), imm: object = None,
             result_type: Optional[Type] = None) -> Optional[int]:
        info = OPCODES[op]
        if info.result is None:
            result = None
            rtype = None
        elif info.result == "poly":
            rtype = result_type or self.func.type_of(args[1])
            result = self.func.new_value(rtype)
        elif info.result == "dynamic":
            rtype = result_type
            result = self.func.new_value(rtype) if rtype is not None else None
        else:
            rtype = info.result
            result = self.func.new_value(rtype)
        instr = Instr(op, result, tuple(args), imm, rtype)
        self.current.instrs.append(instr)
        return result

    # Constants -----------------------------------------------------------
    def iconst(self, value: int) -> int:
        return self.emit("iconst", imm=wrap_i64(value))

    def fconst(self, value: float) -> int:
        return self.emit("fconst", imm=float(value))

    # Generic binops / unops via __getattr__-free explicit helpers --------
    def binop(self, op: str, a: int, b: int) -> int:
        return self.emit(op, (a, b))

    def iadd(self, a, b):
        return self.binop("iadd", a, b)

    def isub(self, a, b):
        return self.binop("isub", a, b)

    def imul(self, a, b):
        return self.binop("imul", a, b)

    def iand(self, a, b):
        return self.binop("iand", a, b)

    def ior(self, a, b):
        return self.binop("ior", a, b)

    def ixor(self, a, b):
        return self.binop("ixor", a, b)

    def ishl(self, a, b):
        return self.binop("ishl", a, b)

    def ishr_u(self, a, b):
        return self.binop("ishr_u", a, b)

    def ishr_s(self, a, b):
        return self.binop("ishr_s", a, b)

    def ieq(self, a, b):
        return self.binop("ieq", a, b)

    def ine(self, a, b):
        return self.binop("ine", a, b)

    def ilt_s(self, a, b):
        return self.binop("ilt_s", a, b)

    def ilt_u(self, a, b):
        return self.binop("ilt_u", a, b)

    def select(self, cond: int, if_true: int, if_false: int) -> int:
        return self.emit("select", (cond, if_true, if_false))

    # Memory ---------------------------------------------------------------
    def load64(self, addr: int, offset: int = 0) -> int:
        return self.emit("load64", (addr,), imm=offset)

    def store64(self, addr: int, value: int, offset: int = 0) -> None:
        self.emit("store64", (addr, value), imm=offset)

    def loadf64(self, addr: int, offset: int = 0) -> int:
        return self.emit("loadf64", (addr,), imm=offset)

    def storef64(self, addr: int, value: int, offset: int = 0) -> None:
        self.emit("storef64", (addr, value), imm=offset)

    # Calls ------------------------------------------------------------------
    def call(self, callee: str, args: Sequence[int],
             result_type: Optional[Type] = None) -> Optional[int]:
        return self.emit("call", args, imm=callee, result_type=result_type)

    def call_indirect(self, sig: Signature, index: int,
                      args: Sequence[int]) -> Optional[int]:
        rtype = sig.results[0] if sig.results else None
        return self.emit("call_indirect", (index, *args), imm=sig,
                         result_type=rtype)

    # Globals ------------------------------------------------------------------
    def global_get(self, name: str) -> int:
        return self.emit("global_get", imm=name)

    def global_set(self, name: str, value: int) -> None:
        self.emit("global_set", (value,), imm=name)

    # ------------------------------------------------------------------
    # Terminators.
    # ------------------------------------------------------------------
    def _terminate(self, term) -> None:
        assert self.current.terminator is None, (
            f"block {self.current.id} already terminated")
        self.current.terminator = term

    def jump(self, target: Block, args: Sequence[int] = ()) -> None:
        self._terminate(Jump(BlockCall(target.id, tuple(args))))

    def br_if(self, cond: int, if_true: Block, if_false: Block,
              true_args: Sequence[int] = (),
              false_args: Sequence[int] = ()) -> None:
        self._terminate(BrIf(cond,
                             BlockCall(if_true.id, tuple(true_args)),
                             BlockCall(if_false.id, tuple(false_args))))

    def br_table(self, index: int, cases: Sequence[Block],
                 default: Block) -> None:
        self._terminate(BrTable(index,
                                [BlockCall(b.id) for b in cases],
                                BlockCall(default.id)))

    def ret(self, *args: int) -> None:
        self._terminate(Ret(tuple(args)))

    def trap(self, message: str = "trap") -> None:
        self._terminate(Trap(message))

    def finish(self) -> Function:
        return self.func
