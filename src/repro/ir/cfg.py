"""CFG utilities: successor/predecessor maps and traversal orders."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Function


def successors(func: Function, block_id: int) -> List[int]:
    """Successor block ids of a block, in terminator order (with dups
    removed, preserving first occurrence)."""
    term = func.blocks[block_id].terminator
    if term is None:
        return []
    seen: Set[int] = set()
    out: List[int] = []
    for call in term.targets():
        if call.block not in seen:
            seen.add(call.block)
            out.append(call.block)
    return out


def predecessors(func: Function) -> Dict[int, List[int]]:
    """Map from block id to the list of predecessor block ids (each listed
    once even if a terminator has multiple edges to it)."""
    preds: Dict[int, List[int]] = {b: [] for b in func.blocks}
    for bid in func.blocks:
        for succ in successors(func, bid):
            preds[succ].append(bid)
    return preds


def reachable_blocks(func: Function) -> Set[int]:
    """Blocks reachable from the entry block."""
    seen: Set[int] = set()
    stack = [func.entry]
    while stack:
        bid = stack.pop()
        if bid in seen:
            continue
        seen.add(bid)
        stack.extend(successors(func, bid))
    return seen


def postorder(func: Function) -> List[int]:
    """Post-order traversal of reachable blocks from the entry."""
    seen: Set[int] = set()
    order: List[int] = []
    # Iterative DFS with an explicit state stack to avoid recursion limits
    # on the very deep CFGs produced by specialization.
    stack = [(func.entry, iter(successors(func, func.entry)))]
    seen.add(func.entry)
    while stack:
        bid, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(successors(func, succ))))
                advanced = True
                break
        if not advanced:
            order.append(bid)
            stack.pop()
    return order


def reverse_postorder(func: Function) -> List[int]:
    """Reverse post-order: a topological order ignoring back edges."""
    return list(reversed(postorder(func)))


def retreating_edges(func: Function) -> FrozenSet[Tuple[int, int]]:
    """Edges ``(src, dst)`` that go against reverse post-order.

    For reducible CFGs these are exactly the natural-loop backedges; for
    irreducible CFGs they additionally include one retreating edge per
    rogue cycle, which is the right notion of "loop heat" for tier-0
    profiling.  Block *ids* play no role — a forward jump to a block
    with a lower id is not a retreating edge.
    """
    position = {bid: i for i, bid in enumerate(reverse_postorder(func))}
    edges: Set[Tuple[int, int]] = set()
    for bid, pos in position.items():
        for succ in successors(func, bid):
            if position.get(succ, len(position)) <= pos:
                edges.add((bid, succ))
    return frozenset(edges)
