"""Deep-cloning of IR functions (value ids preserved)."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.ir.function import Block, Function
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)


def _clone_terminator(term):
    if term is None:
        return None
    if isinstance(term, Jump):
        return Jump(BlockCall(term.target.block, tuple(term.target.args)))
    if isinstance(term, BrIf):
        return BrIf(term.cond,
                    BlockCall(term.if_true.block, tuple(term.if_true.args)),
                    BlockCall(term.if_false.block, tuple(term.if_false.args)))
    if isinstance(term, BrTable):
        return BrTable(term.index,
                       [BlockCall(c.block, tuple(c.args)) for c in term.cases],
                       BlockCall(term.default.block,
                                 tuple(term.default.args)))
    if isinstance(term, Ret):
        return Ret(tuple(term.args))
    if isinstance(term, Trap):
        return Trap(term.message)
    raise TypeError(f"not a terminator: {term!r}")


def clone_function(func: Function, new_name: Optional[str] = None) -> Function:
    """Deep copy of a function.  Value and block ids are preserved, so the
    clone can be transformed (e.g. block splitting) without touching the
    original."""
    clone = Function(new_name or func.name, func.sig)
    clone.entry = func.entry
    clone.value_types = dict(func.value_types)
    clone._next_value = func._next_value
    clone._next_block = func._next_block
    for bid, block in func.blocks.items():
        new_block = Block(bid, list(block.params),
                          [dataclasses.replace(i) for i in block.instrs],
                          _clone_terminator(block.terminator))
        clone.blocks[bid] = new_block
    return clone
