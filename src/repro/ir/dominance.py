"""Dominator tree computation (Cooper-Harvey-Kennedy algorithm).

Needed by the verifier (def-dominates-use), by the SSA repair pass
(S3.4 of the paper), and by the optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function


class DominatorTree:
    """Immediate-dominator tree over the reachable blocks of a function."""

    def __init__(self, func: Function):
        self.func = func
        self.rpo = reverse_postorder(func)
        self._rpo_index: Dict[int, int] = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[int, Optional[int]] = {}
        self._compute()
        self.children: Dict[int, List[int]] = {b: [] for b in self.rpo}
        for block, parent in self.idom.items():
            if parent is not None and parent != block:
                self.children[parent].append(block)
        self._depth: Dict[int, int] = {}
        self._compute_depths()

    def _compute(self) -> None:
        entry = self.func.entry
        preds = predecessors(self.func)
        idom: Dict[int, Optional[int]] = {entry: entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block == entry:
                    continue
                new_idom: Optional[int] = None
                for pred in preds[block]:
                    if pred not in self._rpo_index:
                        continue  # unreachable predecessor
                    if pred not in idom:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(new_idom, pred)
                if new_idom is not None and idom.get(block) != new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = idom
        # Entry's idom is conventionally None for tree purposes.
        self.idom[entry] = None

    def _compute_depths(self) -> None:
        entry = self.func.entry
        self._depth[entry] = 0
        stack = [entry]
        while stack:
            block = stack.pop()
            for child in self.children.get(block, ()):
                self._depth[child] = self._depth[block] + 1
                stack.append(child)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def is_reachable(self, block: int) -> bool:
        return block in self._rpo_index

    def dominates(self, a: int, b: int) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        if a == b:
            return True
        if a not in self._depth or b not in self._depth:
            return False
        # Walk b up to a's depth, then compare.
        while self._depth[b] > self._depth[a]:
            parent = self.idom[b]
            if parent is None:
                return False
            b = parent
        return a == b

    def depth(self, block: int) -> int:
        return self._depth[block]

    def lowest_common_ancestor(self, a: int, b: int) -> int:
        """Dominator-tree join of two reachable blocks."""
        while self._depth[a] > self._depth[b]:
            a = self.idom[a]  # type: ignore[assignment]
        while self._depth[b] > self._depth[a]:
            b = self.idom[b]  # type: ignore[assignment]
        while a != b:
            a = self.idom[a]  # type: ignore[assignment]
            b = self.idom[b]  # type: ignore[assignment]
        return a
