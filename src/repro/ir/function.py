"""Functions, basic blocks, and signatures."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Instr, Terminator, terminator_values
from repro.ir.types import Type


@dataclasses.dataclass(frozen=True)
class Signature:
    """A function signature: parameter types and result types.

    At most one result is supported (our guest interpreters need no more),
    but the type is a tuple so multi-result support is a local change.
    """

    params: Tuple[Type, ...]
    results: Tuple[Type, ...] = ()

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.params)
        if not self.results:
            return f"({params})"
        results = ", ".join(str(t) for t in self.results)
        return f"({params}) -> {results}"


@dataclasses.dataclass
class Block:
    """A basic block: typed parameters, instructions, one terminator."""

    id: int
    params: List[Tuple[int, Type]] = dataclasses.field(default_factory=list)
    instrs: List[Instr] = dataclasses.field(default_factory=list)
    terminator: Optional[Terminator] = None

    def param_values(self) -> List[int]:
        return [v for v, _ in self.params]


class Function:
    """An SSA function: a CFG of blocks plus value bookkeeping.

    The entry block's parameters are the function's parameters.  Value ids
    are allocated monotonically via :meth:`new_value`; ``value_types``
    records the type of every value ever created.
    """

    def __init__(self, name: str, sig: Signature):
        self.name = name
        self.sig = sig
        self.blocks: Dict[int, Block] = {}
        self.entry: Optional[int] = None
        self.value_types: Dict[int, Type] = {}
        self._next_value = 0
        self._next_block = 0

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    def new_value(self, ty: Type) -> int:
        vid = self._next_value
        self._next_value += 1
        self.value_types[vid] = ty
        return vid

    def new_block(self) -> Block:
        block = Block(self._next_block)
        self._next_block = block.id + 1
        self.blocks[block.id] = block
        return block

    def add_block_param(self, block: Block, ty: Type) -> int:
        vid = self.new_value(ty)
        block.params.append((vid, ty))
        return vid

    def entry_block(self) -> Block:
        assert self.entry is not None, f"function {self.name} has no entry"
        return self.blocks[self.entry]

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def type_of(self, value: int) -> Type:
        return self.value_types[value]

    def num_blocks(self) -> int:
        return len(self.blocks)

    def num_instrs(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    def total_block_params(self) -> int:
        """Total block parameter count (excluding the entry block, whose
        parameters are the function's own)."""
        return sum(len(b.params) for b in self.blocks.values()
                   if b.id != self.entry)

    def used_values(self):
        """Yield every value id referenced as an operand anywhere."""
        for block in self.blocks.values():
            for instr in block.instrs:
                yield from instr.args
            if block.terminator is not None:
                yield from terminator_values(block.terminator)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} {self.sig} blocks={len(self.blocks)}>"
