"""Instructions, terminators, and the opcode table.

Values are plain integer ids allocated by the owning :class:`Function`.
An :class:`Instr` is a non-terminator operation; control flow is expressed
exclusively through the terminator classes (:class:`Jump`, :class:`BrIf`,
:class:`BrTable`, :class:`Ret`, :class:`Trap`), each of which names its
successor blocks explicitly via :class:`BlockCall` (a target block plus
the SSA values passed to its block parameters).

Integer semantics: ``i64`` values are stored as Python ints in
``[0, 2**64)`` (i.e. the unsigned bit pattern).  Signed operators
reinterpret via :func:`to_signed`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union

from repro.ir.types import Type, I64, F64

MASK64 = (1 << 64) - 1


def wrap_i64(value: int) -> int:
    """Wrap an arbitrary Python int to the unsigned 64-bit bit pattern."""
    return value & MASK64


def to_signed(value: int) -> int:
    """Reinterpret an unsigned 64-bit bit pattern as a signed integer."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def to_unsigned(value: int) -> int:
    """Alias of :func:`wrap_i64`, for readability at call sites."""
    return value & MASK64


@dataclasses.dataclass(frozen=True)
class OpInfo:
    """Static description of an opcode.

    ``arg_types`` may contain ``None`` entries for polymorphic operands
    (currently only ``select``'s value operands).  ``result`` is the result
    type, ``None`` for void ops, or the string ``"poly"`` when the result
    type follows the polymorphic operands.  ``pure`` ops have no side
    effects and may be removed when dead or folded to constants.
    """

    name: str
    arg_types: tuple
    result: Union[Type, str, None]
    pure: bool = True
    is_load: bool = False
    is_store: bool = False
    is_call: bool = False


def _binop_i(name: str) -> OpInfo:
    return OpInfo(name, (I64, I64), I64)


def _binop_f(name: str) -> OpInfo:
    return OpInfo(name, (F64, F64), F64)


def _cmp_f(name: str) -> OpInfo:
    return OpInfo(name, (F64, F64), I64)


_OP_LIST = [
    # Constants.  imm = int (unsigned bit pattern) or float.
    OpInfo("iconst", (), I64),
    OpInfo("fconst", (), F64),
    # Integer arithmetic / bitwise.
    _binop_i("iadd"),
    _binop_i("isub"),
    _binop_i("imul"),
    _binop_i("idiv_s"),
    _binop_i("idiv_u"),
    _binop_i("irem_s"),
    _binop_i("irem_u"),
    _binop_i("iand"),
    _binop_i("ior"),
    _binop_i("ixor"),
    _binop_i("ishl"),
    _binop_i("ishr_s"),
    _binop_i("ishr_u"),
    # Integer comparisons (result is 0 or 1).
    _binop_i("ieq"),
    _binop_i("ine"),
    _binop_i("ilt_s"),
    _binop_i("ilt_u"),
    _binop_i("ile_s"),
    _binop_i("ile_u"),
    _binop_i("igt_s"),
    _binop_i("igt_u"),
    _binop_i("ige_s"),
    _binop_i("ige_u"),
    # Float arithmetic.
    _binop_f("fadd"),
    _binop_f("fsub"),
    _binop_f("fmul"),
    _binop_f("fdiv"),
    OpInfo("fneg", (F64,), F64),
    OpInfo("fabs", (F64,), F64),
    OpInfo("fsqrt", (F64,), F64),
    OpInfo("ffloor", (F64,), F64),
    # Float comparisons.
    _cmp_f("feq"),
    _cmp_f("fne"),
    _cmp_f("flt"),
    _cmp_f("fle"),
    _cmp_f("fgt"),
    _cmp_f("fge"),
    # Conversions.
    OpInfo("itof", (I64,), F64),   # signed int -> float
    OpInfo("ftoi", (F64,), I64),   # truncate toward zero -> signed
    OpInfo("bits_ftoi", (F64,), I64),  # reinterpret bits
    OpInfo("bits_itof", (I64,), F64),  # reinterpret bits
    # Select: args (cond, if_true, if_false); value operands polymorphic.
    OpInfo("select", (I64, None, None), "poly"),
    # Memory.  imm = static byte offset added to the address operand.
    OpInfo("load8_u", (I64,), I64, pure=False, is_load=True),
    OpInfo("load8_s", (I64,), I64, pure=False, is_load=True),
    OpInfo("load16_u", (I64,), I64, pure=False, is_load=True),
    OpInfo("load16_s", (I64,), I64, pure=False, is_load=True),
    OpInfo("load32_u", (I64,), I64, pure=False, is_load=True),
    OpInfo("load32_s", (I64,), I64, pure=False, is_load=True),
    OpInfo("load64", (I64,), I64, pure=False, is_load=True),
    OpInfo("loadf64", (I64,), F64, pure=False, is_load=True),
    OpInfo("store8", (I64, I64), None, pure=False, is_store=True),
    OpInfo("store16", (I64, I64), None, pure=False, is_store=True),
    OpInfo("store32", (I64, I64), None, pure=False, is_store=True),
    OpInfo("store64", (I64, I64), None, pure=False, is_store=True),
    OpInfo("storef64", (I64, F64), None, pure=False, is_store=True),
    # Calls.  ``call``: imm = callee name, result type checked against the
    # module.  ``call_indirect``: imm = Signature; args[0] is the table
    # index.  Result type is stored on the instruction itself.
    OpInfo("call", (), "dynamic", pure=False, is_call=True),
    OpInfo("call_indirect", (), "dynamic", pure=False, is_call=True),
    # Globals (all i64).  imm = global name.
    OpInfo("global_get", (), I64, pure=False),
    OpInfo("global_set", (I64,), None, pure=False),
    # Speculation guard.  Three immediate forms:
    #
    # * ``int`` — the expected i64 constant (entry speculation).  Falls
    #   through when the operand equals the immediate; otherwise the
    #   activation is abandoned (GuardFailed) and the call deoptimizes
    #   to the function's registered generic fallback.
    # * ``(site, (v1, ..., vk))`` — a polymorphic *site* guard: falls
    #   through when the operand is a member of the value set, abandons
    #   the activation (GuardFailed with that ``site``) otherwise.
    # * ``(site, (v1, ..., vk), "resume")`` — a *resuming* site guard
    #   (materialized deopt state): on a miss it only notifies the VM's
    #   site-miss hook and falls through, so execution continues in
    #   place on an already-correct fallback path.
    #
    # Unwinding guards (the first two forms) re-run the generic function
    # on failure, which is only sound while nothing observable has
    # happened yet: the verifier enforces that no store/call/global_set
    # can execute on *any* path from function entry to such a guard
    # (pure ops and loads may precede them; their counter effects are
    # rolled back on deopt).  Resuming guards carry no such obligation —
    # control proceeds either way — so the inliner uses them at sites
    # whose prefix already has effects (see repro.opt.inline).
    OpInfo("guard", (I64,), None, pure=False),
]

OPCODES = {info.name: info for info in _OP_LIST}

# Ops eligible for constant folding in the specializer and optimizer.
FOLDABLE_INT_BINOPS = {
    "iadd", "isub", "imul", "idiv_s", "idiv_u", "irem_s", "irem_u",
    "iand", "ior", "ixor", "ishl", "ishr_s", "ishr_u",
    "ieq", "ine", "ilt_s", "ilt_u", "ile_s", "ile_u",
    "igt_s", "igt_u", "ige_s", "ige_u",
}
FOLDABLE_FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv",
                         "feq", "fne", "flt", "fle", "fgt", "fge"}
COMPARISON_OPS = {
    "ieq", "ine", "ilt_s", "ilt_u", "ile_s", "ile_u",
    "igt_s", "igt_u", "ige_s", "ige_u",
    "feq", "fne", "flt", "fle", "fgt", "fge",
}


# --- guard immediate helpers (shared by verifier, VM, emitter) -------------

def guard_site(imm) -> Optional[int]:
    """The deopt-attribution site id of a guard immediate (``None`` for
    the legacy entry-speculation ``int`` form)."""
    return imm[0] if isinstance(imm, tuple) else None


def guard_values(imm) -> tuple:
    """The admissible value set of a guard immediate."""
    return imm[1] if isinstance(imm, tuple) else (imm,)


def guard_is_resuming(imm) -> bool:
    """Whether a guard immediate is the resuming (notify-and-fall-through)
    form rather than an unwinding (GuardFailed) form."""
    return isinstance(imm, tuple) and len(imm) == 3 and imm[2] == "resume"


@dataclasses.dataclass
class Instr:
    """A non-terminator instruction.

    ``result`` is the defined value id or ``None`` for void ops.  ``imm``
    holds the static immediate: the constant for ``iconst``/``fconst``,
    the byte offset for memory ops, the callee name for ``call``, the
    :class:`~repro.ir.function.Signature` for ``call_indirect``, or the
    global name for global ops.
    """

    op: str
    result: Optional[int]
    args: tuple
    imm: object = None
    result_type: Optional[Type] = None

    def info(self) -> OpInfo:
        return OPCODES[self.op]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        res = f"v{self.result} = " if self.result is not None else ""
        args = ", ".join(f"v{a}" for a in self.args)
        imm = f" [{self.imm!r}]" if self.imm is not None else ""
        return f"{res}{self.op} {args}{imm}"


@dataclasses.dataclass
class BlockCall:
    """A CFG edge: target block id plus arguments for its parameters."""

    block: int
    args: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"v{a}" for a in self.args)
        return f"block{self.block}({args})"


@dataclasses.dataclass
class Jump:
    """Unconditional branch."""

    target: BlockCall

    def targets(self) -> Sequence[BlockCall]:
        return (self.target,)


@dataclasses.dataclass
class BrIf:
    """Conditional branch: taken when ``cond`` (i64) is non-zero."""

    cond: int
    if_true: BlockCall
    if_false: BlockCall

    def targets(self) -> Sequence[BlockCall]:
        return (self.if_true, self.if_false)


@dataclasses.dataclass
class BrTable:
    """Multi-way branch on ``index``; out-of-range goes to ``default``."""

    index: int
    cases: list
    default: BlockCall

    def targets(self) -> Sequence[BlockCall]:
        return tuple(self.cases) + (self.default,)


@dataclasses.dataclass
class Ret:
    """Function return; ``args`` must match the function's result types."""

    args: tuple = ()

    def targets(self) -> Sequence[BlockCall]:
        return ()


@dataclasses.dataclass
class Trap:
    """Abort execution with a message (Wasm ``unreachable``)."""

    message: str = "trap"

    def targets(self) -> Sequence[BlockCall]:
        return ()


Terminator = Union[Jump, BrIf, BrTable, Ret, Trap]


def terminator_values(term: Terminator):
    """Yield every SSA value id referenced by a terminator."""
    if isinstance(term, Jump):
        yield from term.target.args
    elif isinstance(term, BrIf):
        yield term.cond
        yield from term.if_true.args
        yield from term.if_false.args
    elif isinstance(term, BrTable):
        yield term.index
        for case in term.cases:
            yield from case.args
        yield from term.default.args
    elif isinstance(term, Ret):
        yield from term.args


def map_terminator_values(term: Terminator, fn) -> Terminator:
    """Return a copy of ``term`` with every value id rewritten by ``fn``."""

    def map_call(call: BlockCall) -> BlockCall:
        return BlockCall(call.block, tuple(fn(a) for a in call.args))

    if isinstance(term, Jump):
        return Jump(map_call(term.target))
    if isinstance(term, BrIf):
        return BrIf(fn(term.cond), map_call(term.if_true), map_call(term.if_false))
    if isinstance(term, BrTable):
        return BrTable(fn(term.index), [map_call(c) for c in term.cases],
                       map_call(term.default))
    if isinstance(term, Ret):
        return Ret(tuple(fn(a) for a in term.args))
    if isinstance(term, Trap):
        return Trap(term.message)
    raise TypeError(f"not a terminator: {term!r}")
