"""Modules: functions, linear memory, function table, globals, imports.

A module corresponds to a Wasm module in the paper's prototype: it owns a
single linear memory (whose initial contents act as the "snapshot" that
the weval transform may treat as constant), a table of functions used by
``call_indirect``, and named mutable globals (all i64).

Host functions (imports) are Python callables invoked by the VM.  The
``weval.*`` intrinsics are declared as imports, matching the paper's
argument that intrinsic calls survive optimization because they are
external functions (S3, footnote 2).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.ir.function import Function, Signature


@dataclasses.dataclass
class HostFunc:
    """An imported function implemented by the host (Python).

    ``fn`` receives ``(vm, *args)`` and returns an int/float or ``None``
    according to ``sig``.  ``vm`` is the executing
    :class:`repro.vm.machine.VM` so host functions can touch memory.
    """

    name: str
    sig: Signature
    fn: Callable


class Module:
    """A compilation unit: functions + memory + table + globals."""

    NULL_TABLE_INDEX = 0

    def __init__(self, memory_size: int = 1 << 20):
        self.functions: Dict[str, Function] = {}
        self.imports: Dict[str, HostFunc] = {}
        # Table slot 0 is reserved as "null"; calling it traps.
        self.table: List[Optional[str]] = [None]
        self.globals: Dict[str, int] = {}
        self.memory_size = memory_size
        self.memory_init = bytearray(memory_size)

    # ------------------------------------------------------------------
    # Functions and imports.
    # ------------------------------------------------------------------
    def add_function(self, func: Function) -> Function:
        if func.name in self.functions or func.name in self.imports:
            raise ValueError(f"duplicate function name: {func.name}")
        self.functions[func.name] = func
        return func

    def add_import(self, host: HostFunc) -> HostFunc:
        if host.name in self.functions or host.name in self.imports:
            raise ValueError(f"duplicate import name: {host.name}")
        self.imports[host.name] = host
        return host

    def signature_of(self, name: str) -> Signature:
        if name in self.functions:
            return self.functions[name].sig
        if name in self.imports:
            return self.imports[name].sig
        raise KeyError(f"unknown function: {name}")

    def has_function(self, name: str) -> bool:
        return name in self.functions or name in self.imports

    # ------------------------------------------------------------------
    # Table.
    # ------------------------------------------------------------------
    def add_table_entry(self, name: str) -> int:
        """Append ``name`` to the function table; return its index."""
        if not self.has_function(name):
            raise KeyError(f"cannot table unknown function: {name}")
        self.table.append(name)
        return len(self.table) - 1

    # ------------------------------------------------------------------
    # Globals.
    # ------------------------------------------------------------------
    def add_global(self, name: str, init: int = 0) -> None:
        if name in self.globals:
            raise ValueError(f"duplicate global: {name}")
        self.globals[name] = init

    # ------------------------------------------------------------------
    # Memory initialization helpers.
    # ------------------------------------------------------------------
    def write_init(self, addr: int, data: bytes) -> None:
        """Write bytes into the initial memory image."""
        end = addr + len(data)
        if end > self.memory_size:
            raise ValueError(f"init data [{addr}, {end}) exceeds memory")
        self.memory_init[addr:end] = data

    def write_init_u64(self, addr: int, value: int) -> None:
        self.write_init(addr, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_init_u64(self, addr: int) -> int:
        return int.from_bytes(self.memory_init[addr:addr + 8], "little")

    # ------------------------------------------------------------------
    # Size metrics (for the S6.4 code-size experiment).
    # ------------------------------------------------------------------
    def code_size(self) -> int:
        """A deterministic proxy for module byte size: total instruction
        count plus per-block and per-function overhead."""
        size = 0
        for func in self.functions.values():
            size += 4  # function header
            for block in func.blocks.values():
                size += 2 + len(block.params)
                size += sum(2 for _ in block.instrs)
                size += 2  # terminator
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Module funcs={len(self.functions)} "
                f"imports={len(self.imports)} table={len(self.table)}>")
