"""Textual printing of IR functions and modules.

The format is stable and used in golden tests (e.g. the Fig. 6 analog,
which checks that a specialized interpreter's CFG follows the bytecode).
"""

from __future__ import annotations

from typing import List

from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function, Signature
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)
from repro.ir.module import Module


def _fmt_call(call: BlockCall) -> str:
    if not call.args:
        return f"block{call.block}"
    args = ", ".join(f"v{a}" for a in call.args)
    return f"block{call.block}({args})"


def _fmt_imm(instr: Instr) -> str:
    imm = instr.imm
    if imm is None:
        return ""
    if instr.op in ("iconst",):
        return f" {imm}"
    if instr.op in ("fconst",):
        return f" {imm!r}"
    if instr.op == "call":
        return f" @{imm}"
    if instr.op == "call_indirect":
        return f" sig{imm}"
    if instr.op in ("global_get", "global_set"):
        return f" ${imm}"
    if instr.op == "guard":
        return f" expect {imm}"
    if isinstance(imm, int):
        return f" +{imm}" if imm else ""
    return f" {imm!r}"


def _fmt_instr(instr: Instr) -> str:
    parts: List[str] = []
    if instr.result is not None:
        parts.append(f"v{instr.result} = ")
    parts.append(instr.op)
    parts.append(_fmt_imm(instr))
    if instr.args:
        parts.append(" " + ", ".join(f"v{a}" for a in instr.args))
    return "".join(parts)


def _fmt_terminator(term) -> str:
    if isinstance(term, Jump):
        return f"jump {_fmt_call(term.target)}"
    if isinstance(term, BrIf):
        return (f"br_if v{term.cond}, {_fmt_call(term.if_true)}, "
                f"{_fmt_call(term.if_false)}")
    if isinstance(term, BrTable):
        cases = ", ".join(_fmt_call(c) for c in term.cases)
        return (f"br_table v{term.index}, [{cases}], "
                f"default {_fmt_call(term.default)}")
    if isinstance(term, Ret):
        if term.args:
            return "return " + ", ".join(f"v{a}" for a in term.args)
        return "return"
    if isinstance(term, Trap):
        return f"trap {term.message!r}"
    return "<unterminated>"


def print_function(func: Function, order: str = "rpo") -> str:
    """Render a function to text.  ``order`` is ``"rpo"`` (reachable blocks
    in reverse post-order) or ``"id"`` (all blocks by id)."""
    lines: List[str] = []
    params = ", ".join(f"v{v}: {t}" for v, t in func.entry_block().params)
    results = ", ".join(str(t) for t in func.sig.results)
    arrow = f" -> {results}" if results else ""
    lines.append(f"func @{func.name}({params}){arrow} {{")
    if order == "rpo":
        block_ids = reverse_postorder(func)
    else:
        block_ids = sorted(func.blocks)
    for bid in block_ids:
        block = func.blocks[bid]
        if block.params and bid != func.entry:
            params = ", ".join(f"v{v}: {t}" for v, t in block.params)
            lines.append(f"block{bid}({params}):")
        else:
            lines.append(f"block{bid}:")
        for instr in block.instrs:
            lines.append(f"  {_fmt_instr(instr)}")
        lines.append(f"  {_fmt_terminator(block.terminator)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines: List[str] = []
    for host in module.imports.values():
        lines.append(f"import @{host.name}{host.sig}")
    for name, init in sorted(module.globals.items()):
        lines.append(f"global ${name} = {init}")
    for i, entry in enumerate(module.table):
        if entry is not None:
            lines.append(f"table[{i}] = @{entry}")
    for func in module.functions.values():
        lines.append(print_function(func))
    return "\n".join(lines)
