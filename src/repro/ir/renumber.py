"""Canonical renumbering of IR functions.

The specializer's fixpoint engine mints value and block ids as it
(re)builds blocks, so the raw numbering encodes the *history* of the
fixpoint computation: how many times each block was re-flowed, in what
order keys were processed, which transient successors were discovered
and later abandoned.  Canonicalization erases that history — blocks are
renumbered in reverse postorder from the entry, values in first-definition
order within that block order, and unreachable debris is dropped — so two
runs that converge to the same fixpoint produce byte-identical printed
IR regardless of worklist policy, revisit counts, or damper activity.

This is what lets the transform-speed work (priority worklists, skipped
meets, dirty-set scheduling) be verified bit-exact against a forced
exhaustive re-flow: both modes funnel through :func:`canonicalize_function`
before anything downstream (printer fingerprints, artifact store, backend
emitter) sees the function.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import reverse_postorder
from repro.ir.function import Block, Function
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)


def canonicalize_function(func: Function) -> Function:
    """Renumber ``func`` in place into canonical form; returns ``func``.

    Blocks: reverse postorder over reachable blocks (entry becomes 0);
    unreachable blocks are removed.  Values: order of first definition
    (block params, then instruction results) walking blocks in the new
    order.  ``value_types`` is rebuilt to cover exactly the surviving
    definitions, so stale ids from abandoned rebuilds disappear.

    Every operand of a reachable block must be defined by a reachable
    block (SSA dominance guarantees this for valid IR); a violation
    raises ``KeyError`` loudly rather than renumbering nonsense.
    """
    if func.entry is None:
        return func
    order = reverse_postorder(func)
    block_map: Dict[int, int] = {bid: i for i, bid in enumerate(order)}
    value_map: Dict[int, int] = {}

    for bid in order:
        block = func.blocks[bid]
        for vid, _ty in block.params:
            if vid not in value_map:
                value_map[vid] = len(value_map)
        for instr in block.instrs:
            if instr.result is not None and instr.result not in value_map:
                value_map[instr.result] = len(value_map)

    def map_call(call: BlockCall) -> BlockCall:
        return BlockCall(block_map[call.block],
                         tuple(value_map[a] for a in call.args))

    def map_terminator(term):
        if term is None:
            return None
        if isinstance(term, Jump):
            return Jump(map_call(term.target))
        if isinstance(term, BrIf):
            return BrIf(value_map[term.cond], map_call(term.if_true),
                        map_call(term.if_false))
        if isinstance(term, BrTable):
            return BrTable(value_map[term.index],
                           [map_call(c) for c in term.cases],
                           map_call(term.default))
        if isinstance(term, Ret):
            return Ret(tuple(value_map[a] for a in term.args))
        if isinstance(term, Trap):
            return Trap(term.message)
        raise TypeError(f"not a terminator: {term!r}")

    new_blocks: Dict[int, Block] = {}
    new_types: Dict[int, object] = {}
    for bid in order:
        block = func.blocks[bid]
        new_block = Block(block_map[bid])
        new_block.params = [(value_map[v], ty) for v, ty in block.params]
        instrs: List[Instr] = []
        for instr in block.instrs:
            result: Optional[int] = (value_map[instr.result]
                                     if instr.result is not None else None)
            instrs.append(Instr(instr.op, result,
                                tuple(value_map[a] for a in instr.args),
                                instr.imm, instr.result_type))
        new_block.instrs = instrs
        new_block.terminator = map_terminator(block.terminator)
        new_blocks[new_block.id] = new_block

    for old, new in value_map.items():
        new_types[new] = func.value_types[old]

    func.blocks = new_blocks
    func.entry = 0
    func.value_types = new_types
    func._next_value = len(value_map)
    func._next_block = len(order)
    return func
