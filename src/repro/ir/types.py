"""Value types for the IR.

The IR is intentionally minimal: two value types, 64-bit integers and
64-bit floats.  Pointers, booleans, opcodes, and NaN-boxed dynamic values
are all represented as ``i64``.  This mirrors the paper's Wasm substrate,
where the interpreters under specialization traffic almost exclusively in
``i64``/``f64`` after compilation from C.
"""

from __future__ import annotations

import enum


class Type(enum.Enum):
    """An IR value type."""

    I64 = "i64"
    F64 = "f64"

    def __str__(self) -> str:
        return self.value


I64 = Type.I64
F64 = Type.F64
