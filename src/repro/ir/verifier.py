"""IR verification: structural, type, and SSA dominance checks.

The specializer's output is always run through the verifier in tests;
this is the main line of defence for the "semantics-preserving" claim.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.cfg import predecessors, reachable_blocks
from repro.ir.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    OPCODES,
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
    guard_is_resuming,
    terminator_values,
)
from repro.ir.module import Module
from repro.ir.types import I64, Type


class VerificationError(Exception):
    """Raised when a function or module fails verification."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise VerificationError(message)


def verify_function(func: Function, module: Module = None) -> None:
    """Verify one function.

    Checks:
      * entry block exists and its params match the signature;
      * every reachable block has a terminator;
      * branch argument counts/types match target block parameters;
      * operand counts/types match each opcode's :class:`OpInfo`;
      * every used value has a definition;
      * defs dominate uses (SSA validity).
    """
    _check(func.entry is not None, f"{func.name}: no entry block")
    _check(func.entry in func.blocks,
           f"{func.name}: entry block{func.entry} does not exist")
    entry = func.entry_block()
    entry_types = tuple(t for _, t in entry.params)
    _check(entry_types == func.sig.params,
           f"{func.name}: entry params {entry_types} != sig {func.sig.params}")

    # Structural pre-scan: every edge must name an existing block, or the
    # reachability traversal below would crash instead of reporting.
    for bid, block in func.blocks.items():
        if block.terminator is None:
            continue
        for call in block.terminator.targets():
            _check(call.block in func.blocks,
                   f"{func.name}/block{bid}: branch to unknown "
                   f"block{call.block}")

    reachable = reachable_blocks(func)

    # Collect definitions: block of definition for each value.
    def_block: Dict[int, int] = {}
    def_index: Dict[int, int] = {}
    for bid in reachable:
        block = func.blocks[bid]
        for value, ty in block.params:
            _check(value not in def_block,
                   f"{func.name}: value v{value} defined twice")
            def_block[value] = bid
            def_index[value] = -1
            _check(func.value_types.get(value) == ty,
                   f"{func.name}: block param v{value} type mismatch")
        for i, instr in enumerate(block.instrs):
            if instr.result is not None:
                _check(instr.result not in def_block,
                       f"{func.name}: value v{instr.result} defined twice")
                def_block[instr.result] = bid
                def_index[instr.result] = i

    # Structural and type checks per block.
    clean_in = _effect_free_dataflow(func, reachable)
    for bid in reachable:
        block = func.blocks[bid]
        _check(block.terminator is not None,
               f"{func.name}: block{bid} lacks a terminator")
        clean = clean_in[bid]
        for i, instr in enumerate(block.instrs):
            _verify_instr(func, module, bid, i, instr, def_block)
            if instr.op == "guard" and not guard_is_resuming(instr.imm):
                # Deopt safety: a failed unwinding guard abandons the
                # activation and re-runs the generic function, which is
                # only sound while nothing observable has happened yet.
                # The rule is path-based — no store/call/global_set may
                # execute on *any* path from function entry to the guard
                # (pure ops and loads may precede it; their counter
                # effects are rolled back on deopt).  Resuming guards
                # (``(site, values, "resume")``) are exempt: on a miss
                # control continues in place, so the prefix is never
                # abandoned.
                _check(clean,
                       f"{func.name}/block{bid}[{i}]: unwinding guard "
                       f"reachable after a side-effecting instruction")
            info = OPCODES.get(instr.op)
            if info is not None and (info.is_store or info.is_call
                                     or instr.op == "global_set"):
                clean = False
        _verify_terminator(func, bid, block.terminator, def_block)

    # Dominance checks.
    domtree = DominatorTree(func)
    for bid in reachable:
        block = func.blocks[bid]
        for i, instr in enumerate(block.instrs):
            for arg in instr.args:
                _verify_dominance(func, domtree, def_block, def_index,
                                  bid, i, arg)
        for value in terminator_values(block.terminator):
            _verify_dominance(func, domtree, def_block, def_index,
                              bid, len(block.instrs), value)


def _effect_free_dataflow(func: Function, reachable) -> Dict[int, bool]:
    """``clean_in[b]``: no store/call/global_set can have executed on any
    entry→``b`` path.  Forward AND-dataflow from an optimistic start, so
    the fixpoint is exact on loops (an effect anywhere on a cycle makes
    every block the cycle reaches dirty)."""
    has_effect: Dict[int, bool] = {}
    for bid in reachable:
        effect = False
        for instr in func.blocks[bid].instrs:
            info = OPCODES.get(instr.op)
            if info is not None and (info.is_store or info.is_call
                                     or instr.op == "global_set"):
                effect = True
                break
        has_effect[bid] = effect
    preds = predecessors(func)
    clean_in = {bid: True for bid in reachable}
    changed = True
    while changed:
        changed = False
        for bid in reachable:
            if bid == func.entry:
                continue
            value = all(clean_in[p] and not has_effect[p]
                        for p in preds.get(bid, ()) if p in clean_in)
            if value != clean_in[bid]:
                clean_in[bid] = value
                changed = True
    return clean_in


def _verify_guard_imm(name: str, imm) -> None:
    """Validate a guard immediate: legacy ``int``, polymorphic
    ``(site, values)``, or resuming ``(site, values, "resume")``."""
    if isinstance(imm, int) and not isinstance(imm, bool):
        _check(0 <= imm < (1 << 64),
               f"{name}: guard imm must be an unsigned i64 constant")
        return
    _check(isinstance(imm, tuple) and len(imm) in (2, 3),
           f"{name}: guard imm must be an unsigned i64 constant or a "
           f"(site, values[, \"resume\"]) tuple")
    site, values = imm[0], imm[1]
    _check(isinstance(site, int) and not isinstance(site, bool)
           and site >= 0,
           f"{name}: guard site must be a non-negative int")
    _check(isinstance(values, tuple) and len(values) >= 1,
           f"{name}: guard value set must be a non-empty tuple")
    previous = -1
    for value in values:
        _check(isinstance(value, int) and not isinstance(value, bool)
               and 0 <= value < (1 << 64),
               f"{name}: guard value set entries must be unsigned i64")
        _check(value > previous,
               f"{name}: guard value set must be strictly increasing")
        previous = value
    if len(imm) == 3:
        _check(imm[2] == "resume",
               f"{name}: third guard imm element must be \"resume\"")


def _verify_instr(func: Function, module, bid: int, index: int,
                  instr: Instr, def_block: Dict[int, int]) -> None:
    _check(instr.op in OPCODES, f"{func.name}: unknown opcode {instr.op}")
    info = OPCODES[instr.op]
    name = f"{func.name}/block{bid}[{index}]"
    if instr.op == "call":
        _check(isinstance(instr.imm, str), f"{name}: call imm must be a name")
        if module is not None:
            _check(module.has_function(instr.imm),
                   f"{name}: call of unknown function {instr.imm}")
            sig = module.signature_of(instr.imm)
            _check(len(instr.args) == len(sig.params),
                   f"{name}: call arg count {len(instr.args)} != "
                   f"{len(sig.params)}")
            for arg, ty in zip(instr.args, sig.params):
                _check(func.value_types.get(arg) == ty,
                       f"{name}: call arg v{arg} type mismatch")
            if sig.results:
                _check(instr.result is not None and
                       instr.result_type == sig.results[0],
                       f"{name}: call result type mismatch")
        return
    if instr.op == "call_indirect":
        _check(len(instr.args) >= 1, f"{name}: call_indirect needs an index")
        sig = instr.imm
        _check(len(instr.args) - 1 == len(sig.params),
               f"{name}: call_indirect arg count mismatch")
        return
    if instr.op in ("global_get", "global_set"):
        if module is not None:
            _check(instr.imm in module.globals,
                   f"{name}: unknown global {instr.imm}")
    if instr.op == "guard":
        _verify_guard_imm(name, instr.imm)
        _check(instr.result is None, f"{name}: guard has no result")
    # Fixed-arity ops.
    _check(len(instr.args) == len(info.arg_types),
           f"{name}: {instr.op} expects {len(info.arg_types)} args, "
           f"got {len(instr.args)}")
    for arg, expected in zip(instr.args, info.arg_types):
        _check(arg in func.value_types, f"{name}: undefined value v{arg}")
        if expected is not None:
            _check(func.value_types[arg] == expected,
                   f"{name}: operand v{arg} has type "
                   f"{func.value_types[arg]}, expected {expected}")
    if info.result == "poly":
        _check(func.value_types[instr.args[1]] ==
               func.value_types[instr.args[2]],
               f"{name}: select operands disagree in type")


def _verify_terminator(func: Function, bid: int, term,
                       def_block: Dict[int, int]) -> None:
    name = f"{func.name}/block{bid}"

    def check_call(call: BlockCall) -> None:
        _check(call.block in func.blocks,
               f"{name}: branch to unknown block{call.block}")
        params = func.blocks[call.block].params
        _check(len(call.args) == len(params),
               f"{name}: branch to block{call.block} passes "
               f"{len(call.args)} args, expects {len(params)}")
        for arg, (_, ty) in zip(call.args, params):
            _check(func.value_types.get(arg) == ty,
                   f"{name}: branch arg v{arg} type mismatch to "
                   f"block{call.block}")

    if isinstance(term, (Jump, BrIf, BrTable)):
        for call in term.targets():
            check_call(call)
        if isinstance(term, BrIf):
            _check(func.value_types.get(term.cond) == I64,
                   f"{name}: br_if condition must be i64")
        if isinstance(term, BrTable):
            _check(func.value_types.get(term.index) == I64,
                   f"{name}: br_table index must be i64")
    elif isinstance(term, Ret):
        _check(len(term.args) == len(func.sig.results),
               f"{name}: return arity mismatch")
        for arg, ty in zip(term.args, func.sig.results):
            _check(func.value_types.get(arg) == ty,
                   f"{name}: return value v{arg} type mismatch")
    elif isinstance(term, Trap):
        pass
    else:
        raise VerificationError(f"{name}: bad terminator {term!r}")


def _verify_dominance(func: Function, domtree: DominatorTree,
                      def_block: Dict[int, int], def_index: Dict[int, int],
                      use_block: int, use_index: int, value: int) -> None:
    _check(value in def_block,
           f"{func.name}: use of undefined value v{value} in "
           f"block{use_block}")
    dblock = def_block[value]
    if dblock == use_block:
        _check(def_index[value] < use_index,
               f"{func.name}: v{value} used before defined in "
               f"block{use_block}")
    else:
        _check(domtree.dominates(dblock, use_block),
               f"{func.name}: def of v{value} in block{dblock} does not "
               f"dominate use in block{use_block}")


def verify_module(module: Module) -> None:
    """Verify every function in a module, plus table entries."""
    for entry in module.table:
        if entry is not None:
            _check(module.has_function(entry),
                   f"table entry {entry} is not a function")
    for func in module.functions.values():
        verify_function(func, module)
