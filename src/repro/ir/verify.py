"""Debug-mode IR verification entry points for the optimizer mid-end.

The full checker lives in :mod:`repro.ir.verifier` (SSA dominance of
uses, terminator well-formedness, block-param/argument arity, operand
and result type agreement).  This module is the pass manager's view of
it: :func:`verify_after_pass` wraps a failure with the name of the pass
that produced the malformed function, so a broken rewrite is pinned to
its author instead of surfacing as a downstream miscompile.

Enable verification after every pass either explicitly
(``PassManager(..., verify=True)``) or globally via the
``REPRO_OPT_VERIFY=1`` environment variable.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.ir.function import Function
from repro.ir.verifier import (
    VerificationError,
    verify_function,
    verify_module,
)

__all__ = [
    "VerificationError",
    "verify_function",
    "verify_module",
    "verify_after_pass",
    "verify_enabled_by_env",
]

VERIFY_ENV = "REPRO_OPT_VERIFY"


def verify_enabled_by_env() -> bool:
    """True when the environment opts into verify-after-every-pass."""
    return os.environ.get(VERIFY_ENV, "") not in ("", "0")


def verify_after_pass(func: Function, module=None,
                      pass_name: Optional[str] = None) -> None:
    """Verify ``func``, attributing any failure to ``pass_name``."""
    try:
        verify_function(func, module)
    except VerificationError as exc:
        label = f" after pass {pass_name!r}" if pass_name else ""
        raise VerificationError(
            f"IR verification failed{label}: {exc}") from exc
