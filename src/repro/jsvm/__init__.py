"""MiniJS: the S6 case study (SpiderMonkey/PBL analog).

A dynamic language engine with:

* NaN-boxed 64-bit values (:mod:`repro.jsvm.values`);
* shape-based objects with host-managed shape transitions
  (:mod:`repro.jsvm.shapes`);
* a stack bytecode compiled from a JS-like source language
  (:mod:`repro.jsvm.frontend`);
* **two interpreter loops in mini-C** — JS bytecode and CacheIR — as in
  SpiderMonkey's Portable Baseline Interpreter, in generic and
  state-intrinsic variants (:mod:`repro.jsvm.interp_src`);
* inline-cache chains whose stubs are CacheIR sequences, pre-collected
  into an AOT *IC corpus* and attached to sites at run time by the slow
  path — the paper's key insight that ICs push dynamism into late-bound
  data (:mod:`repro.jsvm.runtime`);
* pure-Python "native platform" tiers for the Fig. 12 comparison
  (:mod:`repro.jsvm.native`).
"""

from repro.jsvm.runtime import JSRuntime, JSCompileError

__all__ = ["JSRuntime", "JSCompileError"]
