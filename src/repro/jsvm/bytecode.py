"""MiniJS stack bytecode.

Instructions are two 64-bit words ``[op, a]`` with an optional third for
the few two-operand ops — for simplicity every instruction is three
words ``[op, a, b]``.  The operand stack lives above the locals in the
function's frame; the compiler tracks the static stack depth, so frame
sizes are known ahead of time (and, under specialization, the stack
pointer is a compile-time constant at every pc — which is what makes
the virtualized-stack intrinsics effective).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List

WORDS_PER_INSTR = 3


class Op(enum.IntEnum):
    LOADK = 0        # push consts[a]
    LOADLOCAL = 1    # push locals[a]
    STORELOCAL = 2   # locals[a] = pop
    POP = 3
    DUP = 4
    ADD = 5          # binary arithmetic: double fast path inline
    SUB = 6
    MUL = 7
    DIV = 8
    MOD = 9
    LT = 10
    LE = 11
    GT = 12
    GE = 13
    EQ = 14
    NE = 15
    JMP = 16         # pc = a
    JMPF = 17        # if falsy(pop): pc = a
    CALL = 18        # a = function id, b = nargs (including `this`)
    CALLV = 19       # b = nargs; stack: [fn, this, args...]
    RET = 20         # return pop
    GETPROP = 21     # a = name id, b = IC site index; pops obj
    SETPROP = 22     # a = name id, b = IC site index; pops obj, value
    NEWOBJ = 23      # a = shape id, b = nprops; pops nprops values
    NEWARR = 24      # pops length (double); pushes array
    GETIDX = 25      # pops idx, arr
    SETIDX = 26      # pops value, idx, arr
    LEN = 27         # pops arr, pushes length
    PRINT = 28       # pops and prints (host call)
    NEG = 29
    NOT = 30
    SWAP = 31
    SQRT = 32
    FLOOR = 33
    ABS = 34
    HOSTCALL2 = 35  # a = host function id; pops two args (host slow call)


@dataclasses.dataclass
class JSFunction:
    """One compiled MiniJS function (bytecode + metadata).

    ``num_params`` includes the implicit ``this`` parameter (slot 0).
    ``frame_slots`` is locals + maximum operand-stack depth: the callee
    frame begins that many slots above the caller's.
    """

    name: str
    index: int
    num_params: int
    num_locals: int = 0
    max_stack: int = 0
    num_ic_sites: int = 0
    code: List[int] = dataclasses.field(default_factory=list)
    constants: List[int] = dataclasses.field(default_factory=list)

    @property
    def frame_slots(self) -> int:
        return self.num_locals + self.max_stack

    def emit(self, op: Op, a: int = 0, b: int = 0) -> int:
        pc = len(self.code)
        mask = (1 << 64) - 1
        self.code.extend([int(op), a & mask, b & mask])
        return pc

    def patch(self, pc: int, operand: int, value: int) -> None:
        self.code[pc + operand] = value & ((1 << 64) - 1)

    def here(self) -> int:
        return len(self.code)

    def const_index(self, boxed: int) -> int:
        try:
            return self.constants.index(boxed)
        except ValueError:
            self.constants.append(boxed)
            return len(self.constants) - 1

    def new_ic_site(self) -> int:
        site = self.num_ic_sites
        self.num_ic_sites += 1
        return site


def disassemble(func: JSFunction) -> str:
    lines = [f"function {func.name} (params={func.num_params}, "
             f"locals={func.num_locals}, max_stack={func.max_stack})"]
    for pc in range(0, len(func.code), WORDS_PER_INSTR):
        op, a, b = func.code[pc:pc + WORDS_PER_INSTR]
        lines.append(f"  {pc:4d}: {Op(op).name:10s} {a} {b}")
    return "\n".join(lines)
