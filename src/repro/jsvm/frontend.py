"""MiniJS frontend: lexer, parser, and bytecode compiler.

A JavaScript-subset language: top-level ``function`` declarations,
``var`` (function-scoped), ``if``/``else``, ``while``, ``for``,
``return``, object and array literals, property and index access,
method calls (with ``this``), first-class function references, numbers
(doubles), booleans, ``null``/``undefined``, and ``print``.
``Math.sqrt/floor/abs`` map to dedicated opcodes.  Assignments are
statements (not expressions); closures, ``new``, strings, and
prototypes are out of scope — the workloads use factory functions and
method properties instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.jsvm.bytecode import JSFunction, Op
from repro.jsvm.shapes import NameTable, ShapeTable
from repro.jsvm.values import (
    VALUE_NULL,
    VALUE_UNDEFINED,
    box_bool,
    box_double,
    box_function,
)


class JSCompileError(Exception):
    pass


KEYWORDS = {"function", "var", "if", "else", "while", "for", "return",
            "true", "false", "null", "undefined", "this", "break"}

_OPS = ["===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
        "+=", "-=", "*=", "/=", "%=",
        "<", ">", "+", "-", "*", "/", "%", "!", "=", "(", ")", "{", "}",
        "[", "]", ";", ",", ".", ":"]


@dataclasses.dataclass(frozen=True)
class Tok:
    kind: str
    text: str
    line: int
    value: Optional[float] = None


def tokenize(source: str) -> List[Tok]:
    toks: List[Tok] = []
    i, line, n = 0, 1, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise JSCompileError(f"line {line}: unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch in "_$":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            text = source[start:i]
            toks.append(Tok("keyword" if text in KEYWORDS else "ident",
                            text, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] in ".eE" or
                             (source[i] in "+-" and source[i - 1] in "eE")):
                i += 1
            toks.append(Tok("num", source[start:i], line,
                            float(source[start:i])))
            continue
        for op in _OPS:
            if source.startswith(op, i):
                toks.append(Tok("op", op, line))
                i += len(op)
                break
        else:
            raise JSCompileError(f"line {line}: bad character {ch!r}")
    toks.append(Tok("eof", "", line))
    return toks


@dataclasses.dataclass
class CompiledJS:
    functions: List[JSFunction]      # index 0 is top-level main
    names: NameTable
    shapes: ShapeTable


class Compiler:
    """Single-pass parser + bytecode emitter (per function)."""

    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0
        self.names = NameTable()
        self.shapes = ShapeTable()
        self.function_ids: Dict[str, int] = {}
        self.functions: List[JSFunction] = []

    # -- token helpers -----------------------------------------------------
    def peek(self, offset: int = 0) -> Tok:
        return self.toks[min(self.pos + offset, len(self.toks) - 1)]

    def next(self) -> Tok:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Tok]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Tok:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise JSCompileError(
                f"line {tok.line}: expected {text or kind!r}, found "
                f"{tok.text!r}")
        return self.next()

    # -- driver ------------------------------------------------------------
    def compile(self) -> CompiledJS:
        # Pass 1: collect function names so forward references resolve.
        save = self.pos
        while self.peek().kind != "eof":
            tok = self.next()
            if tok.kind == "keyword" and tok.text == "function":
                name = self.expect("ident").text
                if name in self.function_ids:
                    raise JSCompileError(f"duplicate function {name!r}")
                self.function_ids[name] = len(self.functions) + 1
                self.functions.append(None)  # placeholder
        self.pos = save

        main = JSFunction("main", 0, num_params=1)  # implicit `this`
        self.functions.insert(0, main)
        # Re-map collected ids (main occupies index 0).
        emitter = _FunctionEmitter(self, main, [])
        while self.peek().kind != "eof":
            if self.peek().text == "function":
                self.compile_function()
            else:
                emitter.statement()
        emitter.finish()
        return CompiledJS(self.functions, self.names, self.shapes)

    def compile_function(self) -> None:
        self.expect("keyword", "function")
        name = self.expect("ident").text
        index = self.function_ids[name]
        self.expect("op", "(")
        params: List[str] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        func = JSFunction(name, index, num_params=len(params) + 1)
        self.functions[index] = func
        emitter = _FunctionEmitter(self, func, params)
        self.expect("op", "{")
        while not self.accept("op", "}"):
            emitter.statement()
        emitter.finish()


class _FunctionEmitter:
    def __init__(self, compiler: Compiler, func: JSFunction,
                 params: List[str]):
        self.c = compiler
        self.func = func
        self.locals: Dict[str, int] = {"this": 0}
        for i, param in enumerate(params):
            self.locals[param] = i + 1
        func.num_locals = len(params) + 1
        self.depth = 0
        self.break_patches: List[List[int]] = []

    # -- emit helpers (track operand-stack depth) ---------------------------
    def emit(self, op: Op, a: int = 0, b: int = 0, delta: int = 0) -> int:
        pc = self.func.emit(op, a, b)
        self.depth += delta
        if self.depth < 0:
            raise JSCompileError(
                f"internal: stack underflow in {self.func.name}")
        self.func.max_stack = max(self.func.max_stack, self.depth)
        return pc

    def local_slot(self, name: str, declare: bool = False) -> int:
        if name in self.locals:
            return self.locals[name]
        if not declare:
            raise JSCompileError(
                f"{self.func.name}: undeclared variable {name!r}")
        slot = self.func.num_locals
        self.func.num_locals += 1
        self.locals[name] = slot
        return slot

    def finish(self) -> None:
        # Implicit `return undefined`.
        self.emit(Op.LOADK,
                  self.func.const_index(VALUE_UNDEFINED), delta=1)
        self.emit(Op.RET, delta=-1)

    # -- statements ----------------------------------------------------------
    def statement(self) -> None:
        tok = self.c.peek()
        if tok.text == "var":
            self.c.next()
            name = self.c.expect("ident").text
            slot = self.local_slot(name, declare=True)
            if self.c.accept("op", "="):
                self.expression()
            else:
                self.emit(Op.LOADK,
                          self.func.const_index(VALUE_UNDEFINED), delta=1)
            self.emit(Op.STORELOCAL, slot, delta=-1)
            self.c.expect("op", ";")
            return
        if tok.text == "if":
            self._if_statement()
            return
        if tok.text == "while":
            self.c.next()
            self.c.expect("op", "(")
            top = self.func.here()
            self.expression()
            self.c.expect("op", ")")
            exit_jump = self.emit(Op.JMPF, 0, delta=-1)
            self.break_patches.append([])
            self._block_or_stmt()
            self.emit(Op.JMP, top)
            after = self.func.here()
            self.func.patch(exit_jump, 1, after)
            for pc in self.break_patches.pop():
                self.func.patch(pc, 1, after)
            return
        if tok.text == "for":
            self._for_statement()
            return
        if tok.text == "return":
            self.c.next()
            if self.c.accept("op", ";"):
                self.emit(Op.LOADK,
                          self.func.const_index(VALUE_UNDEFINED), delta=1)
            else:
                self.expression()
                self.c.expect("op", ";")
            self.emit(Op.RET, delta=-1)
            return
        if tok.text == "break":
            self.c.next()
            self.c.expect("op", ";")
            if not self.break_patches:
                raise JSCompileError("break outside loop")
            self.break_patches[-1].append(self.emit(Op.JMP, 0))
            return
        if tok.text == "{":
            self.c.next()
            while not self.c.accept("op", "}"):
                self.statement()
            return
        self._simple_statement()
        self.c.expect("op", ";")

    def _block_or_stmt(self) -> None:
        if self.c.accept("op", "{"):
            while not self.c.accept("op", "}"):
                self.statement()
        else:
            self.statement()

    def _if_statement(self) -> None:
        self.c.expect("keyword", "if")
        self.c.expect("op", "(")
        self.expression()
        self.c.expect("op", ")")
        else_jump = self.emit(Op.JMPF, 0, delta=-1)
        self._block_or_stmt()
        if self.c.accept("keyword", "else"):
            end_jump = self.emit(Op.JMP, 0)
            self.func.patch(else_jump, 1, self.func.here())
            self._block_or_stmt()
            self.func.patch(end_jump, 1, self.func.here())
        else:
            self.func.patch(else_jump, 1, self.func.here())

    def _for_statement(self) -> None:
        self.c.expect("keyword", "for")
        self.c.expect("op", "(")
        if not self.c.accept("op", ";"):
            if self.c.peek().text == "var":
                self.statement()  # consumes the ';'
            else:
                self._simple_statement()
                self.c.expect("op", ";")
        top = self.func.here()
        exit_jump = None
        if not self.c.accept("op", ";"):
            self.expression()
            self.c.expect("op", ";")
            exit_jump = self.emit(Op.JMPF, 0, delta=-1)
        step_toks: Optional[int] = None
        if not self.c.accept("op", ")"):
            step_toks = self.c.pos   # re-parse after the body
            depth = 0
            while True:
                tok = self.c.peek()
                if tok.text in ("(", "[", "{"):
                    depth += 1
                if tok.text in (")", "]", "}"):
                    if depth == 0:
                        break
                    depth -= 1
                self.c.next()
            self.c.expect("op", ")")
        self.break_patches.append([])
        self._block_or_stmt()
        if step_toks is not None:
            resume = self.c.pos
            self.c.pos = step_toks
            self._simple_statement()
            self.c.pos = resume
        self.emit(Op.JMP, top)
        after = self.func.here()
        if exit_jump is not None:
            self.func.patch(exit_jump, 1, after)
        for pc in self.break_patches.pop():
            self.func.patch(pc, 1, after)

    def _simple_statement(self) -> None:
        """Assignment, increment, call-for-effect, or print."""
        tok = self.c.peek()
        nxt = self.c.peek(1)
        if tok.kind == "ident" and nxt.kind == "op" and nxt.text in (
                "=", "+=", "-=", "*=", "/=", "%=", "++", "--"):
            name = self.c.next().text
            op = self.c.next().text
            slot = self.local_slot(name)
            if op == "=":
                self.expression()
            else:
                self.emit(Op.LOADLOCAL, slot, delta=1)
                if op in ("++", "--"):
                    one = self.func.const_index(box_double(1.0))
                    self.emit(Op.LOADK, one, delta=1)
                    self.emit(Op.ADD if op == "++" else Op.SUB, delta=-1)
                else:
                    self.expression()
                    binop = {"+=": Op.ADD, "-=": Op.SUB, "*=": Op.MUL,
                             "/=": Op.DIV, "%=": Op.MOD}[op]
                    self.emit(binop, delta=-1)
            self.emit(Op.STORELOCAL, slot, delta=-1)
            return
        # General postfix target: property store, index store, or call.
        target = self._postfix(store_context=True)
        if target == "prop":
            name_id = self._pending_prop
            self.c.expect("op", "=")
            self.expression()
            site = self.func.new_ic_site()
            self.emit(Op.SETPROP, name_id, site, delta=-2)
            return
        if target == "index":
            self.c.expect("op", "=")
            self.expression()
            self.emit(Op.SETIDX, delta=-3)
            return
        # Plain expression (a call): discard its value.
        self.emit(Op.POP, delta=-1)

    # -- expressions ------------------------------------------------------------
    def expression(self) -> None:
        self._logical_or()

    def _logical_or(self) -> None:
        self._logical_and()
        while self.c.accept("op", "||"):
            # a || b  ==>  if truthy(a) keep a else b
            end = self.emit(Op.DUP, delta=1)
            jump = self.emit(Op.JMPF, 0, delta=-1)
            done = self.emit(Op.JMP, 0)
            self.func.patch(jump, 1, self.func.here())
            self.emit(Op.POP, delta=-1)
            self._logical_and()
            self.func.patch(done, 1, self.func.here())

    def _logical_and(self) -> None:
        self._equality()
        while self.c.accept("op", "&&"):
            self.emit(Op.DUP, delta=1)
            jump = self.emit(Op.JMPF, 0, delta=-1)
            # truthy: discard the dup'd copy, evaluate rhs
            self.emit(Op.POP, delta=-1)
            self._equality()
            done = self.emit(Op.JMP, 0)
            self.func.patch(jump, 1, self.func.here())
            self.func.patch(done, 1, self.func.here())

    def _equality(self) -> None:
        self._relational()
        while True:
            if self.c.accept("op", "==") or self.c.accept("op", "==="):
                self._relational()
                self.emit(Op.EQ, delta=-1)
            elif self.c.accept("op", "!=") or self.c.accept("op", "!=="):
                self._relational()
                self.emit(Op.NE, delta=-1)
            else:
                return

    def _relational(self) -> None:
        self._additive()
        ops = {"<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}
        while self.c.peek().kind == "op" and self.c.peek().text in ops:
            op = ops[self.c.next().text]
            self._additive()
            self.emit(op, delta=-1)

    def _additive(self) -> None:
        self._multiplicative()
        while self.c.peek().kind == "op" and self.c.peek().text in ("+",
                                                                    "-"):
            op = Op.ADD if self.c.next().text == "+" else Op.SUB
            self._multiplicative()
            self.emit(op, delta=-1)

    def _multiplicative(self) -> None:
        self._unary()
        ops = {"*": Op.MUL, "/": Op.DIV, "%": Op.MOD}
        while self.c.peek().kind == "op" and self.c.peek().text in ops:
            op = ops[self.c.next().text]
            self._unary()
            self.emit(op, delta=-1)

    def _unary(self) -> None:
        if self.c.accept("op", "-"):
            self._unary()
            self.emit(Op.NEG)
            return
        if self.c.accept("op", "!"):
            self._unary()
            self.emit(Op.NOT)
            return
        self._postfix(store_context=False)

    def _postfix(self, store_context: bool) -> Optional[str]:
        """Parse a primary plus postfix operators.  In store context,
        stops *before* a trailing ``.prop =`` / ``[index] =`` store and
        returns "prop"/"index"; otherwise returns None."""
        self._primary()
        while True:
            if self.c.accept("op", "."):
                name = self.c.expect("ident").text
                if self.c.peek().text == "(":
                    self._method_call(name)
                    continue
                name_id = self.c.names.intern(name)
                if store_context and self.c.peek().text == "=":
                    self._pending_prop = name_id
                    return "prop"
                site = self.func.new_ic_site()
                self.emit(Op.GETPROP, name_id, site)
                continue
            if self.c.accept("op", "["):
                self.expression()
                self.c.expect("op", "]")
                if store_context and self.c.peek().text == "=":
                    return "index"
                self.emit(Op.GETIDX, delta=-1)
                continue
            return None

    def _method_call(self, name: str) -> None:
        """obj.name(args): stack [obj] -> [result]."""
        self.emit(Op.DUP, delta=1)                 # [obj, obj]
        name_id = self.c.names.intern(name)
        site = self.func.new_ic_site()
        self.emit(Op.GETPROP, name_id, site)        # [obj, fn]
        self.emit(Op.SWAP)                          # [fn, this]
        nargs = 1 + self._arguments()
        self.emit(Op.CALLV, 0, nargs, delta=-nargs)  # pops fn + nargs,
        # pushes result: net -nargs

    def _arguments(self) -> int:
        self.c.expect("op", "(")
        count = 0
        if not self.c.accept("op", ")"):
            while True:
                self.expression()
                count += 1
                if not self.c.accept("op", ","):
                    break
            self.c.expect("op", ")")
        return count

    def _primary(self) -> None:
        tok = self.c.next()
        if tok.kind == "num":
            self.emit(Op.LOADK,
                      self.func.const_index(box_double(tok.value)), delta=1)
            return
        if tok.text == "true" or tok.text == "false":
            self.emit(Op.LOADK,
                      self.func.const_index(box_bool(tok.text == "true")),
                      delta=1)
            return
        if tok.text == "null":
            self.emit(Op.LOADK, self.func.const_index(VALUE_NULL), delta=1)
            return
        if tok.text == "undefined":
            self.emit(Op.LOADK, self.func.const_index(VALUE_UNDEFINED),
                      delta=1)
            return
        if tok.text == "this":
            self.emit(Op.LOADLOCAL, 0, delta=1)
            return
        if tok.text == "(":
            self.expression()
            self.c.expect("op", ")")
            return
        if tok.text == "[":
            self._array_literal()
            return
        if tok.text == "{":
            self._object_literal()
            return
        if tok.kind == "ident":
            self._identifier(tok.text)
            return
        raise JSCompileError(
            f"line {tok.line}: unexpected {tok.text!r} in expression")

    HOST_FUNCTIONS = {"regexMatchCount": 0}

    def _identifier(self, name: str) -> None:
        if name in self.HOST_FUNCTIONS and self.c.peek().text == "(":
            host_id = self.HOST_FUNCTIONS[name]
            self.c.expect("op", "(")
            self.expression()
            self.c.expect("op", ",")
            self.expression()
            self.c.expect("op", ")")
            self.emit(Op.HOSTCALL2, host_id, delta=-1)
            return
        # Math.sqrt(x) / Math.floor(x) / Math.abs(x) fast paths.
        if name == "Math" and self.c.peek().text == ".":
            self.c.next()
            fn = self.c.expect("ident").text
            ops = {"sqrt": Op.SQRT, "floor": Op.FLOOR, "abs": Op.ABS}
            if fn not in ops:
                raise JSCompileError(f"unsupported Math.{fn}")
            self.c.expect("op", "(")
            self.expression()
            self.c.expect("op", ")")
            self.emit(ops[fn])
            return
        if name == "print" and self.c.peek().text == "(":
            self.c.expect("op", "(")
            self.expression()
            self.c.expect("op", ")")
            self.emit(Op.PRINT, delta=-1)
            self.emit(Op.LOADK, self.func.const_index(VALUE_UNDEFINED),
                      delta=1)
            return
        if self.c.peek().text == "(" and name in self.c.function_ids:
            # Direct call: push undefined `this`, then args.
            fid = self.c.function_ids[name]
            self.emit(Op.LOADK, self.func.const_index(VALUE_UNDEFINED),
                      delta=1)
            nargs = 1 + self._arguments()
            self.emit(Op.CALL, fid, nargs, delta=1 - nargs)
            return
        if name in self.c.function_ids:
            # Function reference as a value.
            fid = self.c.function_ids[name]
            self.emit(Op.LOADK,
                      self.func.const_index(box_function(fid)), delta=1)
            return
        slot = self.local_slot(name)
        self.emit(Op.LOADLOCAL, slot, delta=1)
        if self.c.peek().text == "(":
            # Calling a local that holds a function value.
            self.emit(Op.LOADK, self.func.const_index(VALUE_UNDEFINED),
                      delta=1)
            nargs = 1 + self._arguments()
            self.emit(Op.CALLV, 0, nargs, delta=-nargs)

    def _array_literal(self) -> None:
        # Create the array first with its length, then fill element by
        # element (each element expression is re-parsed from its tokens).
        exprs: List[Tuple[int, int]] = []
        if not self.c.accept("op", "]"):
            # We need the length before elements; collect token ranges.
            while True:
                start = self.c.pos
                depth = 0
                while True:
                    tok = self.c.peek()
                    if tok.text in ("(", "[", "{"):
                        depth += 1
                    if tok.text in (")", "]", "}"):
                        if depth == 0:
                            break
                        depth -= 1
                    if tok.text == "," and depth == 0:
                        break
                    if tok.kind == "eof":
                        raise JSCompileError("unterminated array literal")
                    self.c.next()
                exprs.append((start, self.c.pos))
                if not self.c.accept("op", ","):
                    break
            self.c.expect("op", "]")
        self.emit(Op.LOADK,
                  self.func.const_index(box_double(float(len(exprs)))),
                  delta=1)
        self.emit(Op.NEWARR)
        resume = self.c.pos
        for index, (start, _end) in enumerate(exprs):
            self.emit(Op.DUP, delta=1)
            self.emit(Op.LOADK,
                      self.func.const_index(box_double(float(index))),
                      delta=1)
            self.c.pos = start
            self.expression()
            self.emit(Op.SETIDX, delta=-3)
        self.c.pos = resume

    def _object_literal(self) -> None:
        names: List[int] = []
        if not self.c.accept("op", "}"):
            while True:
                prop = self.c.expect("ident").text
                self.c.expect("op", ":")
                self.expression()
                names.append(self.c.names.intern(prop))
                if not self.c.accept("op", ","):
                    break
            self.c.expect("op", "}")
        shape = self.c.shapes.shape_for_literal(tuple(names))
        self.emit(Op.NEWOBJ, shape, len(names), delta=-len(names) + 1)


def compile_js(source: str) -> CompiledJS:
    return Compiler(source).compile()
