"""mini-C sources for the two MiniJS interpreter loops (S6.1).

Like SpiderMonkey's Portable Baseline Interpreter, MiniJS has *two*
interpreter loops: one over JS bytecode (stack machine) and one over
CacheIR (the register-based IC mini-IR).  Each is generated in up to
three variants from one template, exactly the paper's Fig. 10 macro
trick:

* ``js_interp_noic`` — no inline caches: property ops call the host slow
  path directly ("Generic Interp" in Fig. 11);
* ``js_interp`` / ``ic_interp`` — IC chains, plain state (in-memory
  operand stack and locals; CacheIR registers in a local array);
* ``js_interp_s`` / ``ic_interp_s`` — the variants routed through
  weval's state intrinsics (virtualized stack/locals for JS, virtual
  registers for CacheIR); only ever executed in specialized form.

Heap layout constants must match :mod:`repro.jsvm.runtime`:
``FUNC_TABLE_PTR`` at address 24, the bump-allocator pointer at 32.
Function structs are ten words ``[code, code_words, consts, nconsts,
nparams, nlocals, sites, nsites, spec, frame_slots]``; IC stubs are four
words ``[cacheir, cacheir_len, next, spec]``.
"""

from __future__ import annotations

IC_FAIL_LITERAL = "0xFFFF000000000001"
MASK48 = "0xFFFFFFFFFFFF"

_TAG_BOOL = "0xFFF9"
_TAG_NULL = "0xFFFA"
_TAG_UNDEF = "0xFFFB"
_TAG_OBJ = "0xFFFC"
_TAG_FUN = "0xFFFD"
_TAG_ARR = "0xFFFE"

EXTERNS = """
extern u64 js_getprop_slow(u64 obj, u64 name_id, u64 site);
extern u64 js_setprop_slow(u64 obj, u64 name_id, u64 value, u64 site);
extern void js_print(u64 value);
extern void js_trap(u64 code);
extern u64 js_hostcall(u64 host_id, u64 arg1, u64 arg2);
"""


def js_interp_source(name: str, use_ics: bool, use_state: bool,
                     fallback: str) -> str:
    """The JS-bytecode interpreter loop.

    ``fallback`` is the function guest calls dispatch to when the callee
    has no specialized code (the generic interpreter of the same
    configuration).
    """
    if use_state:
        push = ("weval_push(stack_base + sp * 8, {v});\n"
                "      sp = sp + 1;")
        pop = ("sp = sp - 1;\n"
               "      u64 {v} = weval_pop(stack_base + sp * 8);")
        peek0 = "u64 {v} = weval_read_stack(0, stack_base + (sp - 1) * 8);"
        local_read = "weval_read_local({i}, frame + ({i}) * 8)"
        local_write = "weval_write_local({i}, frame + ({i}) * 8, {v});"
        flush = "weval_flush();"
    else:
        push = ("store64(stack_base + sp * 8, {v});\n"
                "      sp = sp + 1;")
        pop = ("sp = sp - 1;\n"
               "      u64 {v} = load64(stack_base + sp * 8);")
        peek0 = "u64 {v} = load64(stack_base + (sp - 1) * 8);"
        local_read = "load64(frame + ({i}) * 8)"
        local_write = "store64(frame + ({i}) * 8, {v});"
        flush = ""

    def PUSH(v):
        return push.format(v=v)

    def POP(v):
        return pop.format(v=v)

    def PEEK0(v):
        return peek0.format(v=v)

    def LREAD(i):
        return local_read.format(i=i)

    def LWRITE(i, v):
        return local_write.format(i=i, v=v)

    # Binary arithmetic template: double fast path inline, abort on
    # anything else (MiniJS has no string concat or coercions).
    def arith(fop):
        return f"""
      {POP("vb")}
      {POP("va")}
      if ((va >> 48) < {_TAG_BOOL} && (vb >> 48) < {_TAG_BOOL}) {{
        {PUSH(f"fbits(ffrombits(va) {fop} ffrombits(vb))")}
      }} else {{
        {flush}
        js_trap(1);
        abort();
      }}
      break;"""

    def compare(fop):
        return f"""
      {POP("vb")}
      {POP("va")}
      if ((va >> 48) < {_TAG_BOOL} && (vb >> 48) < {_TAG_BOOL}) {{
        {PUSH(f"({_TAG_BOOL} << 48) | (ffrombits(va) {fop} ffrombits(vb))")}
      }} else {{
        {flush}
        js_trap(2);
        abort();
      }}
      break;"""

    def equality(negate):
        invert = "1 - " if negate else ""
        return f"""
      {POP("vb")}
      {POP("va")}
      u64 eqr = 0;
      if ((va >> 48) < {_TAG_BOOL} && (vb >> 48) < {_TAG_BOOL}) {{
        eqr = ffrombits(va) == ffrombits(vb);
      }} else {{
        eqr = va == vb;
      }}
      {PUSH(f"({_TAG_BOOL} << 48) | ({invert}eqr)")}
      break;"""

    truthy = f"""
      u64 tag = cond >> 48;
      u64 truth = 0;
      if (tag == {_TAG_BOOL}) {{ truth = cond & 1; }}
      else if (tag == {_TAG_NULL} || tag == {_TAG_UNDEF}) {{ truth = 0; }}
      else if (tag >= {_TAG_OBJ} && tag <= {_TAG_ARR}) {{ truth = 1; }}
      else {{
        f64 d = ffrombits(cond);
        truth = (d != 0.0) && (d == d);
      }}"""

    # IC dispatch for GETPROP/SETPROP.  v1 is 0 for gets, the value for
    # sets.  The chain walk is a run-time loop even in specialized code:
    # stubs are late-bound data (the paper's key insight, S6).
    def ic_chain(slow_call, v0, v1):
        if use_ics:
            return f"""
      u64 site = sites + b * 8;
      u64 stub = load64(site);
      u64 result = {IC_FAIL_LITERAL};
      while (stub != 0) {{
        u64 icspec = load64(stub + 24);
        if (icspec != 0) {{
          result = icall4(icspec, load64(stub), load64(stub + 8),
                          {v0}, {v1});
        }} else {{
          result = ic_interp(load64(stub), load64(stub + 8), {v0}, {v1});
        }}
        if (result != {IC_FAIL_LITERAL}) {{ break; }}
        stub = load64(stub + 16);
      }}
      if (result == {IC_FAIL_LITERAL}) {{
        {flush}
        result = {slow_call};
      }}"""
        return f"""
      u64 site = 0;
      {flush}
      u64 result = {slow_call};"""

    # Argument copy into the callee frame: unrolled via a nested context
    # (the paper notes contexts may nest for manual loop unrolling, S3.1).
    arg_copy = f"""
      u64 i = 0;
      weval_push_context(i);
      while (i < b) {{
        {POP("av")}
        store64(callee_frame + (b - 1 - i) * 8, av);
        i = i + 1;
        weval_update_context(i);
      }}
      weval_pop_context();"""

    return EXTERNS + f"""
u64 {name}(u64 func, u64 frame) {{
  u64 code = load64(func);
  u64 consts = load64(func + 16);
  u64 nlocals = load64(func + 40);
  u64 sites = load64(func + 48);
  u64 stack_base = frame + nlocals * 8;
  u64 sp = 0;
  u64 pc = 0;
  weval_push_context(pc);
  while (1) {{
    u64 op = load64(code + pc * 8);
    u64 a = load64(code + pc * 8 + 8);
    u64 b = load64(code + pc * 8 + 16);
    pc = pc + 3;
    switch (op) {{
    case 0: {{ // LOADK
      {PUSH("load64(consts + a * 8)")}
      break;
    }}
    case 1: {{ // LOADLOCAL
      {PUSH(LREAD("a"))}
      break;
    }}
    case 2: {{ // STORELOCAL
      {POP("v")}
      {LWRITE("a", "v")}
      break;
    }}
    case 3: {{ // POP
      {POP("discard")}
      break;
    }}
    case 4: {{ // DUP
      {PEEK0("v")}
      {PUSH("v")}
      break;
    }}
    case 5: {{ // ADD
      {arith("+")}
    }}
    case 6: {{ // SUB
      {arith("-")}
    }}
    case 7: {{ // MUL
      {arith("*")}
    }}
    case 8: {{ // DIV
      {arith("/")}
    }}
    case 9: {{ // MOD
      {POP("vb")}
      {POP("va")}
      if ((va >> 48) < {_TAG_BOOL} && (vb >> 48) < {_TAG_BOOL}) {{
        f64 da = ffrombits(va);
        f64 db = ffrombits(vb);
        f64 q = itof(ftoi(da / db)); // JS %: truncate toward zero
        {PUSH("fbits(da - q * db)")}
      }} else {{
        {flush}
        js_trap(1);
        abort();
      }}
      break;
    }}
    case 10: {{ // LT
      {compare("<")}
    }}
    case 11: {{ // LE
      {compare("<=")}
    }}
    case 12: {{ // GT
      {compare(">")}
    }}
    case 13: {{ // GE
      {compare(">=")}
    }}
    case 14: {{ // EQ
      {equality(False)}
    }}
    case 15: {{ // NE
      {equality(True)}
    }}
    case 16: {{ // JMP
      pc = a;
      weval_update_context(pc);
      continue;
    }}
    case 17: {{ // JMPF (two-backedge form, S3.3)
      {POP("cond")}
      {truthy}
      if (truth == 0) {{
        pc = a;
        weval_update_context(pc);
        continue;
      }}
      weval_update_context(pc);
      continue;
    }}
    case 18: {{ // CALL fid=a nargs=b
      u64 ftab = load64(24);
      u64 callee = load64(ftab + a * 8);
      u64 callee_frame = frame + load64(func + 72) * 8;
      {flush}
      {arg_copy}
      u64 spec = load64(callee + 64);
      u64 r = 0;
      if (spec != 0) {{
        r = icall2(spec, callee, callee_frame);
      }} else {{
        r = {fallback}(callee, callee_frame);
      }}
      {PUSH("r")}
      break;
    }}
    case 19: {{ // CALLV nargs=b; stack: [fn, this, args...]
      u64 ftab = load64(24);
      u64 callee_frame = frame + load64(func + 72) * 8;
      {flush}
      {arg_copy}
      {POP("fnval")}
      if ((fnval >> 48) != {_TAG_FUN}) {{
        js_trap(3);
        abort();
      }}
      u64 callee = load64(ftab + (fnval & {MASK48}) * 8);
      u64 spec = load64(callee + 64);
      u64 r = 0;
      if (spec != 0) {{
        r = icall2(spec, callee, callee_frame);
      }} else {{
        r = {fallback}(callee, callee_frame);
      }}
      {PUSH("r")}
      break;
    }}
    case 20: {{ // RET
      {POP("rv")}
      return rv;
    }}
    case 21: {{ // GETPROP name=a site=b
      {POP("obj")}
      {ic_chain("js_getprop_slow(obj, a, site)", "obj", "0")}
      {PUSH("result")}
      break;
    }}
    case 22: {{ // SETPROP name=a site=b; stack: [obj, value]
      {POP("val")}
      {POP("obj")}
      {ic_chain("js_setprop_slow(obj, a, val, site)", "obj", "val")}
      break;
    }}
    case 23: {{ // NEWOBJ shape=a nprops=b
      {flush}
      u64 objp = load64(32);
      store64(32, objp + 8 + 24 * 8);
      store64(objp, a);
      u64 i = 0;
      weval_push_context(i);
      while (i < b) {{
        {POP("pv")}
        store64(objp + 8 + (b - 1 - i) * 8, pv);
        i = i + 1;
        weval_update_context(i);
      }}
      weval_pop_context();
      {PUSH(f"({_TAG_OBJ} << 48) | objp")}
      break;
    }}
    case 24: {{ // NEWARR: pops length
      {flush}
      {POP("lenv")}
      u64 n = ftoi(ffrombits(lenv));
      u64 cap = n * 2 + 64;
      u64 arrp = load64(32);
      store64(32, arrp + 16 + cap * 8);
      store64(arrp, n);
      store64(arrp + 8, cap);
      u64 zero = fbits(0.0);
      u64 i = 0;
      while (i < n) {{
        store64(arrp + 16 + i * 8, zero);
        i = i + 1;
      }}
      {PUSH(f"({_TAG_ARR} << 48) | arrp")}
      break;
    }}
    case 25: {{ // GETIDX: pops idx, arr
      {POP("idxv")}
      {POP("arrv")}
      if ((arrv >> 48) != {_TAG_ARR}) {{
        {flush}
        js_trap(4);
        abort();
      }}
      u64 arrp = arrv & {MASK48};
      u64 i = ftoi(ffrombits(idxv));
      if (i >= load64(arrp)) {{
        {flush}
        js_trap(5);
        abort();
      }}
      {PUSH("load64(arrp + 16 + i * 8)")}
      break;
    }}
    case 26: {{ // SETIDX: pops value, idx, arr
      {POP("val")}
      {POP("idxv")}
      {POP("arrv")}
      if ((arrv >> 48) != {_TAG_ARR}) {{
        {flush}
        js_trap(4);
        abort();
      }}
      u64 arrp = arrv & {MASK48};
      u64 i = ftoi(ffrombits(idxv));
      u64 len = load64(arrp);
      if (i < len) {{
        store64(arrp + 16 + i * 8, val);
        break;
      }}
      // JS-style growth: appending right at the end extends the array.
      if (i == len && i < load64(arrp + 8)) {{
        store64(arrp, len + 1);
        store64(arrp + 16 + i * 8, val);
        break;
      }}
      {flush}
      js_trap(5);
      abort();
    }}
    case 27: {{ // LEN
      {POP("arrv")}
      if ((arrv >> 48) != {_TAG_ARR}) {{
        {flush}
        js_trap(4);
        abort();
      }}
      {PUSH("fbits(itof(load64(arrv & " + MASK48 + ")))")}
      break;
    }}
    case 28: {{ // PRINT
      {POP("v")}
      {flush}
      js_print(v);
      break;
    }}
    case 29: {{ // NEG
      {POP("v")}
      if ((v >> 48) < {_TAG_BOOL}) {{
        {PUSH("fbits(-(ffrombits(v)))")}
      }} else {{
        {flush}
        js_trap(1);
        abort();
      }}
      break;
    }}
    case 30: {{ // NOT
      {POP("cond")}
      {truthy}
      {PUSH(f"({_TAG_BOOL} << 48) | (1 - truth)")}
      break;
    }}
    case 31: {{ // SWAP
      {POP("x")}
      {POP("y")}
      {PUSH("x")}
      {PUSH("y")}
      break;
    }}
    case 32: {{ // SQRT
      {POP("v")}
      {PUSH("fbits(fsqrt(ffrombits(v)))")}
      break;
    }}
    case 33: {{ // FLOOR
      {POP("v")}
      {PUSH("fbits(ffloor(ffrombits(v)))")}
      break;
    }}
    case 34: {{ // ABS
      {POP("v")}
      {PUSH("fbits(fabs(ffrombits(v)))")}
      break;
    }}
    case 35: {{ // HOSTCALL2: a = host fn id (e.g. the regex engine)
      {POP("h2")}
      {POP("h1")}
      {flush}
      {PUSH("js_hostcall(a, h1, h2)")}
      break;
    }}
    default: {{
      {flush}
      js_trap(9);
      abort();
    }}
    }}
    weval_update_context(pc);
  }}
  return 0;
}}
"""


def ic_interp_source(name: str, use_state: bool) -> str:
    """The CacheIR interpreter loop (register machine, straight-line)."""
    if use_state:
        decl = ""
        reg_read = "weval_read_reg(%s)"
        reg_write = "weval_write_reg(%s, %s);"
    else:
        decl = ("u64 regs[8];\n"
                "  for (u64 ri = 0; ri < 8; ri++) { regs[ri] = 0; }")
        reg_read = "regs[%s]"
        reg_write = "regs[%s] = %s;"

    def rd(expr):
        return reg_read % expr

    def wr(idx, value):
        return reg_write % (idx, value)

    return f"""
u64 {name}(u64 code, u64 iclen, u64 v0, u64 v1) {{
  {decl}
  {wr("0", "v0")}
  {wr("1", "v1")}
  u64 pc = 0;
  weval_push_context(pc);
  while (1) {{
    u64 op = load64(code + pc * 8);
    u64 a = load64(code + pc * 8 + 8);
    u64 b = load64(code + pc * 8 + 16);
    u64 c = load64(code + pc * 8 + 24);
    pc = pc + 4;
    switch (op) {{
    case 0: {{ // GUARD_SHAPE reg=a shape=b
      u64 v = {rd("a")};
      if ((v >> 48) != {_TAG_OBJ}) {{ return {IC_FAIL_LITERAL}; }}
      if (load64(v & {MASK48}) != b) {{ return {IC_FAIL_LITERAL}; }}
      break;
    }}
    case 1: {{ // LOAD_SLOT dest=a objreg=b slot=c
      u64 v = {rd("b")};
      {wr("a", f"load64((v & {MASK48}) + 8 + c * 8)")}
      break;
    }}
    case 2: {{ // STORE_SLOT objreg=a slot=b valreg=c
      u64 v = {rd("a")};
      store64((v & {MASK48}) + 8 + b * 8, {rd("c")});
      break;
    }}
    case 3: {{ // RET reg=a
      return {rd("a")};
    }}
    default: {{
      abort();
    }}
    }}
    weval_update_context(pc);
  }}
  return 0;
}}
"""
