"""Pure-Python MiniJS tiers: the "native platform" side of Fig. 12.

The paper compares tier-to-tier speedup ratios on two platforms: the
Wasm-hosted engine (our IR VM) and the native engine (SpiderMonkey on
x86).  Here the host platform is Python itself: four tiers over the same
MiniJS bytecode, from a generic interpreter up to a type-specializing
compiler, mirroring ``--no-ion --no-baseline --no-blinterp`` and friends.
"""

from repro.jsvm.native.pytiers import PyEngine, NATIVE_TIERS

__all__ = ["PyEngine", "NATIVE_TIERS"]
