"""Four execution tiers for MiniJS on the host (Python) platform.

* ``generic`` — bytecode interpreter; property access consults the shape
  table on every hit (``js --no-ion --no-baseline --no-blinterp``);
* ``interp_ic`` — interpreter with per-site monomorphic inline caches
  (``--no-ion --no-baseline``);
* ``baseline`` — a baseline compiler: each function's bytecode is
  translated to Python source (dispatch removed, IC sites kept) and
  ``exec``-ed, the analog of SpiderMonkey's baseline JIT and of wevaled
  code (``--no-ion``);
* ``optimized`` — profile-guided compilation: a profiling run records
  each site's observed shape, then code is regenerated with the slot
  offset burned in behind a single shape guard (the type-specialized
  tier; full ``js``).

Values: Python ``float`` (numbers), ``bool``, ``None`` (null),
``UNDEF``, ``JSObject`` (shape id + slots), Python ``list`` (arrays),
``FuncRef`` (function values).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.jsvm.bytecode import JSFunction, Op, WORDS_PER_INSTR
from repro.jsvm.frontend import CompiledJS, compile_js
from repro.jsvm.workloads import regex_match_count_host


class _Undefined:
    def __repr__(self):
        return "undefined"


UNDEF = _Undefined()

NATIVE_TIERS = ("generic", "interp_ic", "baseline", "optimized")


class JSObject:
    __slots__ = ("shape", "slots")

    def __init__(self, shape: int, slots: List[object]):
        self.shape = shape
        self.slots = slots


class FuncRef(int):
    pass


def _truthy(value) -> bool:
    if value is None or value is UNDEF:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value == value and value != 0.0
    return True


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if value is UNDEF:
        return "undefined"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return repr(value)
    return f"<{type(value).__name__}>"


class PyEngine:
    """One MiniJS program on one native tier."""

    def __init__(self, source: str, tier: str = "generic"):
        if tier not in NATIVE_TIERS:
            raise ValueError(f"bad tier {tier!r}")
        self.tier = tier
        self.compiled: CompiledJS = compile_js(source)
        self.shapes = self.compiled.shapes
        self.printed: List[str] = []
        # Per-function, per-site monomorphic caches: (shape -> slot).
        self.site_caches: Dict[int, List[Optional[tuple]]] = {
            f.index: [None] * max(f.num_ic_sites, 1)
            for f in self.compiled.functions}
        self._compiled_fns: Dict[int, object] = {}
        self._profiled_shapes: Dict[int, List[Optional[int]]] = {}

    # ------------------------------------------------------------------
    def run(self):
        self.printed = []
        if self.tier in ("baseline", "optimized"):
            if self.tier == "optimized" and not self._profiled_shapes:
                self._profile()
            for func in self.compiled.functions:
                if func.index not in self._compiled_fns:
                    self._compiled_fns[func.index] = self._translate(func)
            return self._call_compiled(0, [UNDEF])
        return self._interpret(self.compiled.functions[0], [UNDEF])

    def _profile(self) -> None:
        """Interpret once, recording each property site's shape."""
        self._profiled_shapes = {
            f.index: [None] * max(f.num_ic_sites, 1)
            for f in self.compiled.functions}
        self._profiling = True
        self._interpret(self.compiled.functions[0], [UNDEF])
        self._profiling = False
        self.printed = []

    # ------------------------------------------------------------------
    # Shared property access helpers.
    # ------------------------------------------------------------------
    def _getprop(self, func_index: int, site: int, obj, name_id: int):
        if not isinstance(obj, JSObject):
            raise RuntimeError("property access on non-object")
        if getattr(self, "_profiling", False):
            self._profiled_shapes[func_index][site] = obj.shape
        if self.tier in ("interp_ic", "baseline", "optimized"):
            cached = self.site_caches[func_index][site]
            if cached is not None and cached[0] == obj.shape:
                return obj.slots[cached[1]]
        slot = self.shapes.lookup(obj.shape, name_id)
        if slot is None:
            return UNDEF
        if self.tier != "generic":
            self.site_caches[func_index][site] = (obj.shape, slot)
        return obj.slots[slot]

    def _setprop(self, func_index: int, site: int, obj, name_id: int,
                 value) -> None:
        if not isinstance(obj, JSObject):
            raise RuntimeError("property store on non-object")
        if self.tier in ("interp_ic", "baseline", "optimized"):
            cached = self.site_caches[func_index][site]
            if cached is not None and cached[0] == obj.shape:
                obj.slots[cached[1]] = value
                return
        slot = self.shapes.lookup(obj.shape, name_id)
        if slot is None:
            new_shape = self.shapes.transition(obj.shape, name_id)
            slot = self.shapes.lookup(new_shape, name_id)
            obj.shape = new_shape
            while len(obj.slots) <= slot:
                obj.slots.append(UNDEF)
        elif self.tier != "generic":
            self.site_caches[func_index][site] = (obj.shape, slot)
        obj.slots[slot] = value

    def _call(self, callee_id: int, args: List[object]):
        if self.tier in ("baseline", "optimized") and \
                not getattr(self, "_profiling", False):
            return self._call_compiled(callee_id, args)
        return self._interpret(self.compiled.functions[callee_id], args)

    def _call_compiled(self, callee_id: int, args: List[object]):
        return self._compiled_fns[callee_id](self, args)

    # ------------------------------------------------------------------
    # Tier 1/2: the interpreter.
    # ------------------------------------------------------------------
    def _interpret(self, func: JSFunction, args: List[object]):
        locals_ = list(args) + [UNDEF] * (func.num_locals - len(args))
        stack: List[object] = []
        consts = func.constants
        code = func.code
        pc = 0
        from repro.jsvm.values import (
            TAG_BOOL, TAG_FUNCTION, TAG_NULL, TAG_UNDEFINED, tag_of,
            payload, unbox_double)

        def decode_const(boxed: int):
            tag = tag_of(boxed)
            if tag == TAG_BOOL:
                return bool(payload(boxed))
            if tag == TAG_NULL:
                return None
            if tag == TAG_UNDEFINED:
                return UNDEF
            if tag == TAG_FUNCTION:
                return FuncRef(payload(boxed))
            return unbox_double(boxed)

        while True:
            op = code[pc]
            a = code[pc + 1]
            b = code[pc + 2]
            pc += WORDS_PER_INSTR
            if op == Op.LOADK:
                stack.append(decode_const(consts[a]))
            elif op == Op.LOADLOCAL:
                stack.append(locals_[a])
            elif op == Op.STORELOCAL:
                locals_[a] = stack.pop()
            elif op == Op.POP:
                stack.pop()
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD):
                vb = stack.pop()
                va = stack.pop()
                if op == Op.ADD:
                    stack.append(va + vb)
                elif op == Op.SUB:
                    stack.append(va - vb)
                elif op == Op.MUL:
                    stack.append(va * vb)
                elif op == Op.DIV:
                    stack.append(va / vb if vb else math.inf * va
                                 if va else math.nan)
                else:
                    stack.append(math.fmod(va, vb))
            elif op in (Op.LT, Op.LE, Op.GT, Op.GE):
                vb = stack.pop()
                va = stack.pop()
                stack.append({Op.LT: va < vb, Op.LE: va <= vb,
                              Op.GT: va > vb, Op.GE: va >= vb}[op])
            elif op == Op.EQ:
                vb = stack.pop()
                stack.append(stack.pop() is vb
                             if isinstance(vb, (JSObject, _Undefined))
                             else stack.pop() == vb)
            elif op == Op.NE:
                vb = stack.pop()
                stack.append(not (stack.pop() is vb
                                  if isinstance(vb, (JSObject, _Undefined))
                                  else stack.pop() == vb))
            elif op == Op.JMP:
                pc = a
            elif op == Op.JMPF:
                if not _truthy(stack.pop()):
                    pc = a
            elif op == Op.CALL:
                args_list = stack[-b:]
                del stack[-b:]
                stack.append(self._call(a, args_list))
            elif op == Op.CALLV:
                args_list = stack[-b:]
                del stack[-b:]
                fn = stack.pop()
                if not isinstance(fn, FuncRef):
                    raise RuntimeError("call of non-function")
                stack.append(self._call(int(fn), args_list))
            elif op == Op.RET:
                return stack.pop()
            elif op == Op.GETPROP:
                obj = stack.pop()
                stack.append(self._getprop(func.index, b, obj, a))
            elif op == Op.SETPROP:
                value = stack.pop()
                obj = stack.pop()
                self._setprop(func.index, b, obj, a, value)
            elif op == Op.NEWOBJ:
                slots = stack[-b:] if b else []
                if b:
                    del stack[-b:]
                stack.append(JSObject(a, list(slots)))
            elif op == Op.NEWARR:
                stack.append([0.0] * int(stack.pop()))
            elif op == Op.GETIDX:
                idx = int(stack.pop())
                stack.append(stack.pop()[idx])
            elif op == Op.SETIDX:
                value = stack.pop()
                idx = int(stack.pop())
                arr = stack.pop()
                if idx == len(arr):
                    arr.append(value)
                else:
                    arr[idx] = value
            elif op == Op.LEN:
                stack.append(float(len(stack.pop())))
            elif op == Op.PRINT:
                self.printed.append(_fmt(stack.pop()))
            elif op == Op.NEG:
                stack.append(-stack.pop())
            elif op == Op.NOT:
                stack.append(not _truthy(stack.pop()))
            elif op == Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == Op.SQRT:
                stack.append(math.sqrt(stack.pop()))
            elif op == Op.FLOOR:
                stack.append(float(math.floor(stack.pop())))
            elif op == Op.ABS:
                stack.append(abs(stack.pop()))
            elif op == Op.HOSTCALL2:
                a2 = stack.pop()
                a1 = stack.pop()
                stack.append(float(regex_match_count_host(a1, a2)))
            else:
                raise RuntimeError(f"bad opcode {op}")

    # ------------------------------------------------------------------
    # Tier 3/4: the baseline / optimizing compiler (bytecode -> Python).
    # ------------------------------------------------------------------
    def _translate(self, func: JSFunction):
        """Generate a Python function from bytecode.  Structured as a
        while/elif dispatch over *basic blocks* (labels are jump
        targets), i.e. dispatch per block instead of per opcode —
        exactly the baseline-compiler speedup."""
        from repro.jsvm.values import (
            TAG_BOOL, TAG_FUNCTION, TAG_NULL, TAG_UNDEFINED, tag_of,
            payload, unbox_double)

        consts = []
        for boxed in func.constants:
            tag = tag_of(boxed)
            if tag == TAG_BOOL:
                consts.append(bool(payload(boxed)))
            elif tag == TAG_NULL:
                consts.append(None)
            elif tag == TAG_UNDEFINED:
                consts.append(UNDEF)
            elif tag == TAG_FUNCTION:
                consts.append(FuncRef(payload(boxed)))
            else:
                consts.append(unbox_double(boxed))

        # Identify block leaders.
        leaders = {0}
        for pc in range(0, len(func.code), WORDS_PER_INSTR):
            op, a, b = func.code[pc:pc + WORDS_PER_INSTR]
            if op in (Op.JMP, Op.JMPF):
                leaders.add(a)
                leaders.add(pc + WORDS_PER_INSTR)

        profiled = self._profiled_shapes.get(func.index)
        optimized = self.tier == "optimized" and profiled is not None

        lines = ["def _fn(engine, args):",
                 " locals_ = list(args) + [UNDEF] * %d" %
                 max(func.num_locals, 0),
                 " stack = []",
                 " label = 0",
                 " while True:"]

        def emit_block(start: int):
            lines.append(f"  if label == {start}:" if start == 0
                         else f"  elif label == {start}:")
            pc = start
            emitted = False
            while pc < len(func.code):
                op, a, b = func.code[pc:pc + WORDS_PER_INSTR]
                next_pc = pc + WORDS_PER_INSTR
                body = self._translate_op(func, op, a, b, consts,
                                          optimized, profiled)
                for line in body:
                    lines.append("   " + line)
                    emitted = True
                if op == Op.JMP:
                    lines.append(f"   label = {a}; continue")
                    return
                if op == Op.JMPF:
                    lines.append("   if not _truthy(stack.pop()):")
                    lines.append(f"    label = {a}; continue")
                    if next_pc in leaders and next_pc < len(func.code):
                        lines.append(f"   label = {next_pc}; continue")
                        return
                if op == Op.RET:
                    return
                if next_pc in leaders:
                    lines.append(f"   label = {next_pc}; continue")
                    return
                pc = next_pc
            if not emitted:
                lines.append("   raise RuntimeError('fell off end')")

        for leader in sorted(leaders):
            if leader < len(func.code):
                emit_block(leader)
        lines.append("  else:")
        lines.append("   raise RuntimeError('bad label')")

        namespace = {"UNDEF": UNDEF, "_truthy": _truthy, "math": math,
                     "JSObject": JSObject, "FuncRef": FuncRef,
                     "_fmt": _fmt, "consts": consts,
                     "regex_match": regex_match_count_host}
        exec("\n".join(lines), namespace)  # noqa: S102 - the JIT analog
        return namespace["_fn"]

    def _translate_op(self, func, op, a, b, consts, optimized,
                      profiled) -> List[str]:
        fi = func.index
        if op == Op.LOADK:
            return [f"stack.append(consts[{a}])"]
        if op == Op.LOADLOCAL:
            return [f"stack.append(locals_[{a}])"]
        if op == Op.STORELOCAL:
            return [f"locals_[{a}] = stack.pop()"]
        if op == Op.POP:
            return ["stack.pop()"]
        if op == Op.DUP:
            return ["stack.append(stack[-1])"]
        if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV):
            pyop = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*",
                    Op.DIV: "/"}[op]
            return ["_b = stack.pop(); _a = stack.pop()",
                    f"stack.append(_a {pyop} _b)"]
        if op == Op.MOD:
            return ["_b = stack.pop(); _a = stack.pop()",
                    "stack.append(math.fmod(_a, _b))"]
        if op in (Op.LT, Op.LE, Op.GT, Op.GE):
            pyop = {Op.LT: "<", Op.LE: "<=", Op.GT: ">", Op.GE: ">="}[op]
            return ["_b = stack.pop(); _a = stack.pop()",
                    f"stack.append(_a {pyop} _b)"]
        if op == Op.EQ:
            return ["_b = stack.pop(); _a = stack.pop()",
                    "stack.append(_a is _b if isinstance(_b, JSObject) "
                    "else _a == _b)"]
        if op == Op.NE:
            return ["_b = stack.pop(); _a = stack.pop()",
                    "stack.append(not (_a is _b if isinstance(_b, "
                    "JSObject) else _a == _b))"]
        if op in (Op.JMP, Op.JMPF, Op.RET):
            if op == Op.RET:
                return ["return stack.pop()"]
            return []  # control handled by the block emitter
        if op == Op.CALL:
            return [f"_args = stack[-{b}:]; del stack[-{b}:]",
                    f"stack.append(engine._call({a}, _args))"]
        if op == Op.CALLV:
            return [f"_args = stack[-{b}:]; del stack[-{b}:]",
                    "_fn_ref = stack.pop()",
                    "stack.append(engine._call(int(_fn_ref), _args))"]
        if op == Op.GETPROP:
            if optimized and profiled[b] is not None:
                shape = profiled[b]
                slot = self.shapes.lookup(shape, a)
                if slot is not None:
                    # Type-specialized fast path: one guard, direct slot.
                    return [
                        "_o = stack.pop()",
                        f"if type(_o) is JSObject and _o.shape == {shape}:",
                        f" stack.append(_o.slots[{slot}])",
                        "else:",
                        f" stack.append(engine._getprop({fi}, {b}, _o, "
                        f"{a}))"]
            return ["_o = stack.pop()",
                    f"stack.append(engine._getprop({fi}, {b}, _o, {a}))"]
        if op == Op.SETPROP:
            if optimized and profiled[b] is not None:
                shape = profiled[b]
                slot = self.shapes.lookup(shape, a)
                if slot is not None:
                    return [
                        "_v = stack.pop(); _o = stack.pop()",
                        f"if type(_o) is JSObject and _o.shape == {shape}:",
                        f" _o.slots[{slot}] = _v",
                        "else:",
                        f" engine._setprop({fi}, {b}, _o, {a}, _v)"]
            return ["_v = stack.pop(); _o = stack.pop()",
                    f"engine._setprop({fi}, {b}, _o, {a}, _v)"]
        if op == Op.NEWOBJ:
            if b:
                return [f"_slots = stack[-{b}:]; del stack[-{b}:]",
                        f"stack.append(JSObject({a}, list(_slots)))"]
            return [f"stack.append(JSObject({a}, []))"]
        if op == Op.NEWARR:
            return ["stack.append([0.0] * int(stack.pop()))"]
        if op == Op.GETIDX:
            return ["_i = int(stack.pop())",
                    "stack.append(stack.pop()[_i])"]
        if op == Op.SETIDX:
            return ["_v = stack.pop(); _i = int(stack.pop()); "
                    "_arr = stack.pop()",
                    "if _i == len(_arr):",
                    " _arr.append(_v)",
                    "else:",
                    " _arr[_i] = _v"]
        if op == Op.LEN:
            return ["stack.append(float(len(stack.pop())))"]
        if op == Op.PRINT:
            return ["engine.printed.append(_fmt(stack.pop()))"]
        if op == Op.NEG:
            return ["stack.append(-stack.pop())"]
        if op == Op.NOT:
            return ["stack.append(not _truthy(stack.pop()))"]
        if op == Op.SWAP:
            return ["stack[-1], stack[-2] = stack[-2], stack[-1]"]
        if op == Op.SQRT:
            return ["stack.append(math.sqrt(stack.pop()))"]
        if op == Op.FLOOR:
            return ["stack.append(float(math.floor(stack.pop())))"]
        if op == Op.ABS:
            return ["stack.append(abs(stack.pop()))"]
        if op == Op.HOSTCALL2:
            return ["_a2 = stack.pop(); _a1 = stack.pop()",
                    "stack.append(float(regex_match(_a1, _a2)))"]
        raise RuntimeError(f"bad opcode {op}")
