"""MiniJS runtime assembly and execution configurations (S6).

A :class:`JSRuntime` builds one module for one source program in one of
four configurations (Fig. 11):

* ``noic`` — generic interpreter, property ops always take the host slow
  path ("Generic Interp");
* ``interp_ic`` — interpreter with inline-cache chains; stubs are
  CacheIR sequences attached lazily by the slow path and run by the
  generic CacheIR interpreter ("Interp + ICs", the baseline);
* ``wevaled`` — AOT: every JS function and every IC-corpus stub is
  specialized through weval, *without* state intrinsics;
* ``wevaled_state`` — same, with virtualized locals/stack/registers
  ("wevaled + state opt", the paper's final configuration).

The AOT flow follows the paper: the IC corpus is pre-collected (we
enumerate every shape x property at snapshot time, S6's "pre-collected
set of IC bodies ... in a lookup table"), each corpus stub's CacheIR is
specialized, and at run time the slow path merely *attaches* corpus
stubs to sites — dynamism lives in data (which stub a site points to),
never in new code.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core import (
    Runtime as RuntimeArg,
    SnapshotCompiler,
    SpecializationCache,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
)
from repro.core.specialize import SpecializeOptions
from repro.frontend import compile_source
from repro.ir import Module
from repro.jsvm.bytecode import JSFunction
from repro.jsvm.frontend import JSCompileError, compile_js
from repro.jsvm.interp_src import ic_interp_source, js_interp_source
from repro.jsvm.shapes import OBJECT_SLOT_CAPACITY
from repro.jsvm.values import IC_FAIL, VALUE_UNDEFINED, describe, payload, tag_of, TAG_OBJECT
from repro.vm import VM

FUNC_TABLE_PTR_ADDR = 24
HEAP_PTR_ADDR = 32
FUNC_STRUCT_WORDS = 10
SPEC_FIELD_WORD = 8

# CacheIR opcodes (see interp_src.ic_interp_source).
CIR_GUARD_SHAPE = 0
CIR_LOAD_SLOT = 1
CIR_STORE_SLOT = 2
CIR_RET = 3

CONFIGS = ("noic", "interp_ic", "wevaled", "wevaled_state")

# Deterministic fuel charges for work done by host ("native runtime")
# helpers.  The real engine pays these costs in code the VM would count;
# our Python host does them for free, so we charge a cost model instead:
# a megamorphic property lookup is a hash probe + proto walk (hundreds of
# instructions in SpiderMonkey's C++), and the engine frontend
# (parse + bytecode emission) costs per bytecode word are identical in
# every configuration (which is what makes CodeLoad flat in Fig. 11).
SLOW_PATH_FUEL = 300
CODE_LOAD_FUEL_PER_WORD = 60


@dataclasses.dataclass
class _StubInfo:
    addr: int
    cacheir_ptr: int
    cacheir_words: int


class JSRuntime:
    """One MiniJS program instantiated in one engine configuration."""

    def __init__(self, source: str, config: str = "interp_ic",
                 memory_size: int = 1 << 22,
                 cache: Optional[SpecializationCache] = None,
                 options: Optional[SpecializeOptions] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None):
        if config not in CONFIGS:
            raise ValueError(f"bad config {config!r}")
        self.config = config
        self.compiled = compile_js(source)
        self.names = self.compiled.names
        self.shapes = self.compiled.shapes
        self.module = Module(memory_size=memory_size)
        self.printed: List[str] = []
        self.printed_values: List[int] = []
        self.slow_getprop_calls = 0
        self.slow_setprop_calls = 0
        self.ic_attaches = 0
        self.cache = cache
        self.options = options or SpecializeOptions()
        # Engine configuration shorthands (equivalent to setting the
        # fields on ``options`` directly).
        if jobs is not None or cache_dir is not None:
            self.options = dataclasses.replace(
                self.options,
                jobs=jobs if jobs is not None else self.options.jobs,
                cache_dir=(cache_dir if cache_dir is not None
                           else self.options.cache_dir))

        self._add_interpreters()
        self.func_addrs: Dict[int, int] = {}
        self.corpus: Dict[Tuple[str, int, int], _StubInfo] = {}
        self._layout()
        self.frame_base = memory_size * 3 // 4
        self.compiler: Optional[SnapshotCompiler] = None
        self.controller = None  # set by run_tiered
        self._aot_done = False

    # ------------------------------------------------------------------
    # Module assembly.
    # ------------------------------------------------------------------
    def _add_interpreters(self) -> None:
        externs = {
            "js_getprop_slow": self._host_getprop_slow,
            "js_setprop_slow": self._host_setprop_slow,
            "js_print": self._host_print,
            "js_trap": self._host_trap,
            "js_hostcall": self._host_hostcall,
        }
        if self.config == "noic":
            sources = [js_interp_source("js_interp_noic", use_ics=False,
                                        use_state=False,
                                        fallback="js_interp_noic")]
            self.generic_entry = "js_interp_noic"
        else:
            sources = [
                ic_interp_source("ic_interp", use_state=False),
                js_interp_source("js_interp", use_ics=True,
                                 use_state=False, fallback="js_interp"),
            ]
            self.generic_entry = "js_interp"
            if self.config == "wevaled_state":
                sources.append(ic_interp_source("ic_interp_s",
                                                use_state=True))
                sources.append(js_interp_source(
                    "js_interp_s", use_ics=True, use_state=True,
                    fallback="js_interp"))
        # Compile as one program: js_interp calls ic_interp directly.
        compile_source("\n".join(sources)).add_to_module(self.module,
                                                         externs=externs)

    def _layout(self) -> None:
        module = self.module
        cursor = 0x2000
        per_func: Dict[int, Dict[str, int]] = {}
        for func in self.compiled.functions:
            info = {"code": cursor}
            for i, word in enumerate(func.code):
                module.write_init_u64(cursor + i * 8, word)
            cursor += len(func.code) * 8
            info["consts"] = cursor
            for i, value in enumerate(func.constants):
                module.write_init_u64(cursor + i * 8, value)
            cursor += max(len(func.constants), 1) * 8
            info["sites"] = cursor
            cursor += max(func.num_ic_sites, 1) * 8  # zero-initialized
            per_func[func.index] = info

        table_ptr = cursor
        cursor += len(self.compiled.functions) * 8
        module.write_init_u64(FUNC_TABLE_PTR_ADDR, table_ptr)
        self.func_table_ptr = table_ptr

        for func in self.compiled.functions:
            struct_ptr = cursor
            cursor += FUNC_STRUCT_WORDS * 8
            info = per_func[func.index]
            fields = [info["code"], len(func.code), info["consts"],
                      len(func.constants), func.num_params,
                      func.num_locals, info["sites"], func.num_ic_sites,
                      0, func.frame_slots]
            for i, value in enumerate(fields):
                module.write_init_u64(struct_ptr + i * 8, value)
            module.write_init_u64(table_ptr + func.index * 8, struct_ptr)
            self.func_addrs[func.index] = struct_ptr

        # IC corpus: one get-stub and one set-stub per (shape, property).
        if self.config != "noic":
            for shape_id, name_id, slot in self.shapes.all_property_pairs():
                cursor = self._build_stub(cursor, "get", shape_id, name_id,
                                          slot)
                cursor = self._build_stub(cursor, "set", shape_id, name_id,
                                          slot)
        self.data_end = cursor
        module.write_init_u64(HEAP_PTR_ADDR, self._align(cursor))

    @staticmethod
    def _align(addr: int) -> int:
        return (addr + 63) & ~63

    def _build_stub(self, cursor: int, kind: str, shape_id: int,
                    name_id: int, slot: int) -> int:
        """Write a CacheIR body + stub struct into the heap image."""
        module = self.module
        if kind == "get":
            # r0 = object; guard shape; r2 = slot; return r2.
            cacheir = [
                CIR_GUARD_SHAPE, 0, shape_id, 0,
                CIR_LOAD_SLOT, 2, 0, slot,
                CIR_RET, 2, 0, 0,
            ]
        else:
            # r0 = object, r1 = value; guard; store; return value.
            cacheir = [
                CIR_GUARD_SHAPE, 0, shape_id, 0,
                CIR_STORE_SLOT, 0, slot, 1,
                CIR_RET, 1, 0, 0,
            ]
        cacheir_ptr = cursor
        for i, word in enumerate(cacheir):
            module.write_init_u64(cacheir_ptr + i * 8, word)
        cursor += len(cacheir) * 8
        stub_ptr = cursor
        # [cacheir, cacheir_len, next, spec]
        for i, value in enumerate([cacheir_ptr, len(cacheir), 0, 0]):
            module.write_init_u64(stub_ptr + i * 8, value)
        cursor += 4 * 8
        self.corpus[(kind, shape_id, name_id)] = _StubInfo(
            stub_ptr, cacheir_ptr, len(cacheir))
        return cursor

    # ------------------------------------------------------------------
    # Host slow paths ("the rest of the runtime").
    # ------------------------------------------------------------------
    def _object_addr(self, boxed: int) -> int:
        if tag_of(boxed) != TAG_OBJECT:
            raise RuntimeError(
                f"property access on non-object: {describe(boxed)}")
        return payload(boxed)

    def _attach_stub(self, vm, kind: str, shape_id: int, name_id: int,
                     site: int) -> None:
        stub = self.corpus.get((kind, shape_id, name_id))
        if stub is None or site == 0:
            return
        # Push onto the site's chain (stub.next := old head; head := stub).
        old_head = vm.load_u64(site)
        vm.store_u64(stub.addr + 16, old_head)
        vm.store_u64(site, stub.addr)
        self.ic_attaches += 1

    def _host_getprop_slow(self, vm, obj, name_id, site):
        self.slow_getprop_calls += 1
        vm.stats.fuel += SLOW_PATH_FUEL
        addr = self._object_addr(obj)
        shape_id = vm.load_u64(addr)
        slot = self.shapes.lookup(shape_id, name_id)
        if slot is None:
            return VALUE_UNDEFINED
        if self.config != "noic":
            self._attach_stub(vm, "get", shape_id, name_id, site)
        return vm.load_u64(addr + 8 + slot * 8)

    def _host_setprop_slow(self, vm, obj, name_id, value, site):
        self.slow_setprop_calls += 1
        vm.stats.fuel += SLOW_PATH_FUEL
        addr = self._object_addr(obj)
        shape_id = vm.load_u64(addr)
        slot = self.shapes.lookup(shape_id, name_id)
        if slot is None:
            # Shape transition: add the property (capacity is fixed).
            new_shape = self.shapes.transition(shape_id, name_id)
            slot = self.shapes.lookup(new_shape, name_id)
            if slot >= OBJECT_SLOT_CAPACITY:
                raise RuntimeError("object slot capacity exceeded")
            vm.store_u64(addr, new_shape)
        elif self.config != "noic":
            self._attach_stub(vm, "set", shape_id, name_id, site)
        vm.store_u64(addr + 8 + slot * 8, value)
        return value

    def _host_print(self, vm, value):
        self.printed.append(describe(value))
        self.printed_values.append(value)
        return None

    def _host_trap(self, vm, code):
        raise RuntimeError(f"MiniJS runtime error #{code}")

    def _read_array(self, vm, boxed):
        from repro.jsvm.values import TAG_ARRAY, unbox_double
        if tag_of(boxed) != TAG_ARRAY:
            raise RuntimeError("host call expects an array")
        addr = payload(boxed)
        length = vm.load_u64(addr)
        return [unbox_double(vm.load_u64(addr + 16 + i * 8))
                for i in range(length)]

    def _host_hostcall(self, vm, host_id, arg1, arg2):
        """Host helper dispatch — the analog of runtime subsystems (like
        the regex engine) that live outside the wevaled interpreter."""
        from repro.jsvm.values import box_double
        from repro.jsvm.workloads import regex_match_count_host
        if host_id == 0:
            text = self._read_array(vm, arg1)
            pattern = self._read_array(vm, arg2)
            # Charge deterministic fuel for the host-side engine so the
            # fuel metric reflects time spent outside specialized code.
            vm.stats.fuel += 100 * max(len(text) - len(pattern) + 1, 0)
            return box_double(float(regex_match_count_host(text, pattern)))
        raise RuntimeError(f"unknown host function {host_id}")

    # ------------------------------------------------------------------
    # AOT compilation (the snapshot workflow).
    # ------------------------------------------------------------------
    @property
    def aot_done(self) -> bool:
        """Whether :meth:`aot_compile` has produced the snapshot."""
        return self._aot_done

    def _js_request(self, func: JSFunction,
                    js_generic: str) -> SpecializationRequest:
        """The specialization request for one JS function (shared by the
        AOT batch and dynamic promotion — identical cache keys)."""
        struct_ptr = self.func_addrs[func.index]
        code_ptr = self.module.read_init_u64(struct_ptr)
        consts_ptr = self.module.read_init_u64(struct_ptr + 16)
        return SpecializationRequest(
            js_generic,
            [SpecializedConst(struct_ptr), RuntimeArg()],
            specialized_name=f"js${func.name}",
            extra_const_memory=[
                (FUNC_TABLE_PTR_ADDR, 8),
                (self.func_table_ptr,
                 len(self.compiled.functions) * 8),
                (struct_ptr, SPEC_FIELD_WORD * 8),      # not `spec`
                (struct_ptr + 72, 8),                    # frame_slots
                (code_ptr, len(func.code) * 8),
                (consts_ptr, max(len(func.constants), 1) * 8),
                # Callee struct headers (for CALL's frame_slots and
                # arity reads) — every function's non-spec words.
                *[(self.func_addrs[f.index], SPEC_FIELD_WORD * 8)
                  for f in self.compiled.functions],
                *[(self.func_addrs[f.index] + 72, 8)
                  for f in self.compiled.functions],
            ])

    def _ic_request(self, kind: str, shape_id: int, name_id: int,
                    stub: _StubInfo,
                    ic_generic: str) -> SpecializationRequest:
        """The specialization request for one IC-corpus stub."""
        return SpecializationRequest(
            ic_generic,
            [SpecializedMemory(stub.cacheir_ptr,
                               stub.cacheir_words * 8),
             SpecializedConst(stub.cacheir_words),
             RuntimeArg(), RuntimeArg()],
            specialized_name=f"ic${kind}${shape_id}${name_id}")

    def tier_entries(self) -> List:
        """Every tierable function of this runtime: one entry per JS
        function (watched at the generic ``js_interp`` fallback, keyed
        by function-struct pointer, frame pointer speculation-eligible)
        and one per IC-corpus stub (watched at ``ic_interp``, keyed by
        CacheIR pointer) — the paper's pre-collected corpus, now
        promoted on demand instead of all at snapshot time."""
        from repro.pipeline.tiering import TierEntry
        if self.config not in ("wevaled", "wevaled_state"):
            raise RuntimeError(f"config {self.config} has no tier-up "
                               f"targets")
        use_state = self.config == "wevaled_state"
        js_generic = "js_interp_s" if use_state else "js_interp"
        ic_generic = "ic_interp_s" if use_state else "ic_interp"
        entries = []
        for func in self.compiled.functions:
            struct_ptr = self.func_addrs[func.index]
            entries.append(TierEntry(
                generic="js_interp",
                key=struct_ptr,
                request=self._js_request(func, js_generic),
                result_addr=struct_ptr + SPEC_FIELD_WORD * 8,
                speculate_args=(1,),
                inline_gate=self._inline_gate,
            ))
        # One entry per IC-corpus stub (the paper's 2320-stub corpus).
        for (kind, shape_id, name_id), stub in sorted(self.corpus.items()):
            entries.append(TierEntry(
                generic="ic_interp",
                key=stub.cacheir_ptr,
                request=self._ic_request(kind, shape_id, name_id, stub,
                                         ic_generic),
                result_addr=stub.addr + 24,
                inline_gate=self._inline_gate,
            ))
        return entries

    def _inline_gate(self, name: str) -> bool:
        """Embedder policy for speculative inlining: JS function
        residuals (``js$...``) are always admissible; IC stub residuals
        (``ic$kind$shape$name``) only while their shape/property pair is
        still live in the runtime's :class:`ShapeTable` — splicing a
        stub for a retired shape would bake dead layout knowledge into
        a caller that outlives it."""
        base = name.split(".", 1)[0]
        if not base.startswith("ic$"):
            return True
        parts = base.split("$")
        if len(parts) != 4:
            return False
        try:
            shape_id, name_id = int(parts[2]), int(parts[3])
        except ValueError:
            return False
        return self.shapes.lookup(shape_id, name_id) is not None

    def _make_controller(self, options=None, **kwargs):
        from repro.pipeline.tiering import TieringController
        controller = TieringController(self.module,
                                       options or self.options,
                                       cache=self.cache, **kwargs)
        for entry in self.tier_entries():
            controller.register(entry)
        return controller

    def aot_compile(self) -> SnapshotCompiler:
        if self.config not in ("wevaled", "wevaled_state"):
            raise RuntimeError(f"config {self.config} is not AOT")
        # Pure AOT is "promote everything at startup" through the same
        # controller the dynamic flow uses (one engine batch).
        controller = self._make_controller()
        controller.promote_all()
        controller.compiler.freeze()
        self.compiler = controller.compiler
        self._aot_done = True
        return self.compiler

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self, backend: Optional[str] = None,
            mode: Optional[str] = None, **tiered_kwargs) -> VM:
        """Execute main; returns the VM (result on ``vm.result``).

        ``backend`` overrides ``options.backend`` for this run: ``"py"``
        executes residual functions as compiled Python (tier 2), ``"vm"``
        interprets the residual IR.  ``mode="tiered"`` skips the AOT
        batch entirely and runs under profile-guided dynamic tier-up
        (see :meth:`run_tiered`, which takes the extra kwargs);
        ``mode="aot"`` (the default for AOT configs) is the snapshot
        flow.
        """
        if mode == "tiered":
            return self.run_tiered(backend=backend, **tiered_kwargs)
        if self.config in ("wevaled", "wevaled_state") and not self._aot_done:
            self.aot_compile()
        vm = (self.compiler.resume(backend) if self.compiler is not None
              else VM(self.module))
        # Engine-frontend cost model: parsing and bytecode emission are
        # identical across configurations.
        vm.stats.fuel += CODE_LOAD_FUEL_PER_WORD * sum(
            len(f.code) for f in self.compiled.functions)
        main_struct = self.func_addrs[0]
        # main's frame: `this` local is undefined.
        vm.store_u64(self.frame_base, VALUE_UNDEFINED)
        if self._aot_done:
            spec = vm.load_u64(main_struct + SPEC_FIELD_WORD * 8)
            vm.result = vm.call_table(spec, [main_struct, self.frame_base])
        else:
            vm.result = vm.call(self.generic_entry,
                                [main_struct, self.frame_base])
        return vm

    def run_tiered(self, threshold: float = None,
                   speculate: bool = False,
                   backend: Optional[str] = None,
                   jobs: Optional[int] = None,
                   cache_dir: Optional[str] = None,
                   compile_threshold: int = 0,
                   inline: bool = False,
                   inline_min_site_calls: Optional[int] = None,
                   inline_max_targets: Optional[int] = None) -> VM:
        """Execute main under profile-guided dynamic tier-up.

        Execution starts immediately on the generic interpreter (no AOT
        batch); JS functions and IC stubs are specialized at call
        boundaries once their profiles cross ``threshold`` (``1``
        reproduces the AOT execution bit for bit; ``float("inf")``
        never promotes and matches ``interp_ic``).  ``speculate=True``
        arms guarded frame-pointer speculation with deopt back to the
        generic interpreter.  ``inline=True`` (requires a staged tier-2
        window, ``compile_threshold > 0`` with the ``py`` backend) arms
        speculative call-chain inlining with polymorphic site guards.
        The controller is left on ``self.controller`` for inspection.
        """
        options = self.options
        if backend is not None:
            options = dataclasses.replace(options, backend=backend)
        kwargs = {}
        if inline_min_site_calls is not None:
            kwargs["inline_min_site_calls"] = inline_min_site_calls
        if inline_max_targets is not None:
            kwargs["inline_max_targets"] = inline_max_targets
        controller = self._make_controller(
            options, threshold=threshold,
            speculate=speculate, jobs=jobs, cache_dir=cache_dir,
            compile_threshold=compile_threshold, inline=inline, **kwargs)
        vm = controller.attach(VM(self.module))
        self.controller = controller
        vm.stats.fuel += CODE_LOAD_FUEL_PER_WORD * sum(
            len(f.code) for f in self.compiled.functions)
        main_struct = self.func_addrs[0]
        vm.store_u64(self.frame_base, VALUE_UNDEFINED)
        vm.result = vm.call(self.generic_entry,
                            [main_struct, self.frame_base])
        return vm

    def specialized_function_count(self) -> int:
        return len(self.compiler.processed) if self.compiler else 0
