"""Shape (hidden class) management, host side.

Objects in guest memory are ``[shape_id][slot0]...[slotN]``.  The shape
table lives on the host (the "rest of the runtime" from the
interpreter's point of view); the interpreter only ever compares the
shape id word against IC guard constants — the slow path, a host call,
consults this table and attaches IC stubs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

OBJECT_SLOT_CAPACITY = 24  # fixed capacity; transitions never reallocate


@dataclasses.dataclass
class Shape:
    id: int
    # property name id -> slot index, in insertion order
    slots: Dict[int, int]
    transitions: Dict[int, int] = dataclasses.field(default_factory=dict)


class ShapeTable:
    """The host-side registry of shapes and transitions."""

    def __init__(self):
        self.shapes: List[Shape] = []
        self._literal_cache: Dict[Tuple[int, ...], int] = {}
        self.empty = self.new_shape({})

    def new_shape(self, slots: Dict[int, int]) -> int:
        shape = Shape(len(self.shapes), dict(slots))
        self.shapes.append(shape)
        return shape.id

    def shape_for_literal(self, name_ids: Tuple[int, ...]) -> int:
        """The canonical shape for an object literal's property list
        (computed at compile time, so NEWOBJ carries a constant shape)."""
        cached = self._literal_cache.get(name_ids)
        if cached is not None:
            return cached
        shape_id = self.new_shape({name: i for i, name in
                                   enumerate(name_ids)})
        self._literal_cache[name_ids] = shape_id
        return shape_id

    def lookup(self, shape_id: int, name_id: int) -> Optional[int]:
        return self.shapes[shape_id].slots.get(name_id)

    def transition(self, shape_id: int, name_id: int) -> int:
        """Shape after adding ``name_id``; creates it on first use."""
        shape = self.shapes[shape_id]
        cached = shape.transitions.get(name_id)
        if cached is not None:
            return cached
        if len(shape.slots) >= OBJECT_SLOT_CAPACITY:
            raise RuntimeError("object exceeds fixed slot capacity")
        slots = dict(shape.slots)
        slots[name_id] = len(slots)
        new_id = self.new_shape(slots)
        shape.transitions[name_id] = new_id
        return new_id

    def all_property_pairs(self) -> List[Tuple[int, int, int]]:
        """(shape_id, name_id, slot) for every property of every shape —
        the enumeration the AOT IC corpus is built from."""
        pairs = []
        for shape in self.shapes:
            for name_id, slot in shape.slots.items():
                pairs.append((shape.id, name_id, slot))
        return pairs


class NameTable:
    """Interns property names to integer ids (the string-table stand-in)."""

    def __init__(self):
        self.names: List[str] = []
        self.ids: Dict[str, int] = {}

    def intern(self, name: str) -> int:
        existing = self.ids.get(name)
        if existing is not None:
            return existing
        self.ids[name] = len(self.names)
        self.names.append(name)
        return self.ids[name]

    def name_of(self, name_id: int) -> str:
        return self.names[name_id]
