"""NaN-boxed 64-bit values (SpiderMonkey-style).

Doubles are stored as their raw IEEE-754 bits.  Non-double values use
bit patterns that no canonical double operation produces: the top 16
bits select a tag in ``[0xFFF9, 0xFFFE]`` and the low 48 bits carry the
payload (heap address, function id, or boolean).

The paper's future-work section (S9.1) points out that NaN-box tag
checks are exactly the kind of pattern a known-bits optimizer can
exploit; here they are the guard conditions in IC stubs.
"""

from __future__ import annotations

import struct

TAG_SHIFT = 48
TAG_BOOL = 0xFFF9
TAG_NULL = 0xFFFA
TAG_UNDEFINED = 0xFFFB
TAG_OBJECT = 0xFFFC
TAG_FUNCTION = 0xFFFD
TAG_ARRAY = 0xFFFE

PAYLOAD_MASK = (1 << TAG_SHIFT) - 1

VALUE_TRUE = (TAG_BOOL << TAG_SHIFT) | 1
VALUE_FALSE = TAG_BOOL << TAG_SHIFT
VALUE_NULL = TAG_NULL << TAG_SHIFT
VALUE_UNDEFINED = TAG_UNDEFINED << TAG_SHIFT

# Sentinel returned by IC stubs whose guards fail; never a legal value
# (Python float operations never produce payload NaNs).
IC_FAIL = 0xFFFF000000000001


def box_double(value: float) -> int:
    return int.from_bytes(struct.pack("<d", value), "little")


def unbox_double(bits: int) -> float:
    return struct.unpack("<d", bits.to_bytes(8, "little"))[0]


def box_bool(value: bool) -> int:
    return VALUE_TRUE if value else VALUE_FALSE


def box_object(addr: int) -> int:
    return (TAG_OBJECT << TAG_SHIFT) | addr


def box_array(addr: int) -> int:
    return (TAG_ARRAY << TAG_SHIFT) | addr


def box_function(func_id: int) -> int:
    return (TAG_FUNCTION << TAG_SHIFT) | func_id


def tag_of(bits: int) -> int:
    return bits >> TAG_SHIFT


def is_double(bits: int) -> bool:
    return not (TAG_BOOL <= tag_of(bits) <= TAG_ARRAY) and bits != IC_FAIL


def payload(bits: int) -> int:
    return bits & PAYLOAD_MASK


def describe(bits: int) -> str:
    """Debug/print rendering of a boxed value."""
    tag = tag_of(bits)
    if tag == TAG_BOOL:
        return "true" if payload(bits) else "false"
    if tag == TAG_NULL:
        return "null"
    if tag == TAG_UNDEFINED:
        return "undefined"
    if tag == TAG_OBJECT:
        return f"<object @{payload(bits):#x}>"
    if tag == TAG_ARRAY:
        return f"<array @{payload(bits):#x}>"
    if tag == TAG_FUNCTION:
        return f"<function #{payload(bits)}>"
    value = unbox_double(bits)
    if value == int(value):
        return str(int(value))
    return repr(value)


def truthy(bits: int) -> bool:
    """Host-side JS truthiness (the interpreter implements the same
    logic inline)."""
    tag = tag_of(bits)
    if tag == TAG_BOOL:
        return payload(bits) != 0
    if tag in (TAG_NULL, TAG_UNDEFINED):
        return False
    if tag in (TAG_OBJECT, TAG_ARRAY, TAG_FUNCTION):
        return True
    value = unbox_double(bits)
    return value == value and value != 0.0  # NaN and ±0 are falsy
