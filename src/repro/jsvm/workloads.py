"""Octane-analog MiniJS workloads (Fig. 11).

Thirteen small programs named after the Octane suite, each exercising
the engine the way its namesake stresses a JS engine (object-heavy OO
dispatch, double crunching, array traffic, ...).  Two are deliberate
outliers, as in the paper:

* ``regexp`` spends its time in a host-implemented matching helper (the
  analog of SpiderMonkey's separate regex-engine interpreter, which
  weval does not touch), so specialization barely helps;
* ``codeload`` runs many functions once each (cold code), so removing
  dispatch from hot loops buys little.

Each workload has a scale parameter baked in small enough for the IR VM.
``PRINTS`` maps each name to the expected printed output, used by tests
to confirm all four engine configurations agree.
"""

from __future__ import annotations

from typing import Dict

WORKLOADS: Dict[str, str] = {}

# ---------------------------------------------------------------------------
# richards: OO task-queue scheduler kernel — method dispatch + state flags.
WORKLOADS["richards"] = """
function makeTask(id, priority) {
  return {id: id, priority: priority, state: 0, count: 0, run: taskRun};
}
function taskRun(quantum) {
  var i = 0;
  while (i < quantum) {
    this.count = this.count + this.priority;
    this.state = (this.state + 1) % 3;
    i++;
  }
  return this.count;
}
function schedule(rounds) {
  var t1 = makeTask(1, 1);
  var t2 = makeTask(2, 2);
  var t3 = makeTask(3, 3);
  var total = 0;
  for (var r = 0; r < rounds; r++) {
    total = total + t1.run(4) + t2.run(3) + t3.run(2);
  }
  return total;
}
print(schedule(40));
"""

# deltablue: constraint propagation — chained object updates.
WORKLOADS["deltablue"] = """
function makeVar(value) {
  return {value: value, stay: false};
}
function makeConstraint(input, output, scale, offset) {
  return {input: input, output: output, scale: scale, offset: offset,
          execute: constraintExecute};
}
function constraintExecute() {
  this.output.value = this.input.value * this.scale + this.offset;
  return this.output.value;
}
function chain(length, rounds) {
  var first = makeVar(1);
  var vars = [first];
  var constraints = [];
  for (var i = 0; i < length; i++) {
    var next = makeVar(0);
    constraints[i] = makeConstraint(vars[i], next, 2, 1);
    vars[i + 1] = next;
  }
  var total = 0;
  for (var r = 0; r < rounds; r++) {
    first.value = r;
    for (var i = 0; i < length; i++) {
      constraints[i].execute();
    }
    total = total + vars[length].value;
  }
  return total;
}
print(chain(6, 25));
"""

# crypto: modular exponentiation on doubles-as-integers.
WORKLOADS["crypto"] = """
function modpow(base, exponent, modulus) {
  var result = 1;
  var b = base % modulus;
  var e = exponent;
  while (e > 0) {
    if (e % 2 == 1) {
      result = (result * b) % modulus;
    }
    e = Math.floor(e / 2);
    b = (b * b) % modulus;
  }
  return result;
}
function run(n) {
  var acc = 0;
  for (var i = 1; i <= n; i++) {
    acc = (acc + modpow(i, 13, 497)) % 1000000;
  }
  return acc;
}
print(run(60));
"""

# raytrace: vector objects, dot products, sqrt.
WORKLOADS["raytrace"] = """
function vec(x, y, z) {
  return {x: x, y: y, z: z, dot: vecDot};
}
function vecDot(other) {
  return this.x * other.x + this.y * other.y + this.z * other.z;
}
function traceRow(width) {
  var origin = vec(0, 0, -5);
  var acc = 0;
  for (var i = 0; i < width; i++) {
    var dir = vec(i / width, 0.5, 1);
    var b = 2 * origin.dot(dir);
    var c = origin.dot(origin) - 16;
    var disc = b * b - 4 * c;
    if (disc > 0) {
      acc = acc + Math.sqrt(disc);
    }
  }
  return Math.floor(acc);
}
print(traceRow(120));
"""

# earleyboyer: symbolic list manipulation via linked objects.
WORKLOADS["earleyboyer"] = """
function cons(head, tail) {
  return {head: head, tail: tail};
}
function listSum(list) {
  var total = 0;
  var node = list;
  while (node != null) {
    total = total + node.head;
    node = node.tail;
  }
  return total;
}
function rewrite(depth) {
  var list = null;
  for (var i = 0; i < depth; i++) {
    list = cons(i % 7, list);
  }
  var total = 0;
  for (var r = 0; r < 20; r++) {
    total = total + listSum(list);
  }
  return total;
}
print(rewrite(60));
"""

# regexp: host-side matching engine (the outlier: weval can't touch it).
WORKLOADS["regexp"] = """
function run(rounds) {
  var text = [1, 2, 3, 1, 2, 1, 2, 3, 3, 1, 2, 3, 1, 1, 2];
  var pattern = [1, 2, 3];
  var matches = 0;
  for (var r = 0; r < rounds; r++) {
    matches = matches + regexMatchCount(text, pattern);
  }
  return matches;
}
print(run(150));
"""

# splay: binary-tree insert/lookup via objects (pointer chasing).
WORKLOADS["splay"] = """
function makeNode(key) {
  return {key: key, left: null, right: null};
}
function insert(root, key) {
  if (root == null) { return makeNode(key); }
  var node = root;
  while (true) {
    if (key < node.key) {
      if (node.left == null) { node.left = makeNode(key); break; }
      node = node.left;
    } else {
      if (node.right == null) { node.right = makeNode(key); break; }
      node = node.right;
    }
  }
  return root;
}
function depthOf(root, key) {
  var depth = 0;
  var node = root;
  while (node != null) {
    if (key == node.key) { return depth; }
    if (key < node.key) { node = node.left; } else { node = node.right; }
    depth++;
  }
  return 0 - 1;
}
function run(n) {
  var root = null;
  var seed = 7;
  for (var i = 0; i < n; i++) {
    seed = (seed * 131 + 17) % 1000;
    root = insert(root, seed);
  }
  var total = 0;
  seed = 7;
  for (var i = 0; i < n; i++) {
    seed = (seed * 131 + 17) % 1000;
    total = total + depthOf(root, seed);
  }
  return total;
}
print(run(60));
"""

# navierstokes: double array stencil kernel.
WORKLOADS["navierstokes"] = """
function relax(cells, iterations) {
  var grid = [];
  for (var i = 0; i < cells; i++) {
    grid[i] = i % 5;
  }
  for (var it = 0; it < iterations; it++) {
    for (var i = 1; i < cells - 1; i++) {
      grid[i] = (grid[i - 1] + grid[i] * 2 + grid[i + 1]) / 4;
    }
  }
  var total = 0;
  for (var i = 0; i < cells; i++) {
    total = total + grid[i];
  }
  return Math.floor(total * 1000);
}
print(relax(40, 12));
"""

# pdfjs: byte-array decoding (masks, shifts via arithmetic).
WORKLOADS["pdfjs"] = """
function decode(n) {
  var data = [];
  for (var i = 0; i < n; i++) {
    data[i] = (i * 37 + 11) % 256;
  }
  var checksum = 0;
  for (var pass = 0; pass < 15; pass++) {
    for (var i = 0; i < n; i++) {
      var b = data[i];
      var high = Math.floor(b / 16);
      var low = b % 16;
      checksum = (checksum + high * 31 + low * 7) % 65536;
    }
  }
  return checksum;
}
print(decode(64));
"""

# mandreel: mixed arithmetic + memory, compiled-C-style code.
WORKLOADS["mandreel"] = """
function body(n) {
  var xs = [];
  var ys = [];
  for (var i = 0; i < n; i++) {
    xs[i] = i * 0.5;
    ys[i] = n - i;
  }
  var acc = 0;
  for (var step = 0; step < 20; step++) {
    for (var i = 0; i < n; i++) {
      var x = xs[i] + ys[i] * 0.25;
      var y = ys[i] - xs[i] * 0.125;
      xs[i] = x;
      ys[i] = y;
      if (x * x + y * y > 1000000) {
        xs[i] = 0;
        ys[i] = 0;
      }
    }
    acc = acc + xs[step % n];
  }
  return Math.floor(acc);
}
print(body(48));
"""

# gameboy: an emulator-style inner interpreter over an array "memory".
WORKLOADS["gameboy"] = """
function emulate(steps) {
  var mem = [];
  for (var i = 0; i < 64; i++) {
    mem[i] = (i * 7 + 3) % 256;
  }
  var a = 0;
  var pc = 0;
  for (var s = 0; s < steps; s++) {
    var op = mem[pc % 64] % 4;
    if (op == 0) { a = (a + mem[(pc + 1) % 64]) % 256; }
    else { if (op == 1) { a = (a * 2) % 256; }
    else { if (op == 2) { mem[(pc + 2) % 64] = a; }
    else { a = (a + 1) % 256; } } }
    pc = pc + 3;
  }
  return a;
}
print(emulate(500));
"""

# codeload: many functions, each run once — cold-code outlier.
_codeload_fns = "\n".join(
    f"function cold{i}(x) {{ return x * {i} + {i % 7}; }}"
    for i in range(40))
_codeload_calls = " + ".join(f"cold{i}(2)" for i in range(40))
WORKLOADS["codeload"] = f"""
{_codeload_fns}
function run() {{
  return {_codeload_calls};
}}
print(run());
"""

# box2d: physics-ish vector integration over object bodies.
WORKLOADS["box2d"] = """
function makeBody(x, y) {
  return {x: x, y: y, vx: 1, vy: 0, step: bodyStep};
}
function bodyStep(dt) {
  this.vy = this.vy + 10 * dt;
  this.x = this.x + this.vx * dt;
  this.y = this.y + this.vy * dt;
  if (this.y > 100) {
    this.y = 100;
    this.vy = 0 - this.vy * 0.5;
  }
  return this.y;
}
function simulate(bodies, steps) {
  var world = [];
  for (var i = 0; i < bodies; i++) {
    world[i] = makeBody(i, i * 2);
  }
  var total = 0;
  for (var s = 0; s < steps; s++) {
    for (var i = 0; i < bodies; i++) {
      total = total + world[i].step(0.1);
    }
  }
  return Math.floor(total);
}
print(simulate(6, 50));
"""

BENCHMARK_NAMES = [
    "richards", "deltablue", "crypto", "raytrace", "earleyboyer",
    "regexp", "splay", "navierstokes", "pdfjs", "mandreel", "gameboy",
    "codeload", "box2d",
]

assert set(BENCHMARK_NAMES) == set(WORKLOADS)


def regex_match_count_host(text_values, pattern_values) -> int:
    """Host-side 'regex engine': counts occurrences of ``pattern`` in
    ``text`` (both lists of numbers).  This models the separate regex
    interpreter that weval does not specialize (the Fig. 11 RegExp
    outlier)."""
    count = 0
    n, m = len(text_values), len(pattern_values)
    for start in range(n - m + 1):
        if all(text_values[start + j] == pattern_values[j]
               for j in range(m)):
            count += 1
    return count
