"""MiniLua: the S7 case study (PUC-Rio Lua analog).

A Lua-subset language with a Python frontend (lexer, parser, compiler to
register-based bytecode like PUC-Rio Lua's), a register-machine
interpreter written in mini-C, and an AOT pipeline that specializes the
interpreter per function prototype.

Faithful to the paper's S7, the interpreter carries *only* context
annotations (``push_context``/``update_context``); lifting frame
registers to SSA is explicitly left as the paper's future work, so the
measured speedup isolates dispatch removal (the paper's 1.84x).
"""

from repro.luavm.compiler import LuaCompileError, compile_lua
from repro.luavm.runtime import LuaRuntime

__all__ = ["LuaCompileError", "compile_lua", "LuaRuntime"]
