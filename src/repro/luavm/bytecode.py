"""MiniLua bytecode: fixed-width register-machine instructions.

Every instruction is four 64-bit words ``[op, a, b, c]`` (unused
operands are zero), so ``pc`` advances in steps of four and branch
targets are word indices divisible by four.  Registers are frame slots
in linear memory (like PUC-Lua's stack), numbers are 64-bit signed
integers, and booleans are 1/0.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List


class Op(enum.IntEnum):
    LOADK = 0    # R[a] = K[b]
    MOVE = 1     # R[a] = R[b]
    ADD = 2      # R[a] = R[b] + R[c]
    SUB = 3
    MUL = 4
    DIV = 5      # signed truncating division
    MOD = 6      # signed remainder
    LT = 7       # R[a] = R[b] < R[c] (signed)
    LE = 8
    EQ = 9
    NE = 10
    JMP = 11     # pc = a
    JMPZ = 12    # if R[a] == 0: pc = b
    JMPNZ = 13   # if R[a] != 0: pc = b
    CALL = 14    # R[a] = call proto[b] with frame at R[c]
    RETURN = 15  # return R[a]
    UNM = 16     # R[a] = -R[b]
    PRINT = 17   # host call: print R[a] (returns R[a])


WORDS_PER_INSTR = 4


@dataclasses.dataclass
class Proto:
    """One compiled MiniLua function (PUC-Lua's ``Proto`` analog)."""

    name: str
    index: int                  # position in the runtime's proto table
    num_params: int
    num_registers: int          # frame size in slots
    code: List[int] = dataclasses.field(default_factory=list)  # flat words
    constants: List[int] = dataclasses.field(default_factory=list)

    def emit(self, op: Op, a: int = 0, b: int = 0, c: int = 0) -> int:
        """Append an instruction; returns its word index (the pc)."""
        pc = len(self.code)
        self.code.extend([int(op), a & ((1 << 64) - 1),
                          b & ((1 << 64) - 1), c & ((1 << 64) - 1)])
        return pc

    def patch(self, pc: int, operand: int, value: int) -> None:
        """Backpatch operand ``operand`` (1=a, 2=b, 3=c) of the
        instruction at word index ``pc``."""
        self.code[pc + operand] = value & ((1 << 64) - 1)

    def here(self) -> int:
        return len(self.code)

    def const_index(self, value: int) -> int:
        value &= (1 << 64) - 1
        try:
            return self.constants.index(value)
        except ValueError:
            self.constants.append(value)
            return len(self.constants) - 1


def disassemble(proto: Proto) -> str:
    """Human-readable listing, used in tests and examples."""
    lines = [f"proto {proto.name} (params={proto.num_params}, "
             f"regs={proto.num_registers})"]
    for pc in range(0, len(proto.code), WORDS_PER_INSTR):
        op, a, b, c = proto.code[pc:pc + WORDS_PER_INSTR]
        lines.append(f"  {pc:4d}: {Op(op).name:8s} {a} {b} {c}")
    if proto.constants:
        lines.append("  constants: " + ", ".join(
            str(k) for k in proto.constants))
    return "\n".join(lines)
