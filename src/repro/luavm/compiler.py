"""MiniLua compiler: AST to register bytecode (PUC-Lua style)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.luavm.bytecode import Op, Proto, WORDS_PER_INSTR
from repro.luavm.frontend import (
    AssignStmt,
    BinOp,
    Bool,
    BreakStmt,
    CallExpr,
    CallStmt,
    Chunk,
    FunctionDef,
    IfStmt,
    LocalStmt,
    LuaCompileError,
    Name,
    Num,
    NumericForStmt,
    ReturnStmt,
    UnOp,
    WhileStmt,
    parse,
)

_ARITH = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD}
_CMP = {"<": (Op.LT, False), "<=": (Op.LE, False),
        ">": (Op.LT, True), ">=": (Op.LE, True),
        "==": (Op.EQ, False), "~=": (Op.NE, False)}


class _FuncCompiler:
    def __init__(self, proto: Proto, params: List[str],
                 function_ids: Dict[str, int]):
        self.proto = proto
        self.function_ids = function_ids
        self.locals: Dict[str, int] = {}
        for i, param in enumerate(params):
            self.locals[param] = i
        self.next_reg = len(params)
        self.high_water = self.next_reg
        self.break_patches: List[List[int]] = []

    # -- register bookkeeping ---------------------------------------------
    def alloc(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        self.high_water = max(self.high_water, self.next_reg)
        return reg

    def free_to(self, mark: int) -> None:
        self.next_reg = mark

    def new_local(self, name: str) -> int:
        reg = self.alloc()
        self.locals[name] = reg
        return reg

    # -- statements ----------------------------------------------------------
    def compile_block(self, stmts: List[object]) -> None:
        for stmt in stmts:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: object) -> None:
        proto = self.proto
        if isinstance(stmt, LocalStmt):
            mark = self.next_reg
            value = self.compile_expr(stmt.value)
            self.free_to(mark)
            reg = self.new_local(stmt.name)
            if value != reg:
                proto.emit(Op.MOVE, reg, value)
            return
        if isinstance(stmt, AssignStmt):
            if stmt.name not in self.locals:
                raise LuaCompileError(
                    f"assignment to undeclared variable {stmt.name!r} "
                    f"(globals are not supported; use 'local')")
            dest = self.locals[stmt.name]
            mark = self.next_reg
            value = self.compile_expr(stmt.value)
            self.free_to(mark)
            if value != dest:
                proto.emit(Op.MOVE, dest, value)
            return
        if isinstance(stmt, CallStmt):
            mark = self.next_reg
            self.compile_expr(stmt.call)
            self.free_to(mark)
            return
        if isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                zero = self.alloc()
                proto.emit(Op.LOADK, zero, proto.const_index(0))
                proto.emit(Op.RETURN, zero)
                self.free_to(zero)
            else:
                mark = self.next_reg
                value = self.compile_expr(stmt.value)
                proto.emit(Op.RETURN, value)
                self.free_to(mark)
            return
        if isinstance(stmt, BreakStmt):
            if not self.break_patches:
                raise LuaCompileError("break outside loop")
            pc = self.proto.emit(Op.JMP, 0)
            self.break_patches[-1].append(pc)
            return
        if isinstance(stmt, IfStmt):
            self._compile_if(stmt)
            return
        if isinstance(stmt, WhileStmt):
            self._compile_while(stmt)
            return
        if isinstance(stmt, NumericForStmt):
            self._compile_for(stmt)
            return
        raise LuaCompileError(f"unhandled statement {type(stmt).__name__}")

    def _compile_if(self, stmt: IfStmt) -> None:
        proto = self.proto
        end_patches: List[int] = []
        for i, (cond, body) in enumerate(stmt.arms):
            if cond is None:
                self.compile_block(body)
                break
            mark = self.next_reg
            creg = self.compile_expr(cond)
            skip = proto.emit(Op.JMPZ, creg, 0)
            self.free_to(mark)
            self.compile_block(body)
            is_last = (i == len(stmt.arms) - 1)
            if not is_last:
                end_patches.append(proto.emit(Op.JMP, 0))
            proto.patch(skip, 2, proto.here())
        for pc in end_patches:
            proto.patch(pc, 1, proto.here())

    def _compile_while(self, stmt: WhileStmt) -> None:
        proto = self.proto
        top = proto.here()
        mark = self.next_reg
        creg = self.compile_expr(stmt.cond)
        exit_jump = proto.emit(Op.JMPZ, creg, 0)
        self.free_to(mark)
        self.break_patches.append([])
        self.compile_block(stmt.body)
        proto.emit(Op.JMP, top)
        after = proto.here()
        proto.patch(exit_jump, 2, after)
        for pc in self.break_patches.pop():
            proto.patch(pc, 1, after)

    def _compile_for(self, stmt: NumericForStmt) -> None:
        proto = self.proto
        ivar = self.new_local(stmt.var)
        start = self.compile_expr(stmt.start)
        if start != ivar:
            proto.emit(Op.MOVE, ivar, start)
        limit = self.alloc()
        stop = self.compile_expr(stmt.stop)
        if stop != limit:
            proto.emit(Op.MOVE, limit, stop)
        step_reg = self.alloc()
        if stmt.step is None:
            proto.emit(Op.LOADK, step_reg, proto.const_index(1))
        else:
            step = self.compile_expr(stmt.step)
            if step != step_reg:
                proto.emit(Op.MOVE, step_reg, step)
        top = proto.here()
        mark = self.next_reg
        cond = self.alloc()
        # Only constant-positive or default steps are supported; a general
        # implementation would branch on the step's sign.
        proto.emit(Op.LE, cond, ivar, limit)
        exit_jump = proto.emit(Op.JMPZ, cond, 0)
        self.free_to(mark)
        self.break_patches.append([])
        self.compile_block(stmt.body)
        proto.emit(Op.ADD, ivar, ivar, step_reg)
        proto.emit(Op.JMP, top)
        after = proto.here()
        proto.patch(exit_jump, 2, after)
        for pc in self.break_patches.pop():
            proto.patch(pc, 1, after)

    # -- expressions -----------------------------------------------------------
    def compile_expr(self, expr: object) -> int:
        proto = self.proto
        if isinstance(expr, Num):
            reg = self.alloc()
            proto.emit(Op.LOADK, reg, proto.const_index(expr.value))
            return reg
        if isinstance(expr, Bool):
            reg = self.alloc()
            proto.emit(Op.LOADK, reg, proto.const_index(int(expr.value)))
            return reg
        if isinstance(expr, Name):
            if expr.name not in self.locals:
                raise LuaCompileError(f"undeclared variable {expr.name!r}")
            return self.locals[expr.name]
        if isinstance(expr, UnOp):
            mark = self.next_reg
            operand = self.compile_expr(expr.operand)
            self.free_to(mark)
            dest = self.alloc()
            if expr.op == "-":
                proto.emit(Op.UNM, dest, operand)
            else:  # not
                zero = self.alloc()
                proto.emit(Op.LOADK, zero, proto.const_index(0))
                proto.emit(Op.EQ, dest, operand, zero)
                self.free_to(dest + 1)
            return dest
        if isinstance(expr, BinOp):
            if expr.op in ("and", "or"):
                return self._compile_logical(expr)
            mark = self.next_reg
            left = self.compile_expr(expr.left)
            right = self.compile_expr(expr.right)
            self.free_to(mark)
            dest = self.alloc()
            if expr.op in _ARITH:
                proto.emit(_ARITH[expr.op], dest, left, right)
            elif expr.op in _CMP:
                op, swap = _CMP[expr.op]
                if swap:
                    left, right = right, left
                proto.emit(op, dest, left, right)
            else:
                raise LuaCompileError(f"unhandled operator {expr.op!r}")
            return dest
        if isinstance(expr, CallExpr):
            return self._compile_call(expr)
        raise LuaCompileError(f"unhandled expression {type(expr).__name__}")

    def _compile_logical(self, expr: BinOp) -> int:
        """Short-circuit and/or with Lua value semantics: ``a and b``
        yields ``b`` when ``a`` is truthy, else ``a`` (MiniLua
        truthiness: non-zero — a documented deviation, since MiniLua's
        only values are integers)."""
        proto = self.proto
        dest = self.alloc()
        mark = self.next_reg
        left = self.compile_expr(expr.left)
        self.free_to(mark)
        if left != dest:
            proto.emit(Op.MOVE, dest, left)
        if expr.op == "and":
            skip = proto.emit(Op.JMPZ, dest, 0)
        else:
            skip = proto.emit(Op.JMPNZ, dest, 0)
        right = self.compile_expr(expr.right)
        self.free_to(mark)
        if right != dest:
            proto.emit(Op.MOVE, dest, right)
        proto.patch(skip, 2, proto.here())
        return dest

    def _compile_call(self, expr: CallExpr) -> int:
        proto = self.proto
        if expr.func == "print":
            if len(expr.args) != 1:
                raise LuaCompileError("print takes exactly one argument")
            mark = self.next_reg
            value = self.compile_expr(expr.args[0])
            proto.emit(Op.PRINT, value)
            self.free_to(mark)
            return value
        if expr.func not in self.function_ids:
            raise LuaCompileError(f"call to unknown function {expr.func!r}")
        fid = self.function_ids[expr.func]
        base = self.next_reg
        for arg in expr.args:
            mark = self.next_reg
            value = self.compile_expr(arg)
            self.free_to(mark)
            dest = self.alloc()
            if value != dest:
                proto.emit(Op.MOVE, dest, value)
        self.free_to(base)
        dest = self.alloc()
        proto.emit(Op.CALL, dest, fid, base)
        return dest


def compile_lua(source: str) -> List[Proto]:
    """Compile a MiniLua chunk to a list of prototypes.

    The chunk's top-level statements become proto 0 (``main``); each
    ``function`` definition becomes its own proto.  Arity is checked at
    compile time.
    """
    chunk = parse(source)
    function_ids: Dict[str, int] = {}
    protos: List[Proto] = []

    main = Proto("main", 0, 0, 0)
    protos.append(main)
    for i, fdef in enumerate(chunk.functions):
        if fdef.name in function_ids:
            raise LuaCompileError(f"duplicate function {fdef.name!r}")
        function_ids[fdef.name] = i + 1
        protos.append(Proto(fdef.name, i + 1, len(fdef.params), 0))

    for fdef, proto in zip(chunk.functions, protos[1:]):
        fc = _FuncCompiler(proto, fdef.params, function_ids)
        fc.compile_block(fdef.body)
        # Implicit "return 0" if control reaches the end.
        zero = fc.alloc()
        proto.emit(Op.LOADK, zero, proto.const_index(0))
        proto.emit(Op.RETURN, zero)
        proto.num_registers = fc.high_water + 1

    fc = _FuncCompiler(main, [], function_ids)
    fc.compile_block(chunk.main)
    zero = fc.alloc()
    main.emit(Op.LOADK, zero, main.const_index(0))
    main.emit(Op.RETURN, zero)
    main.num_registers = fc.high_water + 1
    return protos
