"""MiniLua lexer and parser (Lua-subset syntax, integer arithmetic).

Supported: ``local`` declarations, assignment, ``if/elseif/else``,
``while``, numeric ``for``, top-level ``function`` definitions, calls,
``return``, ``and``/``or``/``not``, comparison and arithmetic operators,
``true``/``false``, and integer literals.  Unsupported Lua features
(tables, strings, closures, metamethods, floats) are outside the slice
the paper's S7 benchmarks exercise.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple


class LuaCompileError(Exception):
    pass


KEYWORDS = {
    "local", "if", "then", "elseif", "else", "end", "while", "do", "for",
    "function", "return", "and", "or", "not", "true", "false", "break",
}

_OPS = ["==", "~=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%",
        "(", ")", ",", "=", ";"]


@dataclasses.dataclass(frozen=True)
class Tok:
    kind: str     # ident, keyword, int, op, eof
    text: str
    line: int
    value: Optional[int] = None


def tokenize(source: str) -> List[Tok]:
    toks: List[Tok] = []
    i, line, n = 0, 1, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            toks.append(Tok("keyword" if text in KEYWORDS else "ident",
                            text, line))
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            toks.append(Tok("int", text, line, int(text)))
            continue
        for op in _OPS:
            if source.startswith(op, i):
                toks.append(Tok("op", op, line))
                i += len(op)
                break
        else:
            raise LuaCompileError(f"line {line}: bad character {ch!r}")
    toks.append(Tok("eof", "", line))
    return toks


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclasses.dataclass
class Num:
    value: int


@dataclasses.dataclass
class Bool:
    value: bool


@dataclasses.dataclass
class Name:
    name: str


@dataclasses.dataclass
class BinOp:
    op: str
    left: object
    right: object


@dataclasses.dataclass
class UnOp:
    op: str            # "-" | "not"
    operand: object


@dataclasses.dataclass
class CallExpr:
    func: str
    args: List[object]


@dataclasses.dataclass
class LocalStmt:
    name: str
    value: object


@dataclasses.dataclass
class AssignStmt:
    name: str
    value: object


@dataclasses.dataclass
class CallStmt:
    call: CallExpr


@dataclasses.dataclass
class IfStmt:
    # list of (condition, body); final plain-else body may be last with
    # condition None.
    arms: List[Tuple[Optional[object], List[object]]]


@dataclasses.dataclass
class WhileStmt:
    cond: object
    body: List[object]


@dataclasses.dataclass
class NumericForStmt:
    var: str
    start: object
    stop: object
    step: Optional[object]
    body: List[object]


@dataclasses.dataclass
class BreakStmt:
    pass


@dataclasses.dataclass
class ReturnStmt:
    value: Optional[object]


@dataclasses.dataclass
class FunctionDef:
    name: str
    params: List[str]
    body: List[object]


@dataclasses.dataclass
class Chunk:
    functions: List[FunctionDef]
    main: List[object]      # top-level statements


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

class Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0

    def peek(self) -> Tok:
        return self.toks[self.pos]

    def next(self) -> Tok:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Tok]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Tok:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise LuaCompileError(
                f"line {tok.line}: expected {text or kind!r}, found "
                f"{tok.text!r}")
        return self.next()

    # -- statements ------------------------------------------------------
    def parse_chunk(self) -> Chunk:
        functions: List[FunctionDef] = []
        main: List[object] = []
        while self.peek().kind != "eof":
            if self.peek().text == "function":
                functions.append(self.parse_function())
            else:
                main.append(self.parse_statement())
        return Chunk(functions, main)

    def parse_function(self) -> FunctionDef:
        self.expect("keyword", "function")
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[str] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self.parse_block({"end"})
        self.expect("keyword", "end")
        return FunctionDef(name, params, body)

    def parse_block(self, stops: set) -> List[object]:
        stmts: List[object] = []
        while True:
            tok = self.peek()
            if tok.kind == "eof" or (tok.kind == "keyword"
                                     and tok.text in stops):
                return stmts
            stmts.append(self.parse_statement())

    def parse_statement(self) -> object:
        tok = self.peek()
        if tok.text == "local":
            self.next()
            name = self.expect("ident").text
            self.expect("op", "=")
            return LocalStmt(name, self.parse_expr())
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "while":
            self.next()
            cond = self.parse_expr()
            self.expect("keyword", "do")
            body = self.parse_block({"end"})
            self.expect("keyword", "end")
            return WhileStmt(cond, body)
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "return":
            self.next()
            value = None
            nxt = self.peek()
            if not (nxt.kind == "eof" or
                    (nxt.kind == "keyword" and
                     nxt.text in ("end", "else", "elseif"))):
                value = self.parse_expr()
            self.accept("op", ";")
            return ReturnStmt(value)
        if tok.text == "break":
            self.next()
            return BreakStmt()
        if tok.kind == "ident":
            name = self.next().text
            if self.accept("op", "="):
                return AssignStmt(name, self.parse_expr())
            if self.peek().text == "(":
                return CallStmt(self.parse_call(name))
            raise LuaCompileError(
                f"line {tok.line}: expected '=' or call after {name!r}")
        raise LuaCompileError(
            f"line {tok.line}: unexpected token {tok.text!r}")

    def parse_if(self) -> IfStmt:
        self.expect("keyword", "if")
        arms: List[Tuple[Optional[object], List[object]]] = []
        cond = self.parse_expr()
        self.expect("keyword", "then")
        arms.append((cond, self.parse_block({"elseif", "else", "end"})))
        while self.accept("keyword", "elseif"):
            cond = self.parse_expr()
            self.expect("keyword", "then")
            arms.append((cond, self.parse_block({"elseif", "else", "end"})))
        if self.accept("keyword", "else"):
            arms.append((None, self.parse_block({"end"})))
        self.expect("keyword", "end")
        return IfStmt(arms)

    def parse_for(self) -> NumericForStmt:
        self.expect("keyword", "for")
        var = self.expect("ident").text
        self.expect("op", "=")
        start = self.parse_expr()
        self.expect("op", ",")
        stop = self.parse_expr()
        step = None
        if self.accept("op", ","):
            step = self.parse_expr()
        self.expect("keyword", "do")
        body = self.parse_block({"end"})
        self.expect("keyword", "end")
        return NumericForStmt(var, start, stop, step, body)

    # -- expressions ------------------------------------------------------
    _LEVELS = [["or"], ["and"], ["<", "<=", ">", ">=", "==", "~="],
               ["+", "-"], ["*", "/", "%"]]

    def parse_expr(self, level: int = 0) -> object:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = self._LEVELS[level]
        while True:
            tok = self.peek()
            if tok.text in ops and tok.kind in ("op", "keyword"):
                self.next()
                right = self.parse_expr(level + 1)
                left = BinOp(tok.text, left, right)
            else:
                return left

    def parse_unary(self) -> object:
        tok = self.peek()
        if tok.text == "not":
            self.next()
            return UnOp("not", self.parse_unary())
        if tok.text == "-":
            self.next()
            return UnOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> object:
        tok = self.next()
        if tok.kind == "int":
            return Num(tok.value)
        if tok.text == "true":
            return Bool(True)
        if tok.text == "false":
            return Bool(False)
        if tok.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if tok.kind == "ident":
            if self.peek().text == "(":
                return self.parse_call(tok.text)
            return Name(tok.text)
        raise LuaCompileError(
            f"line {tok.line}: unexpected {tok.text!r} in expression")

    def parse_call(self, name: str) -> CallExpr:
        self.expect("op", "(")
        args: List[object] = []
        if not self.accept("op", ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        return CallExpr(name, args)


def parse(source: str) -> Chunk:
    return Parser(source).parse_chunk()
