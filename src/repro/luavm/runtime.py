"""MiniLua runtime: heap layout, the mini-C interpreter, AOT pipeline.

Memory layout (all offsets in bytes):

* address 16 holds a pointer to the *proto table* (array of proto
  pointers indexed by function id; id 0 is the top-level chunk);
* each proto is an 8-word struct ``[code_ptr, code_words, consts_ptr,
  nconsts, nparams, nregs, spec, reserved]`` — exactly PUC-Lua's
  ``Proto`` plus the paper's two added fields (S7): ``spec`` holds the
  table index of the specialized function (0 = none);
* the Lua value stack (register frames) grows from ``stack_base``.

The interpreter (``lua_interp``) is annotated with context intrinsics
only — no state intrinsics — matching the paper's S7 port, so the
speedup measured here isolates interpreter-dispatch removal.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core import (
    Runtime as RuntimeArg,
    SnapshotCompiler,
    SpecializationRequest,
    SpecializedConst,
)
from repro.core.specialize import SpecializeOptions
from repro.frontend import compile_source
from repro.ir import Module
from repro.ir.instructions import to_signed
from repro.luavm.bytecode import Proto
from repro.luavm.compiler import compile_lua
from repro.vm import VM

PROTO_TABLE_PTR_ADDR = 16
PROTO_STRUCT_WORDS = 8
SPEC_FIELD_OFFSET = 48  # byte offset of the ``spec`` field

LUA_INTERP_SRC = """
extern void lua_print(u64 value);

u64 lua_call(u64 proto, u64 frame) {
  u64 spec = load64(proto + 48);
  if (spec != 0) {
    return icall2(spec, proto, frame);
  }
  return lua_interp(proto, frame);
}

u64 lua_interp(u64 proto, u64 frame) {
  u64 code = load64(proto);
  u64 consts = load64(proto + 16);
  u64 pc = 0;
  weval_push_context(pc);
  while (1) {
    u64 op = load64(code + pc * 8);
    u64 a = load64(code + pc * 8 + 8);
    u64 b = load64(code + pc * 8 + 16);
    u64 c = load64(code + pc * 8 + 24);
    pc = pc + 4;
    switch (op) {
    case 0: { store64(frame + a * 8, load64(consts + b * 8)); break; }
    case 1: { store64(frame + a * 8, load64(frame + b * 8)); break; }
    case 2: {
      store64(frame + a * 8, load64(frame + b * 8) + load64(frame + c * 8));
      break;
    }
    case 3: {
      store64(frame + a * 8, load64(frame + b * 8) - load64(frame + c * 8));
      break;
    }
    case 4: {
      store64(frame + a * 8, load64(frame + b * 8) * load64(frame + c * 8));
      break;
    }
    case 5: {
      store64(frame + a * 8,
              sdiv(load64(frame + b * 8), load64(frame + c * 8)));
      break;
    }
    case 6: {
      store64(frame + a * 8,
              srem(load64(frame + b * 8), load64(frame + c * 8)));
      break;
    }
    case 7: {
      store64(frame + a * 8,
              slt(load64(frame + b * 8), load64(frame + c * 8)));
      break;
    }
    case 8: {
      store64(frame + a * 8,
              sle(load64(frame + b * 8), load64(frame + c * 8)));
      break;
    }
    case 9: {
      store64(frame + a * 8,
              load64(frame + b * 8) == load64(frame + c * 8));
      break;
    }
    case 10: {
      store64(frame + a * 8,
              load64(frame + b * 8) != load64(frame + c * 8));
      break;
    }
    case 11: { // JMP: unconditional, next pc is the constant target
      pc = a;
      weval_update_context(pc);
      continue;
    }
    case 12: { // JMPZ: two-backedge form (S3.3)
      if (load64(frame + a * 8) == 0) {
        pc = b;
        weval_update_context(pc);
        continue;
      }
      weval_update_context(pc);
      continue;
    }
    case 13: { // JMPNZ
      if (load64(frame + a * 8) != 0) {
        pc = b;
        weval_update_context(pc);
        continue;
      }
      weval_update_context(pc);
      continue;
    }
    case 14: { // CALL dest=a, fid=b, base=c
      u64 protos = load64(16);
      u64 callee = load64(protos + b * 8);
      u64 result = lua_call(callee, frame + c * 8);
      store64(frame + a * 8, result);
      break;
    }
    case 15: { return load64(frame + a * 8); }
    case 16: { store64(frame + a * 8, 0 - load64(frame + b * 8)); break; }
    case 17: { lua_print(load64(frame + a * 8)); break; }
    default: { abort(); }
    }
    weval_update_context(pc);
  }
  return 0;
}
"""


class LuaRuntime:
    """Compile a MiniLua chunk, run it interpreted or AOT-compiled.

    The AOT path goes through :class:`SnapshotCompiler` and therefore
    the compilation engine: pass
    ``SpecializeOptions(jobs=..., cache_dir=...)`` (here or to
    :meth:`aot_compile`) for parallel batch compilation and the
    persistent artifact cache.
    """

    def __init__(self, source: str, memory_size: int = 1 << 22,
                 options: Optional[SpecializeOptions] = None,
                 cache=None):
        self.source = source
        self.protos: List[Proto] = compile_lua(source)
        self.module = Module(memory_size=memory_size)
        self.printed: List[int] = []
        self.options = options
        self.cache = cache

        program = compile_source(LUA_INTERP_SRC)
        program.add_to_module(self.module,
                              externs={"lua_print": self._host_print})

        self.proto_addrs: Dict[int, int] = {}
        self._layout_memory()
        self.stack_base = memory_size // 2
        self.compiler: Optional[SnapshotCompiler] = None
        self.controller = None  # set by run_tiered

    # ------------------------------------------------------------------
    def _host_print(self, vm, value):
        self.printed.append(to_signed(value))
        return None

    def _layout_memory(self) -> None:
        module = self.module
        cursor = 0x1000
        regions: Dict[int, Dict[str, int]] = {}
        for proto in self.protos:
            code_ptr = cursor
            for i, word in enumerate(proto.code):
                module.write_init_u64(code_ptr + i * 8, word)
            cursor += len(proto.code) * 8
            consts_ptr = cursor
            for i, value in enumerate(proto.constants):
                module.write_init_u64(consts_ptr + i * 8, value)
            cursor += max(len(proto.constants), 1) * 8
            regions[proto.index] = {"code": code_ptr, "consts": consts_ptr}

        table_ptr = cursor
        cursor += len(self.protos) * 8
        module.write_init_u64(PROTO_TABLE_PTR_ADDR, table_ptr)
        self.proto_table_ptr = table_ptr

        for proto in self.protos:
            struct_ptr = cursor
            cursor += PROTO_STRUCT_WORDS * 8
            fields = [regions[proto.index]["code"], len(proto.code),
                      regions[proto.index]["consts"], len(proto.constants),
                      proto.num_params, proto.num_registers, 0, 0]
            for i, value in enumerate(fields):
                module.write_init_u64(struct_ptr + i * 8, value)
            module.write_init_u64(table_ptr + proto.index * 8, struct_ptr)
            self.proto_addrs[proto.index] = struct_ptr
        self.data_end = cursor

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_interpreted(self) -> VM:
        """Run the chunk under the generic interpreter; returns the VM
        (for its stats).  main's return value is at ``vm.result``."""
        vm = VM(self.module)
        vm.result = vm.call("lua_call",
                            [self.proto_addrs[0], self.stack_base])
        return vm

    def _request_for(self, proto: Proto) -> SpecializationRequest:
        """The specialization request for one prototype (shared between
        the AOT batch and dynamic promotion — identical keys, so both
        flows hit the same cache/artifact entries)."""
        struct_ptr = self.proto_addrs[proto.index]
        code_ptr = self.module.read_init_u64(struct_ptr)
        consts_ptr = self.module.read_init_u64(struct_ptr + 16)
        return SpecializationRequest(
            "lua_interp",
            [SpecializedConst(struct_ptr), RuntimeArg()],
            specialized_name=f"lua${proto.name}",
            extra_const_memory=[
                (PROTO_TABLE_PTR_ADDR, 8),
                (self.proto_table_ptr, len(self.protos) * 8),
                (struct_ptr, SPEC_FIELD_OFFSET),  # not the spec field
                (code_ptr, len(proto.code) * 8),
                (consts_ptr, max(len(proto.constants), 1) * 8),
            ])

    def tier_entries(self) -> list:
        """One :class:`~repro.pipeline.tiering.TierEntry` per prototype:
        tier 0 is ``lua_interp`` (watched at the ``lua_call`` fallback),
        the dispatch slot is the proto's ``spec`` field, and the frame
        pointer is eligible for guarded speculation."""
        from repro.pipeline.tiering import TierEntry
        return [TierEntry(
            generic="lua_interp",
            key=self.proto_addrs[proto.index],
            request=self._request_for(proto),
            result_addr=self.proto_addrs[proto.index] + SPEC_FIELD_OFFSET,
            speculate_args=(1,),
        ) for proto in self.protos]

    def _make_controller(self, options: Optional[SpecializeOptions] = None,
                         **kwargs):
        from repro.pipeline.tiering import TieringController
        controller = TieringController(self.module,
                                       options or self.options,
                                       cache=self.cache, **kwargs)
        for entry in self.tier_entries():
            controller.register(entry)
        return controller

    def aot_compile(self,
                    options: Optional[SpecializeOptions] = None
                    ) -> SnapshotCompiler:
        """Specialize every prototype and patch its ``spec`` field —
        the paper's snapshot workflow, now expressed as "promote
        everything at startup" through the tiering controller."""
        controller = self._make_controller(options)
        controller.promote_all()
        controller.compiler.freeze()
        self.compiler = controller.compiler
        return self.compiler

    def run_aot(self, backend: Optional[str] = None) -> VM:
        """Run the chunk after AOT compilation (calls go through the
        patched ``spec`` function pointers).

        ``backend`` overrides the specialization options' backend for
        this run: ``"py"`` executes the residual functions as compiled
        Python (tier 2), ``"vm"`` interprets the residual IR.
        """
        if self.compiler is None:
            self.aot_compile()
        vm = self.compiler.resume(backend)
        vm.result = vm.call("lua_call",
                            [self.proto_addrs[0], self.stack_base])
        return vm

    def run_tiered(self, threshold: float = None,
                   speculate: bool = False,
                   backend: Optional[str] = None,
                   options: Optional[SpecializeOptions] = None,
                   jobs: Optional[int] = None,
                   cache_dir: Optional[str] = None,
                   compile_threshold: int = 0) -> VM:
        """Run the chunk under profile-guided dynamic tier-up.

        No ahead-of-time work happens: every proto starts on the
        generic ``lua_interp`` (tier 0) and is promoted at a call
        boundary once its profile crosses ``threshold`` (default
        :data:`~repro.pipeline.tiering.DEFAULT_THRESHOLD`; ``1``
        reproduces the AOT execution exactly, ``float("inf")`` never
        promotes).  The controller is left on ``self.controller`` for
        inspection.
        """
        options = options or self.options or SpecializeOptions()
        if backend is not None:
            options = dataclasses.replace(options, backend=backend)
        controller = self._make_controller(
            options, threshold=threshold,
            speculate=speculate, jobs=jobs, cache_dir=cache_dir,
            compile_threshold=compile_threshold)
        vm = controller.attach(VM(self.module))
        self.controller = controller
        vm.result = vm.call("lua_call",
                            [self.proto_addrs[0], self.stack_base])
        return vm

    def run(self, mode: str = "interp", **kwargs) -> VM:
        """Uniform entry point: ``mode`` is ``"interp"``, ``"aot"``, or
        ``"tiered"`` (kwargs go to the mode's method)."""
        if mode == "interp":
            return self.run_interpreted()
        if mode == "aot":
            return self.run_aot(**kwargs)
        if mode == "tiered":
            return self.run_tiered(**kwargs)
        raise ValueError(f"bad mode {mode!r}")
