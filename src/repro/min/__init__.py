"""The Min register machine: the paper's S5 minimal case study.

Min is a 64-bit unsigned integer machine with a program counter, 256
indexed registers, and an accumulator.  This package contains its ISA and
assembler, two mini-C interpreter variants (with and without weval's
register intrinsics, mirroring the paper's Fig. 10 template trick), a
pure-Python reference interpreter (the "native interpreter" analog), the
harness that reproduces Fig. 8, and the multi-endpoint fleet-serving
harness (:mod:`repro.min.fleet`).
"""

from repro.min.isa import Opcode, assemble, MinProgram
from repro.min.interp import (
    interp_source,
    build_min_module,
    min_request,
    specialize_min,
    PROGRAM_BASE,
)
from repro.min.harness import (
    PyMinInterpreter,
    sum_to_n_program,
    run_fig8_configs,
)
from repro.min.fleet import (
    Endpoint,
    add_endpoint,
    build_fleet_module,
    endpoint_at,
    make_endpoints,
    make_fleet_worker,
    remove_endpoint,
)

__all__ = [
    "Opcode",
    "assemble",
    "MinProgram",
    "interp_source",
    "build_min_module",
    "min_request",
    "specialize_min",
    "PROGRAM_BASE",
    "PyMinInterpreter",
    "sum_to_n_program",
    "run_fig8_configs",
    "Endpoint",
    "add_endpoint",
    "build_fleet_module",
    "endpoint_at",
    "make_endpoints",
    "make_fleet_worker",
    "remove_endpoint",
]
