"""A multi-endpoint Min service: the fleet-serving harness.

The single-program flows (:mod:`repro.min.harness`) load one guest
program at :data:`~repro.min.interp.PROGRAM_BASE`.  A serving fleet
instead hosts many *endpoints* — one guest Min program each, loaded at
its own heap base — behind the one runnable generic ``min_interp``.
The :class:`~repro.pipeline.tiering.TieringController` keys profiles on
the program pointer (the first call argument), so each endpoint is
profiled, promoted, and cached independently: hot endpoints specialize,
cold ones never cost a microsecond of compile time, and the per-endpoint
``SpecializedMemory`` fingerprints keep their artifacts distinct in a
shared :class:`~repro.pipeline.artifacts.ArtifactStore`.

Used by ``examples/fleet_server.py`` (a forked multi-worker router over
one artifact store and heat file) and ``benchmarks/bench_fleet.py``
(the traffic-replay benchmark with warm-up regression guards).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import List, Optional, Sequence, Tuple

from repro.core.request import (
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
)
from repro.core.specialize import SpecializeOptions
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.min.interp import interp_source
from repro.min.isa import MinProgram, assemble
from repro.pipeline.tiering import TierEntry, TieringController
from repro.vm import VM

# Endpoint programs live at ENDPOINT_HEAP_BASE + i * ENDPOINT_STRIDE;
# dispatch slots (patched with the residual's table index on promotion)
# at ENDPOINT_SLOT_BASE + i * 8.  Both regions sit below the
# interpreter's shadow stack, which starts far above any endpoint.
ENDPOINT_HEAP_BASE = 0x10000
ENDPOINT_STRIDE = 0x1000
ENDPOINT_SLOT_BASE = 0x100


@dataclasses.dataclass(frozen=True)
class Endpoint:
    """One fleet endpoint: a named guest program at a fixed heap base."""

    name: str
    program: MinProgram
    base: int
    slot: int

    @property
    def token(self) -> str:
        """Stable content identity of this endpoint: a hash of the name
        and the program words.  Heap bases get *reused* across endpoint
        churn (drop an endpoint, register another at the same base), so
        anything persisted across that churn — fleet heat, above all —
        must key on the program's content, never on its address."""
        payload = repr((self.name, tuple(self.program.words)))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def args(self, value: int = 0) -> List[int]:
        """Generic-call arguments for one request to this endpoint."""
        return [self.base, len(self.program.words), value]

    def request(self) -> SpecializationRequest:
        return SpecializationRequest(
            "min_interp_spec",
            [SpecializedMemory(self.base, self.program.size_bytes()),
             SpecializedConst(len(self.program.words)), Runtime()],
            specialized_name=f"min_{self.name}")

    def tier_entry(self) -> TierEntry:
        return TierEntry(generic="min_interp", key=self.base,
                         request=self.request(), result_addr=self.slot,
                         heat_key=f"min_interp@{self.token}")


def endpoint_at(index: int, name: str, program: MinProgram) -> Endpoint:
    """One endpoint at layout slot ``index`` — also the churn path: a
    new tenant at a base whose previous occupant was removed."""
    if program.size_bytes() > ENDPOINT_STRIDE:
        raise ValueError(f"endpoint {name!r} exceeds the "
                         f"{ENDPOINT_STRIDE}-byte program stride")
    return Endpoint(name=name, program=program,
                    base=ENDPOINT_HEAP_BASE + index * ENDPOINT_STRIDE,
                    slot=ENDPOINT_SLOT_BASE + index * 8)


def make_endpoints(programs: Sequence[Tuple[str, MinProgram]]
                   ) -> List[Endpoint]:
    """Lay out named programs as endpoints (order fixes the bases, and
    therefore the cache keys — every worker must use the same order)."""
    return [endpoint_at(i, name, program)
            for i, (name, program) in enumerate(programs)]


def build_fleet_module(endpoints: Sequence[Endpoint],
                       memory_size: int = 1 << 20) -> Module:
    """Both interpreter variants plus every endpoint's bytecode in the
    heap image."""
    module = Module(memory_size=memory_size)
    compile_source(interp_source(False)).add_to_module(module)
    compile_source(interp_source(True)).add_to_module(module)
    for endpoint in endpoints:
        for i, word in enumerate(endpoint.program.words):
            module.write_init_u64(endpoint.base + i * 8, word)
    return module


def make_fleet_worker(endpoints: Sequence[Endpoint],
                      threshold: float = 4,
                      options: Optional[SpecializeOptions] = None
                      ) -> Tuple[VM, TieringController]:
    """One serving worker: a fresh VM plus a tiering controller with
    every endpoint registered (all tier 0 until the profile, or adopted
    fleet heat, says otherwise)."""
    module = build_fleet_module(endpoints)
    controller = TieringController(module, options, threshold=threshold)
    for endpoint in endpoints:
        controller.register(endpoint.tier_entry())
    vm = controller.attach(VM(module))
    return vm, controller


def serve(vm: VM, endpoint: Endpoint, value: int = 0) -> int:
    """One request: dispatch through the generic entry; the tier hook
    redirects to the endpoint's residual once promoted."""
    return vm.call("min_interp", endpoint.args(value))


# ---------------------------------------------------------------------------
# Endpoint churn on a live worker.
# ---------------------------------------------------------------------------

def add_endpoint(vm: VM, controller: TieringController,
                 endpoint: Endpoint) -> None:
    """Register an endpoint with a live worker.

    Scrubs the full program stride (a previous tenant's trailing words
    must not survive under the new program), loads the program into the
    live heap — the snapshot compiler specializes against live memory,
    so the memory fingerprint, and with it every cache key, tracks the
    *current* tenant — and declares the endpoint to the controller."""
    for offset in range(0, ENDPOINT_STRIDE, 8):
        vm.store_u64(endpoint.base + offset, 0)
    for i, word in enumerate(endpoint.program.words):
        vm.store_u64(endpoint.base + i * 8, word)
    controller.register(endpoint.tier_entry())


def remove_endpoint(vm: VM, controller: TieringController,
                    endpoint: Endpoint) -> None:
    """Drop an endpoint from a live worker.

    Retires its tier state (the controller zeroes the dispatch slot and
    forgets the profile, so no call with this base can ever be routed
    to the retired residual again) and scrubs its program words."""
    controller.unregister(endpoint.tier_entry())
    for offset in range(0, ENDPOINT_STRIDE, 8):
        vm.store_u64(endpoint.base + offset, 0)


# ---------------------------------------------------------------------------
# Demo workload: the endpoint programs the example and bench serve.
# ---------------------------------------------------------------------------

def sum_squares_program(n: int) -> MinProgram:
    """sum(i*i for i in n..1) — a second distinct hot loop."""
    return assemble([
        ("LOAD_IMMEDIATE", n),
        ("STORE_REG", 0),
        ("LOAD_IMMEDIATE", 0),
        ("STORE_REG", 1),
        ("label", "loop"),
        ("MUL", 0, 0),          # acc = counter * counter
        ("STORE_REG", 2),
        ("ADD", 1, 2),          # acc = sum + counter^2
        ("STORE_REG", 1),
        ("LOAD_REG", 0),
        ("ADD_IMMEDIATE", -1),  # counter -= 1
        ("STORE_REG", 0),
        ("JMPNZ", "loop"),
        ("LOAD_REG", 1),
        ("HALT",),
    ])


def constant_program(value: int) -> MinProgram:
    """A trivial straight-line program — a cold admin endpoint."""
    return assemble([
        ("LOAD_IMMEDIATE", value),
        ("STORE_REG", 0),
        ("LOAD_IMMEDIATE", 1),
        ("STORE_REG", 1),
        ("ADD", 0, 1),
        ("HALT",),
    ])
