"""Fig. 8 harness: Min across execution strategies.

Configurations (paper Fig. 8), with our platform substitutions:

* ``compiled`` — the guest computation written directly in mini-C and run
  on the VM (the "native compiled C" analog on the same platform the
  specialized code runs on);
* ``py_interp`` — a pure-Python Min interpreter (the "native
  interpreter": an interpreter running directly on the host platform);
* ``vm_interp`` — the mini-C Min interpreter on the VM (the "interpreter
  on Wasm" analog);
* ``wevaled`` — the plain interpreter variant specialized on the program
  (context annotations only; registers stay in memory);
* ``wevaled_state`` — the intrinsics variant specialized (``+ locals
  opt``: registers virtualized into SSA).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

from repro.core.specialize import SpecializeOptions
from repro.frontend import compile_source
from repro.ir.instructions import MASK64, wrap_i64
from repro.min.interp import (
    PROGRAM_BASE,
    SPEC_SLOT_STATE,
    build_min_module,
    min_request,
    min_tier_entry,
)
from repro.min.isa import ARITY, MinProgram, NUM_REGISTERS, Opcode, assemble
from repro.vm import VM


class PyMinInterpreter:
    """Reference Min interpreter in pure Python (the "native" tier)."""

    def __init__(self, program: MinProgram):
        self.words = program.words

    def run(self, input_value: int = 0) -> int:
        words = self.words
        acc = wrap_i64(input_value)
        regs = [0] * NUM_REGISTERS
        pc = 0
        steps = 0
        while True:
            op = words[pc]
            pc += 1
            steps += 1
            if op == Opcode.LOAD_IMMEDIATE:
                acc = words[pc]
                pc += 1
            elif op == Opcode.STORE_REG:
                regs[words[pc]] = acc
                pc += 1
            elif op == Opcode.LOAD_REG:
                acc = regs[words[pc]]
                pc += 1
            elif op == Opcode.ADD:
                acc = (regs[words[pc]] + regs[words[pc + 1]]) & MASK64
                pc += 2
            elif op == Opcode.SUB:
                acc = (regs[words[pc]] - regs[words[pc + 1]]) & MASK64
                pc += 2
            elif op == Opcode.MUL:
                acc = (regs[words[pc]] * regs[words[pc + 1]]) & MASK64
                pc += 2
            elif op == Opcode.ADD_IMMEDIATE:
                acc = (acc + words[pc]) & MASK64
                pc += 1
            elif op == Opcode.JMPNZ:
                target = words[pc]
                pc += 1
                if acc != 0:
                    pc = target
            elif op == Opcode.JMP:
                pc = words[pc]
            elif op == Opcode.HALT:
                return acc
            else:
                raise ValueError(f"bad opcode {op} at pc {pc - 1}")


def sum_to_n_program(n: int) -> MinProgram:
    """The paper's benchmark: sum the integers from 0 to n.

    reg0 = counter (n..1), reg1 = running sum.
    """
    return assemble([
        ("LOAD_IMMEDIATE", n),
        ("STORE_REG", 0),
        ("LOAD_IMMEDIATE", 0),
        ("STORE_REG", 1),
        ("label", "loop"),
        ("ADD", 1, 0),          # acc = sum + counter
        ("STORE_REG", 1),
        ("LOAD_REG", 0),
        ("ADD_IMMEDIATE", -1),  # counter -= 1
        ("STORE_REG", 0),
        ("JMPNZ", "loop"),
        ("LOAD_REG", 1),
        ("HALT",),
    ])


# Direct mini-C version of the same computation: the "compiled" baseline.
SUM_COMPILED_SRC = """
u64 sum_compiled(u64 n) {
  u64 sum = 0;
  u64 counter = n;
  while (counter != 0) {
    sum = sum + counter;
    counter = counter - 1;
  }
  return sum;
}
"""


@dataclasses.dataclass
class ConfigResult:
    name: str
    result: int
    wall_seconds: float
    fuel: Optional[int]         # None for host (Python) configs
    runtime_loads: Optional[int] = None
    runtime_stores: Optional[int] = None


def _time(fn: Callable[[], int], repeats: int = 1):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def run_fig8_configs(n: int = 1000, repeats: int = 1,
                     backend: str = "vm",
                     jobs: Optional[int] = None,
                     cache_dir: Optional[str] = None
                     ) -> Dict[str, ConfigResult]:
    """Run all five Fig. 8 configurations on sum-to-n; returns per-config
    results keyed by configuration name.

    ``backend="py"`` additionally runs the two residual functions through
    the tier-2 Python backend (configs ``wevaled_py`` and
    ``wevaled_state_py``), whose fuel must be identical to the IR-VM
    runs — only the wall clock moves.  Both residuals are compiled as
    one :class:`~repro.pipeline.engine.CompilationEngine` batch;
    ``jobs``/``cache_dir`` configure the worker pool and the persistent
    artifact cache.
    """
    from repro.pipeline.tiering import TieringController

    program = sum_to_n_program(n)
    module = build_min_module(program)
    compile_source(SUM_COMPILED_SRC).add_to_module(module)
    options = SpecializeOptions(backend=backend, jobs=jobs or 1,
                                cache_dir=cache_dir)
    # AOT is "promote everything at startup" through the tiering
    # controller: both variants compile as one engine batch.  The second
    # entry's profile key is disambiguated by its slot (the harness never
    # attaches a profiling hook, so keys are only identity here).
    controller = TieringController(module, options)
    controller.register(min_tier_entry(program, use_intrinsics=False,
                                       name="min_wevaled"))
    controller.register(dataclasses.replace(
        min_tier_entry(program, use_intrinsics=True,
                       name="min_wevaled_state"),
        key=SPEC_SLOT_STATE))
    wevaled_name, wevaled_state_name = controller.promote_all()
    compiled_fns = dict(controller.compiler.backend_functions)

    results: Dict[str, ConfigResult] = {}

    def vm_config(name: str, func: str, args: List[int],
                  use_backend: bool = False):
        holder = {}

        def go():
            vm = VM(module)
            if use_backend:
                vm.install_compiled(compiled_fns)
            holder["vm"] = vm
            return vm.call(func, args)

        result, wall = _time(go, repeats)
        vm = holder["vm"]
        results[name] = ConfigResult(name, result, wall, vm.stats.fuel,
                                     vm.stats.loads, vm.stats.stores)

    # Host-platform configs.
    py = PyMinInterpreter(program)
    result, wall = _time(lambda: py.run(0), repeats)
    results["py_interp"] = ConfigResult("py_interp", result, wall, None)

    # VM-platform configs.
    vm_config("compiled", "sum_compiled", [n])
    vm_config("vm_interp", "min_interp",
              [PROGRAM_BASE, len(program.words), 0])
    vm_config("wevaled", wevaled_name,
              [PROGRAM_BASE, len(program.words), 0])
    vm_config("wevaled_state", wevaled_state_name,
              [PROGRAM_BASE, len(program.words), 0])
    if backend == "py":
        vm_config("wevaled_py", wevaled_name,
                  [PROGRAM_BASE, len(program.words), 0], use_backend=True)
        vm_config("wevaled_state_py", wevaled_state_name,
                  [PROGRAM_BASE, len(program.words), 0], use_backend=True)

    expected = n * (n + 1) // 2
    for config in results.values():
        if config.result != expected:
            raise AssertionError(
                f"{config.name} computed {config.result}, expected "
                f"{expected}")
    return results


def make_tiered_min(program: MinProgram,
                    threshold: float = 1,
                    speculate: bool = False,
                    use_intrinsics: bool = True,
                    options: Optional[SpecializeOptions] = None,
                    jobs: Optional[int] = None,
                    cache_dir: Optional[str] = None,
                    compile_threshold: int = 0):
    """The ``mode="tiered"`` entry point for Min.

    Returns ``(vm, controller)``: a VM whose calls to ``min_interp`` are
    profiled and promoted by the
    :class:`~repro.pipeline.tiering.TieringController` once they cross
    ``threshold`` (``float("inf")`` never promotes — pure tier 0;
    ``1`` promotes at the first call, reproducing the AOT execution).
    ``speculate=True`` additionally arms guarded value speculation on
    the ``input`` parameter.
    """
    from repro.pipeline.tiering import TieringController

    module = build_min_module(program)
    controller = TieringController(
        module, options, jobs=jobs, cache_dir=cache_dir,
        threshold=threshold, speculate=speculate,
        compile_threshold=compile_threshold)
    controller.register(min_tier_entry(program, use_intrinsics,
                                       speculate_input=speculate))
    vm = controller.attach(VM(module))
    return vm, controller


def run_tiered(program: MinProgram, inputs, threshold: float = 1,
               speculate: bool = False, use_intrinsics: bool = True,
               options: Optional[SpecializeOptions] = None):
    """Run ``program`` on each input through the tiered Min runtime.

    Returns ``(results, vm, controller)`` where ``results[i]`` is the
    accumulator returned for ``inputs[i]``.  All calls share one VM, so
    promotion (and any speculation guard installed from the first
    calls' profile) carries across inputs — a later input that breaks
    the speculation exercises the deopt path.
    """
    vm, controller = make_tiered_min(program, threshold=threshold,
                                     speculate=speculate,
                                     use_intrinsics=use_intrinsics,
                                     options=options)
    results = [vm.call("min_interp",
                       [PROGRAM_BASE, len(program.words), value])
               for value in inputs]
    return results, vm, controller
