"""The Min interpreter in mini-C, in two variants (paper Fig. 9/10).

The paper generates two compilations of the interpreter body from one
source using a C++ template parameter: one storing registers in a
conventional array (run generically), one routing register accesses
through weval's register intrinsics (only ever run in specialized form).
We do the same with a Python-side template over the mini-C source.

``JMPNZ`` uses the two-backedge pattern: each arm updates the context and
continues separately, so the next pc stays constant on both paths
(S3.3's structural alternative to ``specialized_value``; our test suite
exercises both styles).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import (
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    specialize,
)
from repro.core.specialize import SpecializeOptions
from repro.ir import Module
from repro.ir.function import Function
from repro.min.isa import MinProgram, NUM_REGISTERS

PROGRAM_BASE = 0x1000

# Heap slots the tiering controller patches with the module-table index
# of the installed residual, one per interpreter variant.  Min has no
# guest-level dispatch through them (the VM's tier hook redirects calls
# at the host boundary instead), but giving each variant a slot keeps
# the install path identical to the dispatch-slot runtimes.
SPEC_SLOT_PLAIN = 0x10
SPEC_SLOT_STATE = 0x18


def interp_source(use_intrinsics: bool) -> str:
    """mini-C source for the Min interpreter.

    ``use_intrinsics=False``: registers live in a shadow-stack array
    (Fig. 9's plain interpreter).  ``use_intrinsics=True``: register
    accesses become ``weval_read_reg``/``weval_write_reg`` (Fig. 10).
    """
    if use_intrinsics:
        name = "min_interp_spec"
        decl = ""
        reg_read = "weval_read_reg(%s)"
        reg_write = "weval_write_reg(%s, %s);"
    else:
        name = "min_interp"
        decl = (f"u64 registers[{NUM_REGISTERS}];\n"
                f"  for (u64 ri = 0; ri < {NUM_REGISTERS}; ri++) "
                "{ registers[ri] = 0; }")
        reg_read = "registers[%s]"
        reg_write = "registers[%s] = %s;"

    def rd(expr: str) -> str:
        return reg_read % expr

    def wr(idx: str, value: str) -> str:
        return reg_write % (idx, value)

    return f"""
u64 {name}(u64 program, u64 proglen, u64 input) {{
  u64 accumulator = input;
  u64 pc = 0;
  {decl}
  weval_push_context(pc);
  while (1) {{
    u64 op = load64(program + pc * 8);
    pc = pc + 1;
    switch (op) {{
    case 0: {{ // LOAD_IMMEDIATE
      accumulator = load64(program + pc * 8);
      pc = pc + 1;
      break;
    }}
    case 1: {{ // STORE_REG
      u64 idx = load64(program + pc * 8);
      pc = pc + 1;
      {wr("idx", "accumulator")}
      break;
    }}
    case 2: {{ // LOAD_REG
      u64 idx = load64(program + pc * 8);
      pc = pc + 1;
      accumulator = {rd("idx")};
      break;
    }}
    case 3: {{ // ADD
      u64 idx1 = load64(program + pc * 8);
      u64 idx2 = load64(program + pc * 8 + 8);
      pc = pc + 2;
      accumulator = {rd("idx1")} + {rd("idx2")};
      break;
    }}
    case 4: {{ // SUB
      u64 idx1 = load64(program + pc * 8);
      u64 idx2 = load64(program + pc * 8 + 8);
      pc = pc + 2;
      accumulator = {rd("idx1")} - {rd("idx2")};
      break;
    }}
    case 5: {{ // MUL
      u64 idx1 = load64(program + pc * 8);
      u64 idx2 = load64(program + pc * 8 + 8);
      pc = pc + 2;
      accumulator = {rd("idx1")} * {rd("idx2")};
      break;
    }}
    case 6: {{ // ADD_IMMEDIATE
      accumulator = accumulator + load64(program + pc * 8);
      pc = pc + 1;
      break;
    }}
    case 7: {{ // JMPNZ: two-backedge form keeps the next pc constant
      u64 target = load64(program + pc * 8);
      pc = pc + 1;
      if (accumulator != 0) {{
        pc = target;
        weval_update_context(pc);
        continue;
      }}
      weval_update_context(pc);
      continue;
    }}
    case 8: {{ // JMP
      pc = load64(program + pc * 8);
      break;
    }}
    case 9: {{ // HALT
      return accumulator;
    }}
    default: {{
      abort();
    }}
    }}
    weval_update_context(pc);
  }}
  return 0;
}}
"""


def build_min_module(program: MinProgram,
                     memory_size: int = 1 << 20) -> Module:
    """A module containing both interpreter variants and the program's
    bytecode at :data:`PROGRAM_BASE` in the heap image."""
    from repro.frontend import compile_source

    module = Module(memory_size=memory_size)
    compile_source(interp_source(False)).add_to_module(module)
    compile_source(interp_source(True)).add_to_module(module)
    for i, word in enumerate(program.words):
        module.write_init_u64(PROGRAM_BASE + i * 8, word)
    return module


def min_request(program: MinProgram, use_intrinsics: bool,
                name: Optional[str] = None) -> SpecializationRequest:
    """The specialization request for one Min interpreter variant — the
    unit the :class:`~repro.pipeline.engine.CompilationEngine` batches."""
    generic = "min_interp_spec" if use_intrinsics else "min_interp"
    return SpecializationRequest(
        generic,
        [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
         SpecializedConst(len(program.words)), Runtime()],
        specialized_name=name or f"{generic}.compiled")


def min_tier_entry(program: MinProgram, use_intrinsics: bool,
                   name: Optional[str] = None,
                   speculate_input: bool = False):
    """A :class:`~repro.pipeline.tiering.TierEntry` for one interpreter
    variant: tier 0 runs the plain ``min_interp`` (the only runnable
    generic), promotion specializes the requested variant.
    ``speculate_input=True`` marks the ``input`` parameter eligible for
    guarded value speculation."""
    from repro.pipeline.tiering import TierEntry
    slot = SPEC_SLOT_STATE if use_intrinsics else SPEC_SLOT_PLAIN
    return TierEntry(
        generic="min_interp",
        key=PROGRAM_BASE,
        request=min_request(program, use_intrinsics, name),
        result_addr=slot,
        speculate_args=(2,) if speculate_input else ())


def specialize_min(module: Module, program: MinProgram,
                   use_intrinsics: bool,
                   options: Optional[SpecializeOptions] = None,
                   name: Optional[str] = None) -> Function:
    """Run the first Futamura projection on a Min interpreter variant."""
    request = min_request(program, use_intrinsics, name)
    func = specialize(module, request, options)
    module.add_function(func)
    return func
