"""The Min instruction set and assembler.

Min (paper S5) has 10 instructions over a pc, an accumulator ``acc``, and
256 registers.  Instructions are variable-length sequences of 64-bit
words: an opcode word followed by operand words.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Sequence, Tuple, Union

from repro.ir.instructions import wrap_i64


class Opcode(enum.IntEnum):
    LOAD_IMMEDIATE = 0   # acc = imm
    STORE_REG = 1        # regs[idx] = acc
    LOAD_REG = 2         # acc = regs[idx]
    ADD = 3              # acc = regs[idx1] + regs[idx2]
    SUB = 4              # acc = regs[idx1] - regs[idx2]
    MUL = 5              # acc = regs[idx1] * regs[idx2]
    ADD_IMMEDIATE = 6    # acc = acc + imm
    JMPNZ = 7            # if acc != 0: pc = target
    JMP = 8              # pc = target
    HALT = 9             # return acc


# Operand word count per opcode.
ARITY: Dict[Opcode, int] = {
    Opcode.LOAD_IMMEDIATE: 1,
    Opcode.STORE_REG: 1,
    Opcode.LOAD_REG: 1,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.ADD_IMMEDIATE: 1,
    Opcode.JMPNZ: 1,
    Opcode.JMP: 1,
    Opcode.HALT: 0,
}

NUM_REGISTERS = 256

# An assembly line: mnemonic plus int or label-string operands.
AsmLine = Tuple[str, ...]


@dataclasses.dataclass
class MinProgram:
    """An assembled Min program: a flat list of 64-bit words."""

    words: List[int]
    labels: Dict[str, int]

    def __len__(self) -> int:
        return len(self.words)

    def size_bytes(self) -> int:
        return len(self.words) * 8


def assemble(lines: Sequence[AsmLine]) -> MinProgram:
    """Two-pass assembler.

    Each line is ``(mnemonic, *operands)``; operands are ints or label
    names.  A line ``("label", name)`` defines a label at the current pc.

        assemble([
            ("label", "loop"),
            ("ADD_IMMEDIATE", -1),
            ("JMPNZ", "loop"),
            ("HALT",),
        ])
    """
    labels: Dict[str, int] = {}
    pc = 0
    for line in lines:
        if line[0] == "label":
            name = line[1]
            if name in labels:
                raise ValueError(f"duplicate label {name!r}")
            labels[name] = pc
            continue
        op = Opcode[line[0]]
        expected = ARITY[op]
        if len(line) - 1 != expected:
            raise ValueError(
                f"{op.name} expects {expected} operands, got {len(line) - 1}")
        pc += 1 + expected

    words: List[int] = []
    for line in lines:
        if line[0] == "label":
            continue
        op = Opcode[line[0]]
        words.append(int(op))
        for operand in line[1:]:
            if isinstance(operand, str):
                if operand not in labels:
                    raise ValueError(f"undefined label {operand!r}")
                words.append(labels[operand])
            else:
                words.append(wrap_i64(int(operand)))
    return MinProgram(words, labels)


def validate(program: MinProgram) -> None:
    """Check structural well-formedness: opcodes in range, register
    indices valid, branch targets inside the program."""
    pc = 0
    size = len(program.words)
    boundaries = set()
    while pc < size:
        boundaries.add(pc)
        word = program.words[pc]
        try:
            op = Opcode(word)
        except ValueError:
            raise ValueError(f"bad opcode {word} at pc {pc}") from None
        operands = program.words[pc + 1:pc + 1 + ARITY[op]]
        if len(operands) != ARITY[op]:
            raise ValueError(f"truncated {op.name} at pc {pc}")
        if op in (Opcode.STORE_REG, Opcode.LOAD_REG):
            if not 0 <= operands[0] < NUM_REGISTERS:
                raise ValueError(f"bad register {operands[0]} at pc {pc}")
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
            for idx in operands:
                if not 0 <= idx < NUM_REGISTERS:
                    raise ValueError(f"bad register {idx} at pc {pc}")
        pc += 1 + ARITY[op]
    for pc in boundaries:
        op = Opcode(program.words[pc])
        if op in (Opcode.JMPNZ, Opcode.JMP):
            target = program.words[pc + 1]
            if target not in boundaries:
                raise ValueError(
                    f"branch target {target} at pc {pc} is not an "
                    f"instruction boundary")
