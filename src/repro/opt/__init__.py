"""Post-specialization optimization passes (the mid-end).

The weval transform already const-folds while transcribing; these passes
clean up the residual code behind a verifying
:class:`~repro.opt.pass_manager.PassManager`.  The roster:

* ``fold`` — local constant and branch folding
  (:func:`~repro.opt.fold.fold_constants`);
* ``copyprop`` — copy propagation through algebraic identities and
  degenerate ``select``\\ s (:func:`~repro.opt.copyprop.propagate_copies`);
* ``gvn`` — dominator-scoped value numbering / CSE, including constant
  rematerialization cleanup
  (:func:`~repro.opt.gvn.global_value_numbering`);
* ``prune-params`` — redundant block-parameter pruning, the paper S3.4
  "minimal cut" cleanup
  (:func:`~repro.opt.prune_params.prune_block_params`);
* ``simplify-cfg`` — unreachable-block removal, trivial-forwarder and
  constant-conditional jump threading, uniform-branch folding, and
  straight-line merging (:func:`~repro.opt.simplify_cfg.simplify_cfg`);
* ``load-forward`` — cross-block redundant-load and store-to-load
  forwarding for same-address accesses with no intervening may-aliasing
  store (:func:`~repro.opt.load_forward.forward_loads`);
* ``dce`` — dead pure-instruction elimination
  (:func:`~repro.opt.dce.eliminate_dead_code`).

Pipelines are named (``"default"``, ``"legacy"``, ``"none"``) and
scheduled to a fixpoint by the pass manager, which collects per-pass
change/timing stats into :class:`~repro.core.stats.PipelineStats` and
can run the IR verifier after every pass (``REPRO_OPT_VERIFY=1``).
"""

from repro.opt.fold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.gvn import global_value_numbering
from repro.opt.load_forward import forward_loads
from repro.opt.dce import eliminate_dead_code
from repro.opt.simplify_cfg import (
    fold_uniform_branches,
    remove_unreachable_blocks,
    simplify_cfg,
    simplify_cfg_legacy,
    thread_constant_branches,
    thread_trivial_jumps,
)
from repro.opt.prune_params import prune_block_params
from repro.opt.pass_manager import (
    DEFAULT_PIPELINE,
    PIPELINES,
    PassManager,
    available_passes,
    get_pass,
    register_pass,
)
from repro.opt.pipeline import optimize_function, optimize_module

__all__ = [
    "fold_constants",
    "propagate_copies",
    "global_value_numbering",
    "forward_loads",
    "eliminate_dead_code",
    "simplify_cfg",
    "simplify_cfg_legacy",
    "remove_unreachable_blocks",
    "thread_trivial_jumps",
    "thread_constant_branches",
    "fold_uniform_branches",
    "prune_block_params",
    "PassManager",
    "PIPELINES",
    "DEFAULT_PIPELINE",
    "register_pass",
    "get_pass",
    "available_passes",
    "optimize_function",
    "optimize_module",
]
