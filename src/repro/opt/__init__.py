"""Post-specialization optimization passes.

The weval transform already const-folds while transcribing; these passes
clean up what is left: unreachable blocks, redundant block parameters
(the specializer's per-slot parameters where all predecessors agree after
convergence), straight-line block chains, and dead pure instructions.
"""

from repro.opt.fold import fold_constants
from repro.opt.dce import eliminate_dead_code
from repro.opt.simplify_cfg import simplify_cfg, remove_unreachable_blocks
from repro.opt.prune_params import prune_block_params
from repro.opt.pipeline import optimize_function, optimize_module

__all__ = [
    "fold_constants",
    "eliminate_dead_code",
    "simplify_cfg",
    "remove_unreachable_blocks",
    "prune_block_params",
    "optimize_function",
    "optimize_module",
]
