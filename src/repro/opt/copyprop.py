"""Copy propagation.

The IR has no explicit ``mov``, but copies still arise: the specializer
and frontends emit algebraic identities (``iadd x, 0``, ``imul x, 1``,
``iand x, ~0``), and ``select`` collapses to one operand when both arms
agree or the condition is a known constant.  This pass resolves every
such alias by rewriting uses of the result to the source value and
dropping the defining instruction, which in turn exposes more work for
GVN, block-parameter pruning, and DCE.

Soundness: the replacement value is always an operand of the replaced
definition, so its definition dominates the replaced definition and
therefore (by SSA validity) every use being rewritten.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import MASK64
from repro.opt.util import resolve, substitute_values


def _copy_source(op: str, args: tuple,
                 consts: Dict[int, int]) -> Optional[int]:
    """The value id ``op(args)`` is an alias of, or None."""

    def const(vid: int) -> Optional[int]:
        return consts.get(vid)

    if op == "iadd":
        if const(args[1]) == 0:
            return args[0]
        if const(args[0]) == 0:
            return args[1]
    elif op == "isub":
        if const(args[1]) == 0:
            return args[0]
    elif op == "imul":
        if const(args[1]) == 1:
            return args[0]
        if const(args[0]) == 1:
            return args[1]
    elif op in ("idiv_u", "idiv_s"):
        if const(args[1]) == 1:
            return args[0]
    elif op in ("ior", "ixor", "ishl", "ishr_s", "ishr_u"):
        if const(args[1]) == 0:
            return args[0]
        if op in ("ior", "ixor") and const(args[0]) == 0:
            return args[1]
    elif op == "iand":
        if const(args[1]) == MASK64:
            return args[0]
        if const(args[0]) == MASK64:
            return args[1]
    elif op == "select":
        if args[1] == args[2]:
            return args[1]
        cond = const(args[0])
        if cond is not None:
            return args[1] if cond != 0 else args[2]
    return None


def copyprop_has_work(func: Function) -> bool:
    """Cheap sound work detector: does any instruction match a copy
    pattern?  The first alias the pass would resolve is found by the
    same :func:`_copy_source` test on unsubstituted operands (the pass's
    own substitution map is necessarily empty until its first hit), so
    ``False`` proves a full run would report zero changes."""
    consts: Dict[int, int] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.op == "iconst":
                consts[instr.result] = instr.imm
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.result is not None and instr.info().pure and \
                    _copy_source(instr.op, instr.args, consts) is not None:
                return True
    return False


def propagate_copies(func: Function) -> int:
    """Resolve copy-like instructions; returns the number removed."""
    consts: Dict[int, int] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.op == "iconst":
                consts[instr.result] = instr.imm

    subst: Dict[int, int] = {}
    removed = 0
    for block in func.blocks.values():
        kept = []
        for instr in block.instrs:
            source = None
            if instr.result is not None and instr.info().pure:
                args = tuple(resolve(subst, a) for a in instr.args)
                source = _copy_source(instr.op, args, consts)
            if source is None:
                kept.append(instr)
            else:
                subst[instr.result] = source
                removed += 1
        block.instrs = kept
    substitute_values(func, subst)
    return removed
