"""Dead code elimination for pure instructions.

Iterates to a fixpoint: an instruction is dead when it is pure and its
result is referenced by no instruction or terminator.  Block parameters
are handled by :mod:`repro.opt.prune_params` instead (removing one
changes predecessor call shapes).
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function
from repro.ir.instructions import OPCODES, terminator_values


def dce_has_work(func: Function) -> bool:
    """Cheap sound work detector: does a dead pure instruction exist?
    Exactly the pass's own first-iteration condition — and a zero first
    iteration ends the pass's internal fixpoint loop immediately, so
    ``False`` proves a full run would report zero changes."""
    used: Set[int] = set()
    for block in func.blocks.values():
        for instr in block.instrs:
            used.update(instr.args)
        if block.terminator is not None:
            used.update(terminator_values(block.terminator))
    for block in func.blocks.values():
        for instr in block.instrs:
            if (instr.info().pure and instr.result is not None
                    and instr.result not in used):
                return True
    return False


def eliminate_dead_code(func: Function) -> int:
    removed_total = 0
    while True:
        used: Set[int] = set()
        for block in func.blocks.values():
            for instr in block.instrs:
                used.update(instr.args)
            if block.terminator is not None:
                used.update(terminator_values(block.terminator))
        removed = 0
        for block in func.blocks.values():
            kept = []
            for instr in block.instrs:
                info = OPCODES[instr.op]
                if (info.pure and instr.result is not None
                        and instr.result not in used):
                    removed += 1
                else:
                    kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if not removed:
            return removed_total
