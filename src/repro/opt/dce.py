"""Dead code elimination for pure instructions.

Iterates to a fixpoint: an instruction is dead when it is pure and its
result is referenced by no instruction or terminator.  Block parameters
are handled by :mod:`repro.opt.prune_params` instead (removing one
changes predecessor call shapes).
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function
from repro.ir.instructions import OPCODES, terminator_values


def eliminate_dead_code(func: Function) -> int:
    removed_total = 0
    while True:
        used: Set[int] = set()
        for block in func.blocks.values():
            for instr in block.instrs:
                used.update(instr.args)
            if block.terminator is not None:
                used.update(terminator_values(block.terminator))
        removed = 0
        for block in func.blocks.values():
            kept = []
            for instr in block.instrs:
                info = OPCODES[instr.op]
                if (info.pure and instr.result is not None
                        and instr.result not in used):
                    removed += 1
                else:
                    kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if not removed:
            return removed_total
