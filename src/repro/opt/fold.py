"""Local constant folding and branch folding.

A simple forward pass per block: tracks which values are known constants
(from ``iconst``/``fconst`` in any block — SSA makes constness global),
folds pure instructions over constants, and folds conditional branches
and branch tables with constant selectors into plain jumps.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.lattice import fold_pure_op
from repro.ir.function import Function
from repro.ir.instructions import (
    OPCODES,
    BrIf,
    BrTable,
    Instr,
    Jump,
)
from repro.ir.types import F64, I64


def fold_has_work(func: Function) -> bool:
    """Cheap sound work detector: could :func:`fold_constants` change
    anything?  Mirrors the pass's candidate condition (a pure
    non-constant instruction whose operands are all constant
    definitions, or a branch with a constant selector) without
    evaluating the folds, so a ``False`` answer proves the pass would
    report zero changes.  May overfire on folds that turn out
    unfoldable (division by zero) — that is sound, just a wasted run."""
    consts = set()
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.op in ("iconst", "fconst"):
                consts.add(instr.result)
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.result is None or instr.op in ("iconst", "fconst"):
                continue
            if not OPCODES[instr.op].pure:
                continue
            if all(a in consts for a in instr.args):
                return True
        term = block.terminator
        if isinstance(term, BrIf) and term.cond in consts:
            return True
        if isinstance(term, BrTable) and term.index in consts:
            return True
    return False


def fold_constants(func: Function) -> int:
    """Fold constants in place; returns the number of instructions and
    branches folded."""
    consts: Dict[int, object] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.op in ("iconst", "fconst"):
                consts[instr.result] = instr.imm

    folded = 0
    for block in func.blocks.values():
        for i, instr in enumerate(block.instrs):
            info = OPCODES[instr.op]
            if not info.pure or instr.result is None:
                continue
            if instr.op in ("iconst", "fconst"):
                continue
            if not all(a in consts for a in instr.args):
                continue
            value = fold_pure_op(instr.op, instr.imm,
                                 [consts[a] for a in instr.args])
            if value is None:
                continue
            ty = instr.result_type
            op = "iconst" if ty == I64 else "fconst"
            block.instrs[i] = Instr(op, instr.result, (), value, ty)
            consts[instr.result] = value
            folded += 1

        term = block.terminator
        if isinstance(term, BrIf) and term.cond in consts:
            target = term.if_true if consts[term.cond] != 0 else term.if_false
            block.terminator = Jump(target)
            folded += 1
        elif isinstance(term, BrTable) and term.index in consts:
            index = consts[term.index]
            if 0 <= index < len(term.cases):
                block.terminator = Jump(term.cases[index])
            else:
                block.terminator = Jump(term.default)
            folded += 1
    return folded
