"""Dominator-scoped global value numbering (common-subexpression
elimination).

Two pure instructions with the same opcode, immediate, and operands
compute the same value, so a definition that is dominated by an
equivalent earlier definition can be dropped and its uses rewritten to
the survivor.  The pass walks the dominator tree in preorder with a
scoped hash table: expressions found in an ancestor are available in
every block the ancestor dominates, which is exactly the condition under
which the rewrite preserves SSA dominance.

Commutative operand lists are sorted so ``iadd a, b`` unifies with
``iadd b, a``.  Float immediates are keyed by their bit pattern (not
``==``), so ``fconst 0.0`` and ``fconst -0.0`` stay distinct and NaN
constants with equal payloads unify.

Constants get stronger treatment: ``iconst``/``fconst`` have no
operands, so a definition can be *hoisted* to the entry block (which
dominates everything) and then deduplicated function-wide, not just
along dominator paths.  The specializer keeps a per-block constant
cache while transcribing, so residual code re-materializes the same
constant once per specialized block; constant pooling collapses all of
them to one definition each.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.ir.dominance import DominatorTree
from repro.ir.function import Function
from repro.opt.util import resolve, substitute_values

# Ops whose operand order does not matter.
COMMUTATIVE = {
    "iadd", "imul", "iand", "ior", "ixor", "ieq", "ine",
    "fadd", "fmul", "feq", "fne",
}


def _imm_key(imm: object) -> object:
    if isinstance(imm, float):
        return ("f64", struct.pack("<d", imm))
    return imm


def gvn_has_work(func: Function) -> bool:
    """Cheap sound work detector for :func:`global_value_numbering`.

    The pass changes something iff (a) a constant definition sits
    outside the entry block (it would be hoisted or pooled), or (b) two
    pure instructions share a value-number key.  For (b), the pass's
    first CSE hit compares keys under its substitution-so-far — but any
    non-empty substitution implies an earlier pooling/CSE hit, which
    this detector already reports via (a) or a textual duplicate.  So
    ``False`` proves a full run would report zero changes.  Ignoring
    dominator scoping makes sibling duplicates overfire — sound, just a
    wasted run."""
    if func.entry is None or func.entry not in func.blocks:
        return False
    seen: set = set()
    for bid, block in func.blocks.items():
        for instr in block.instrs:
            if instr.result is None or not instr.info().pure:
                continue
            if instr.op in ("iconst", "fconst"):
                if bid != func.entry:
                    return True
                key = (instr.op, _imm_key(instr.imm))
            else:
                args = instr.args
                if instr.op in COMMUTATIVE:
                    args = tuple(sorted(args))
                key = (instr.op, _imm_key(instr.imm), args)
            if key in seen:
                return True
            seen.add(key)
    return False


def global_value_numbering(func: Function) -> int:
    """Eliminate dominated redundant pure computations; returns the
    number of instructions removed."""
    if func.entry is None or func.entry not in func.blocks:
        return 0
    domtree = DominatorTree(func)
    subst: Dict[int, int] = {}
    dead: set = set()
    replaced = 0

    # Constant pooling: operand-less pure defs can live in the entry
    # block (which dominates every use), so equal constants unify
    # function-wide — including across sibling branches where neither
    # definition dominates the other.
    entry_block = func.blocks[func.entry]
    consts: Dict[tuple, int] = {}
    for instr in entry_block.instrs:
        if instr.op in ("iconst", "fconst"):
            consts.setdefault((instr.op, _imm_key(instr.imm)), instr.result)
    hoisted = 0
    for bid, block in func.blocks.items():
        if bid == func.entry or not domtree.is_reachable(bid):
            continue
        kept = []
        for instr in block.instrs:
            if instr.op not in ("iconst", "fconst"):
                kept.append(instr)
                continue
            key = (instr.op, _imm_key(instr.imm))
            existing = consts.get(key)
            if existing is not None:
                subst[instr.result] = existing
                replaced += 1
            else:
                # Hoist: uses sit in this block or blocks it dominates,
                # all strictly after the entry, so moving the def to the
                # end of the entry block preserves def-before-use.
                entry_block.instrs.append(instr)
                consts[key] = instr.result
                hoisted += 1
        block.instrs = kept

    # Scoped table: one dict per dominator-tree node, popped on exit.
    scopes: List[Dict[tuple, int]] = []

    def lookup(key: tuple):
        for scope in reversed(scopes):
            vid = scope.get(key)
            if vid is not None:
                return vid
        return None

    # Iterative preorder walk; children sorted for determinism.
    stack: List[Tuple[int, bool]] = [(func.entry, False)]
    while stack:
        bid, leaving = stack.pop()
        if leaving:
            scopes.pop()
            continue
        scopes.append({})
        stack.append((bid, True))
        for child in sorted(domtree.children.get(bid, ()), reverse=True):
            stack.append((child, False))

        block = func.blocks[bid]
        for instr in block.instrs:
            if instr.result is None or not instr.info().pure:
                continue
            args = tuple(resolve(subst, a) for a in instr.args)
            if instr.op in COMMUTATIVE:
                args = tuple(sorted(args))
            key = (instr.op, _imm_key(instr.imm), args)
            existing = lookup(key)
            if existing is not None:
                subst[instr.result] = existing
                dead.add(id(instr))
                replaced += 1
            else:
                scopes[-1][key] = instr.result

    if replaced:
        for block in func.blocks.values():
            if any(id(i) in dead for i in block.instrs):
                block.instrs = [i for i in block.instrs
                                if id(i) not in dead]
        substitute_values(func, subst)
    # Hoists count as changes: they mutate the IR (converging after one
    # round — a hoisted constant is never hoisted again).
    return replaced + hoisted
