"""Speculative call-site inlining with polymorphic guards (PR 8).

The tiering controller profiles ``call_indirect`` sites in the staged
tier-1 window and builds an *inline plan*: for each hot, nearly
monomorphic site, the small set of table indices observed there.  This
pass splices the named callees' bodies into the caller's residual IR at
the site, dispatching on the runtime callee index:

    block B:   <prefix> ; i1 = iconst t1 ; c1 = ieq idx, i1
               br_if c1, E1(args...), T2()
    block T2:  i2 = iconst t2 ; c2 = ieq idx, i2
               br_if c2, E2(args...), M()
    block M:   guard idx, (site, {t1, t2}[, "resume"]) ; <slow path>
    block E1:  ...cloned body of table[t1], rets rewritten to jump J...
    block J(result): <suffix of B> ; <original terminator>

The miss block ``M`` takes one of two forms, chosen per site from the
*final* CFG so the verifier's path rule is met by construction:

* **unwinding** — when no store/call/global_set can execute on any
  entry→site path, ``M`` holds an unwinding polymorphic guard (it always
  fails there) followed by an unreachable ``trap``.  A miss abandons the
  activation and the controller re-runs the generic function.
* **resuming** — otherwise the deopt state is already materialized (the
  prefix's effects, e.g. the interpreter's argument-copy stores, have
  happened and are exactly what the out-of-line callee needs), so ``M``
  holds a resuming guard (notifies the VM's site-miss hook) followed by
  the original ``call_indirect``.  Execution continues in place.

Both forms leave site *semantics* identical to the un-inlined call; the
payoff is that the mid-end now optimizes across the call boundary (the
argument-copy store→load pairs forward, see ``opt/load_forward.py``).

Site ids are positions in :func:`enumerate_call_sites`'s block-id-order
walk of the canonical residual; the VM's site profiler and the
controller use the same enumeration, so ids agree across processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Block, Function
from repro.ir.instructions import (
    OPCODES,
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)
from repro.ir.module import Module
from repro.ir.types import I64
from repro.ir.verifier import _effect_free_dataflow

# Deterministic hard cap on inlinable callee size, part of the pass
# semantics (covered by ARTIFACT_VERSION, *not* an option — the residual
# must be a pure function of (module, request)).  The controller applies
# its own, much smaller, configurable threshold when building plans.
INLINE_HARD_CAP = 2000


class InlineError(Exception):
    """An inline plan cannot be applied soundly (e.g. a callee
    fingerprint no longer matches the module's body)."""


def enumerate_call_sites(func: Function):
    """Yield ``(site, block_id, index, instr)`` for every
    ``call_indirect`` in block-id order.  On a canonical residual block
    ids are RPO positions, so the numbering is deterministic across
    processes and stable for a given residual."""
    site = 0
    for bid in sorted(func.blocks):
        block = func.blocks[bid]
        for idx, instr in enumerate(block.instrs):
            if instr.op == "call_indirect":
                yield site, bid, idx, instr
                site += 1


def _has_guard(func: Function) -> bool:
    return any(instr.op == "guard"
               for block in func.blocks.values()
               for instr in block.instrs)


def _locate(func: Function, target: Instr) -> Tuple[int, int]:
    for bid, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            if instr is target:
                return bid, idx
    raise InlineError("inline site vanished during plan application")


def _site_is_clean(func: Function, bid: int, idx: int) -> bool:
    """True when no store/call/global_set can execute on any entry→site
    path (same rule the verifier enforces for unwinding guards)."""
    from repro.ir.cfg import reachable_blocks
    reachable = reachable_blocks(func)
    if bid not in reachable:
        return False
    clean_in = _effect_free_dataflow(func, reachable)
    if not clean_in[bid]:
        return False
    for instr in func.blocks[bid].instrs[:idx]:
        info = OPCODES.get(instr.op)
        if info is not None and (info.is_store or info.is_call
                                 or instr.op == "global_set"):
            return False
    return True


def _clone_body_into(func: Function, callee: Function,
                     join_id: int) -> int:
    """Clone ``callee``'s body into ``func``; every ``ret`` becomes a
    jump to ``join_id`` carrying the return values.  Returns the cloned
    entry block's id (its params mirror the callee's signature, so the
    dispatch branch passes the call arguments)."""
    block_map: Dict[int, int] = {}
    value_map: Dict[int, int] = {}
    order = sorted(callee.blocks)
    for bid in order:
        block_map[bid] = func.new_block().id
    for bid in order:
        src = callee.blocks[bid]
        dst = func.blocks[block_map[bid]]
        for value, ty in src.params:
            value_map[value] = func.add_block_param(dst, ty)
    for bid in order:
        src = callee.blocks[bid]
        dst = func.blocks[block_map[bid]]
        for instr in src.instrs:
            result = None
            if instr.result is not None:
                result = func.new_value(instr.result_type)
                value_map[instr.result] = result
            dst.instrs.append(Instr(
                instr.op, result,
                tuple(value_map[a] for a in instr.args),
                instr.imm, instr.result_type))
        dst.terminator = _retarget_terminator(
            src.terminator, block_map, value_map, join_id)
    return block_map[callee.entry]


def _retarget_terminator(term, block_map, value_map, join_id):
    def call(c: BlockCall) -> BlockCall:
        return BlockCall(block_map[c.block],
                         tuple(value_map[a] for a in c.args))

    if isinstance(term, Jump):
        return Jump(call(term.target))
    if isinstance(term, BrIf):
        return BrIf(value_map[term.cond], call(term.if_true),
                    call(term.if_false))
    if isinstance(term, BrTable):
        return BrTable(value_map[term.index],
                       [call(c) for c in term.cases], call(term.default))
    if isinstance(term, Ret):
        return Jump(BlockCall(join_id,
                              tuple(value_map[a] for a in term.args)))
    if isinstance(term, Trap):
        return Trap(term.message)
    raise InlineError(f"callee block lacks a terminator: {term!r}")


def _eligible(func: Function, module: Module, table_index: int,
              site_sig, fingerprint: str, stats) -> Optional[Function]:
    """Resolve and vet one plan target; ``None`` means "skip this
    target" (the site falls back to the out-of-line call for it)."""
    if not (0 < table_index < len(module.table)):
        raise InlineError(f"inline plan names table index {table_index} "
                          f"outside the module table")
    name = module.table[table_index]
    if name is None:
        raise InlineError(f"inline plan names null table slot "
                          f"{table_index}")
    callee = module.functions[name]
    from repro.core.cache import function_fingerprint
    if function_fingerprint(callee) != fingerprint:
        # The plan was built against a different body; replaying it
        # (e.g. out of a poisoned artifact store) would splice the
        # wrong code.  Hard error, never a silent skip.
        raise InlineError(f"inline plan fingerprint mismatch for "
                          f"table[{table_index}] = {name}")
    if callee.entry is None:
        return None
    if callee.name == func.name:
        return None  # direct self-inlining can only grow the body
    if callee.sig != site_sig:
        return None  # signature disagreement: leave the dynamic call
    if _has_guard(callee):
        return None  # nested speculation is not composed (yet)
    if callee.num_instrs() > INLINE_HARD_CAP:
        if stats is not None:
            stats.inline_rejected_size += 1
        return None
    return callee


def apply_inline_plan(func: Function, module: Module, plan,
                      stats=None) -> None:
    """Splice the plan's callees into ``func`` in place.

    ``plan`` is ``((site_id, ((table_index, fingerprint), ...)), ...)``
    with site ids from :func:`enumerate_call_sites` over ``func`` as it
    is *now* (the un-spliced residual).  Raises :class:`InlineError`
    when the plan cannot be applied soundly.
    """
    sites = {site: instr
             for site, _bid, _idx, instr in enumerate_call_sites(func)}
    # Apply in descending site order: a later site in the same block
    # must be spliced first, or the earlier splice would move it into
    # the join block before we locate it.
    for site_id, targets in sorted(plan, reverse=True):
        instr = sites.get(site_id)
        if instr is None:
            raise InlineError(f"inline plan names unknown site "
                              f"{site_id} in {func.name}")
        if stats is not None:
            stats.inline_attempted += 1
        bid, idx = _locate(func, instr)
        callees = []
        for table_index, fingerprint in targets:
            callee = _eligible(func, module, int(table_index),
                               instr.imm, fingerprint, stats)
            if callee is not None:
                callees.append((int(table_index), callee))
        if not callees:
            continue
        _splice_site(func, bid, idx, site_id, callees, stats)


def _splice_site(func: Function, bid: int, idx: int, site_id: int,
                 callees: List[Tuple[int, Function]], stats) -> None:
    block = func.blocks[bid]
    instr = block.instrs[idx]
    index_val = instr.args[0]
    call_args = tuple(instr.args[1:])
    suffix = block.instrs[idx + 1:]
    original_term = block.terminator
    clean = _site_is_clean(func, bid, idx)

    # Join block: the original call's result id becomes its parameter,
    # so every existing use downstream keeps its definition (the join
    # dominates everything the call used to).
    join = func.new_block()
    if instr.result is not None:
        join.params.append((instr.result, instr.result_type))
    join.instrs = suffix
    join.terminator = original_term

    # Miss block: resuming guard + the original out-of-line call, or —
    # when the entry→site prefix is effect-free — an unwinding guard
    # (it always fails here) whose deopt re-runs the generic function.
    values = tuple(sorted({t for t, _ in callees}))
    miss = func.new_block()
    if clean:
        miss.instrs.append(Instr("guard", None, (index_val,),
                                 (site_id, values), None))
        miss.terminator = Trap("unreachable after failed inline guard")
    else:
        miss.instrs.append(Instr("guard", None, (index_val,),
                                 (site_id, values, "resume"), None))
        result = None
        jump_args: Tuple[int, ...] = ()
        if instr.result is not None:
            result = func.new_value(instr.result_type)
            jump_args = (result,)
        miss.instrs.append(Instr("call_indirect", result, instr.args,
                                 instr.imm, instr.result_type))
        miss.terminator = Jump(BlockCall(join.id, jump_args))

    # Dispatch chain: first test lives in the call's own block, each
    # further test in a fresh block, the last falling through to miss.
    entries = [_clone_body_into(func, callee, join.id)
               for _, callee in callees]
    block.instrs = block.instrs[:idx]
    test_blocks = [block]
    for _ in callees[1:]:
        test_blocks.append(func.new_block())
    for i, (table_index, _callee) in enumerate(callees):
        tb = test_blocks[i]
        tval = func.new_value(I64)
        cval = func.new_value(I64)
        tb.instrs.append(Instr("iconst", tval, (), table_index, I64))
        tb.instrs.append(Instr("ieq", cval, (index_val, tval), None, I64))
        if i + 1 < len(test_blocks):
            fallthrough = BlockCall(test_blocks[i + 1].id, ())
        else:
            fallthrough = BlockCall(miss.id, ())
        tb.terminator = BrIf(cval, BlockCall(entries[i], call_args),
                             fallthrough)
    if stats is not None:
        stats.inline_committed += 1
