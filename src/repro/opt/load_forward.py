"""Redundant-load forwarding across basic blocks.

Residual code out of the specializer re-loads lifted interpreter state
(register arrays, frame slots) many times between stores.  This pass
removes a load when the loaded value is already available:

* **load-load**: an earlier load of the same address with the same width
  and signedness, with no intervening may-aliasing store or call;
* **store-load**: an earlier full-width store to the same address
  (``store64``/``storef64`` only — sub-word stores truncate, so their
  stored operand is not the value a later load would produce).

Addresses are tracked symbolically as ``(base value, byte offset)``
descriptors, computed by looking through ``iadd``/``isub``-with-constant
chains and folding in each memory op's static immediate offset.  Two
accesses with the *same* base and disjoint offset ranges (modulo 2^64)
cannot alias; everything else conservatively may, so a store kills all
facts it cannot be proven disjoint from, and calls kill everything
(callees may write any memory).  Global ops touch the module's global
environment, not linear memory, and kill nothing.

Availability is a forward must-dataflow at block granularity: a fact
``(load-op, base, offset) -> value`` enters a block only when *every*
predecessor provides it with the same SSA value.  The meet starts from
the optimistic top element so facts survive loop back edges; at the
fixpoint each fact is justified along all entry paths, which also
guarantees the forwarded definition dominates the rewritten use.

Dropping a forwarded load preserves traps: the surviving access touches
the same address with the same width, so it traps exactly when the
dropped load would have.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import MASK64, Instr
from repro.opt.util import substitute_values

LOAD_SIZE = {
    "load8_u": 1, "load8_s": 1, "load16_u": 2, "load16_s": 2,
    "load32_u": 4, "load32_s": 4, "load64": 8, "loadf64": 8,
}
STORE_SIZE = {
    "store8": 1, "store16": 2, "store32": 4, "store64": 8, "storef64": 8,
}
# Full-width stores whose operand is bit-identical to a matching load.
STORE_TO_LOAD = {"store64": "load64", "storef64": "loadf64"}

# (base value id or None for absolute, byte offset in [0, 2**64)).
Addr = Tuple[Optional[int], int]
# (load op, base, offset) -> available value id.
Facts = Dict[Tuple[str, Optional[int], int], int]


def _build_defs(func: Function) -> Dict[int, Instr]:
    defs: Dict[int, Instr] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.result is not None:
                defs[instr.result] = instr
    return defs


def _addr_of(defs: Dict[int, Instr], vid: int, imm) -> Addr:
    """Resolve ``vid + imm`` to a (base, offset) descriptor."""
    offset = int(imm or 0)
    for _ in range(64):  # chain-depth guard
        instr = defs.get(vid)
        if instr is None:
            break
        if instr.op == "iconst":
            return (None, (offset + instr.imm) & MASK64)
        if instr.op in ("iadd", "isub"):
            left = defs.get(instr.args[0])
            right = defs.get(instr.args[1])
            if right is not None and right.op == "iconst":
                delta = right.imm if instr.op == "iadd" else -right.imm
                offset += delta
                vid = instr.args[0]
                continue
            if (instr.op == "iadd" and left is not None
                    and left.op == "iconst"):
                offset += left.imm
                vid = instr.args[1]
                continue
        break
    return (vid, offset & MASK64)


def _disjoint(a: Addr, a_size: int, b: Addr, b_size: int) -> bool:
    """True when the two accesses provably do not overlap."""
    if a[0] != b[0]:
        return False  # different (or unknown) bases: may alias
    forward = (b[1] - a[1]) & MASK64
    backward = (a[1] - b[1]) & MASK64
    return forward >= a_size and backward >= b_size


def _apply_instr(facts: Facts, defs: Dict[int, Instr],
                 instr: Instr) -> None:
    """Transfer function for one instruction (mutates ``facts``)."""
    op = instr.op
    info = instr.info()
    if info.is_call:
        facts.clear()
        return
    if op in STORE_SIZE:
        addr = _addr_of(defs, instr.args[0], instr.imm)
        size = STORE_SIZE[op]
        for key in list(facts):
            load_op, base, offset = key
            if not _disjoint(addr, size, (base, offset), LOAD_SIZE[load_op]):
                del facts[key]
        forwarded = STORE_TO_LOAD.get(op)
        if forwarded is not None:
            facts[(forwarded, addr[0], addr[1])] = instr.args[1]
        return
    if op in LOAD_SIZE:
        addr = _addr_of(defs, instr.args[0], instr.imm)
        # setdefault, not assignment: when a fact for this address
        # already exists, the earlier (dominating) value must survive,
        # or facts would never stabilize across loop back edges and
        # loop-carried redundant loads would stay.
        facts.setdefault((op, addr[0], addr[1]), instr.result)


def _meet(a: Optional[Facts], b: Facts) -> Facts:
    if a is None:  # top element
        return dict(b)
    return {key: vid for key, vid in a.items() if b.get(key) == vid}


def load_forward_has_work(func: Function) -> bool:
    """Cheap sound work detector for :func:`forward_loads`.

    A load can only be forwarded from an earlier same-key load or a
    full-width store providing the same key, so if no address key is
    shared by two loads — or by a store and a load — anywhere in the
    function, a full run must report zero changes.  Ignoring program
    order and kill analysis makes unreachable pairs overfire — sound,
    just a wasted run."""
    defs = _build_defs(func)
    load_keys: set = set()
    store_keys: set = set()
    for block in func.blocks.values():
        for instr in block.instrs:
            op = instr.op
            if op in LOAD_SIZE:
                addr = _addr_of(defs, instr.args[0], instr.imm)
                key = (op, addr[0], addr[1])
                if key in load_keys or key in store_keys:
                    return True
                load_keys.add(key)
            elif op in STORE_TO_LOAD:
                addr = _addr_of(defs, instr.args[0], instr.imm)
                key = (STORE_TO_LOAD[op], addr[0], addr[1])
                if key in load_keys:
                    return True
                store_keys.add(key)
    return False


def forward_loads(func: Function) -> int:
    """Forward redundant loads; returns the number of loads removed."""
    if func.entry is None or func.entry not in func.blocks:
        return 0
    defs = _build_defs(func)
    order = reverse_postorder(func)
    reachable = set(order)
    preds = predecessors(func)

    # Optimistic fixpoint: None is top (not yet computed).
    avail_out: Dict[int, Optional[Facts]] = {bid: None for bid in order}
    avail_in: Dict[int, Facts] = {}
    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == func.entry:
                in_facts: Facts = {}
            else:
                merged: Optional[Facts] = None
                for pred in preds[bid]:
                    if pred not in reachable:
                        continue
                    pred_out = avail_out[pred]
                    if pred_out is None:
                        continue  # top: contributes no constraint
                    merged = _meet(merged, pred_out)
                in_facts = merged if merged is not None else {}
            avail_in[bid] = in_facts
            out = dict(in_facts)
            for instr in func.blocks[bid].instrs:
                _apply_instr(out, defs, instr)
            if out != avail_out[bid]:
                avail_out[bid] = out
                changed = True

    subst: Dict[int, int] = {}
    removed = 0
    for bid in order:
        facts = dict(avail_in[bid])
        block = func.blocks[bid]
        kept = []
        for instr in block.instrs:
            if instr.op in LOAD_SIZE:
                addr = _addr_of(defs, instr.args[0], instr.imm)
                key = (instr.op, addr[0], addr[1])
                hit = facts.get(key)
                if hit is not None and hit != instr.result:
                    subst[instr.result] = hit
                    removed += 1
                    continue
            _apply_instr(facts, defs, instr)
            kept.append(instr)
        block.instrs = kept
    substitute_values(func, subst)
    return removed
