"""The verifying pass manager: named pass registration, configurable
pipelines, fixpoint scheduling, and per-pass change/timing statistics.

A *pass* is a function ``(Function) -> int`` returning how many changes
it made; zero means the function is already a fixpoint of that pass.
Passes register under a stable name via :func:`register_pass` and are
assembled into named pipelines (:data:`PIPELINES`) that the
:class:`PassManager` schedules: each round runs every pass once, and
rounds repeat until no pass reports a change or ``max_rounds`` is
exhausted.  Exhausting the cap while passes still report changes is
recorded in :class:`~repro.core.stats.PipelineStats.fixpoint_cap_hits`
(and warned about in verify mode) rather than silently dropped.

In verify mode — ``PassManager(..., verify=True)`` or the
``REPRO_OPT_VERIFY=1`` environment variable — the IR verifier runs after
every pass that changed the function, so a miscompiling rewrite is
caught at its source with the pass name attached.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.stats import PipelineStats
from repro.ir.function import Function
from repro.ir.verify import verify_after_pass, verify_enabled_by_env

PassFn = Callable[[Function], int]

_REGISTRY: Dict[str, PassFn] = {}


def register_pass(name: str, fn: Optional[PassFn] = None):
    """Register ``fn`` under ``name``; usable as a decorator."""
    if fn is not None:
        _REGISTRY[name] = fn
        return fn

    def decorator(inner: PassFn) -> PassFn:
        _REGISTRY[name] = inner
        return inner

    return decorator


def get_pass(name: str) -> PassFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def available_passes() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# Named pipelines.  "legacy" is the seed repo's original four-pass loop;
# "default" adds copy propagation, GVN/CSE, cross-block load forwarding,
# and the extended jump threading inside simplify-cfg.
PIPELINES: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "legacy": ("fold", "prune-params", "simplify-cfg-legacy", "dce"),
    "default": ("fold", "copyprop", "gvn", "prune-params", "simplify-cfg",
                "load-forward", "dce"),
}
DEFAULT_PIPELINE = "default"

PassSpec = Union[str, Tuple[str, PassFn]]


class PassManager:
    """Schedules a pipeline of passes over functions to a fixpoint.

    ``passes`` is a pipeline name from :data:`PIPELINES`, or an iterable
    of pass names and/or ``(name, fn)`` pairs (the latter bypass the
    registry, which keeps ad-hoc test passes out of the global table).
    ``verify=None`` defers to the ``REPRO_OPT_VERIFY`` environment
    variable.  ``stats`` may be a shared :class:`PipelineStats` to
    accumulate over many functions.
    """

    def __init__(self, passes: Union[str, Iterable[PassSpec], None] = None,
                 max_rounds: int = 6,
                 verify: Optional[bool] = None,
                 stats: Optional[PipelineStats] = None):
        if passes is None:
            passes = DEFAULT_PIPELINE
        if isinstance(passes, str):
            if passes not in PIPELINES:
                raise KeyError(
                    f"unknown pipeline {passes!r}; available: "
                    f"{', '.join(sorted(PIPELINES))}")
            passes = PIPELINES[passes]
        self.passes: List[Tuple[str, PassFn]] = []
        for spec in passes:
            if isinstance(spec, str):
                self.passes.append((spec, get_pass(spec)))
            else:
                name, fn = spec
                self.passes.append((name, fn))
        self.max_rounds = max_rounds
        self.verify = verify_enabled_by_env() if verify is None else verify
        self.stats = stats if stats is not None else PipelineStats()

    def run(self, func: Function, module=None) -> PipelineStats:
        """Optimize one function in place; returns the (shared) stats."""
        from repro.opt.simplify_cfg import remove_unreachable_blocks

        stats = self.stats
        start = time.perf_counter()
        stats.runs += 1
        stats.instrs_before += func.num_instrs()
        stats.blocks_before += func.num_blocks()

        # Prepass: passes assume operand-reachability invariants that
        # unreachable specializer debris need not satisfy.
        remove_unreachable_blocks(func)
        if self.verify:
            verify_after_pass(func, module, "remove-unreachable")

        rounds = 0
        changed = 0
        while rounds < self.max_rounds:
            rounds += 1
            changed = 0
            for name, fn in self.passes:
                pass_start = time.perf_counter()
                delta = fn(func)
                pass_stats = stats.pass_stats(name)
                pass_stats.runs += 1
                pass_stats.changes += delta
                pass_stats.seconds += time.perf_counter() - pass_start
                changed += delta
                if self.verify and delta:
                    verify_after_pass(func, module, name)
            if not changed:
                break
        if changed:
            # max_rounds exhausted while passes still reported changes:
            # the fixpoint was NOT reached.  Record it; never drop it.
            stats.fixpoint_cap_hits += 1
            if self.verify:
                warnings.warn(
                    f"{func.name}: optimization fixpoint not reached "
                    f"after {self.max_rounds} rounds "
                    f"({changed} changes still pending)",
                    RuntimeWarning, stacklevel=2)

        stats.rounds += rounds
        stats.instrs_after += func.num_instrs()
        stats.blocks_after += func.num_blocks()
        stats.seconds += time.perf_counter() - start
        return stats


def _register_builtin_passes() -> None:
    from repro.opt.copyprop import propagate_copies
    from repro.opt.dce import eliminate_dead_code
    from repro.opt.fold import fold_constants
    from repro.opt.gvn import global_value_numbering
    from repro.opt.load_forward import forward_loads
    from repro.opt.prune_params import prune_block_params
    from repro.opt.simplify_cfg import (
        fold_uniform_branches,
        remove_unreachable_blocks,
        simplify_cfg,
        simplify_cfg_legacy,
        thread_constant_branches,
        thread_trivial_jumps,
    )

    register_pass("fold", fold_constants)
    register_pass("copyprop", propagate_copies)
    register_pass("gvn", global_value_numbering)
    register_pass("load-forward", forward_loads)
    register_pass("prune-params", prune_block_params)
    register_pass("simplify-cfg", simplify_cfg)
    register_pass("simplify-cfg-legacy", simplify_cfg_legacy)
    register_pass("dce", eliminate_dead_code)
    # Primitive CFG sub-passes, registered for targeted use and for the
    # run-every-pass-in-isolation property tests.
    register_pass("remove-unreachable", remove_unreachable_blocks)
    register_pass("thread-jumps", thread_trivial_jumps)
    register_pass("fold-uniform-branches", fold_uniform_branches)
    register_pass("thread-constant-branches", thread_constant_branches)


_register_builtin_passes()
