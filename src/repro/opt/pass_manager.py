"""The verifying pass manager: named pass registration, configurable
pipelines, dirty-set fixpoint scheduling, and per-pass change/timing
statistics.

A *pass* is a function ``(Function) -> int`` returning how many changes
it made; zero means the function is already a fixpoint of that pass.
Passes register under a stable name via :func:`register_pass` and are
assembled into named pipelines (:data:`PIPELINES`) that the
:class:`PassManager` schedules round by round until no pass reports a
change or ``max_rounds`` is exhausted.  Exhausting the cap while passes
still report changes is recorded in
:class:`~repro.core.stats.PipelineStats.fixpoint_cap_hits`
(and warned about in verify mode) rather than silently dropped.

**Dirty-set scheduling.**  Each registered pass declares the change
*kinds* it ``invalidates`` (what its edits may enable elsewhere) and the
kinds it ``depends`` on (what could create new opportunities for it).
Within a round, a pass runs only if some earlier change dirtied one of
its input kinds; a pass that would provably report zero changes is
skipped and counted in ``PipelineStats.passes_skipped``.  A round where
every executed pass reports zero changes ends the fixpoint, exactly as
before.

**Work detectors.**  Coarse kinds alone cannot prove much — nearly every
pass depends on ``values``/``uses`` and nearly every pass dirties them —
so each built-in pass also registers a *sound work detector*
(``workcheck``): a cheap single-sweep predicate that returns ``False``
only when a full run would provably report zero changes (its condition
mirrors, or over-approximates, the pass's own first-change test; see the
``*_has_work`` functions next to each pass).  A pass whose input kinds
are dirty still gets skipped when its detector finds no candidate —
this is what eliminates both the no-op passes of the first round and
the all-zero verification round at the end of every fixpoint.  Detector
skips are counted in ``passes_skipped_nowork`` and their cost in
``workcheck_seconds``.

Because a skipped pass is one whose exhaustive run would have been a
no-op, the sequence of IR mutations — and therefore the final function
— is byte-identical to running every pass every round;
``PassManager(..., exhaustive=True)`` forces the latter and is used by
the determinism tier to assert exactly that, and verify mode re-runs
every *skipped* pass on a clone and fails loudly if it would have
changed anything.  Declared kinds:

========  ==========================================================
consts    constant definitions created, or operands becoming constant
values    uses rewritten to other values (substitution)
uses      instructions/operands removed (use counts dropped)
cfg       blocks removed/merged or edges retargeted/folded
params    block parameter lists or call argument shapes changed
loads     memory operations removed or rewritten
========  ==========================================================

In verify mode — ``PassManager(..., verify=True)`` or the
``REPRO_OPT_VERIFY=1`` environment variable — the IR verifier runs after
every pass that changed the function, so a miscompiling rewrite is
caught at its source with the pass name attached.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.stats import PipelineStats
from repro.ir.function import Function
from repro.ir.verify import verify_after_pass, verify_enabled_by_env

PassFn = Callable[[Function], int]

# Every change kind the scheduler tracks; passes with no declaration are
# treated as reading and invalidating everything (always sound).
KINDS: FrozenSet[str] = frozenset(
    {"consts", "values", "uses", "cfg", "params", "loads"})


WorkCheck = Callable[[Function], bool]


@dataclasses.dataclass(frozen=True)
class PassInfo:
    """A registered pass plus its dirty-set scheduling metadata.

    ``workcheck`` is an optional *sound work detector*: a cheap predicate
    that may return ``False`` only when a full run of the pass on the
    current function would provably report zero changes (returning
    ``True`` spuriously is allowed — it merely costs a no-op run).  The
    scheduler consults it after the dirty-kind filter, so expensive
    passes are skipped even in rounds where coarse kinds are dirty."""

    fn: PassFn
    depends: FrozenSet[str] = KINDS
    invalidates: FrozenSet[str] = KINDS
    workcheck: Optional[WorkCheck] = None


_REGISTRY: Dict[str, PassInfo] = {}


def register_pass(name: str, fn: Optional[PassFn] = None, *,
                  depends: Optional[Iterable[str]] = None,
                  invalidates: Optional[Iterable[str]] = None,
                  workcheck: Optional[WorkCheck] = None):
    """Register ``fn`` under ``name``; usable as a decorator.

    ``depends``/``invalidates`` are subsets of :data:`KINDS`; omitting
    either defaults to the conservative "everything" set.  ``workcheck``
    is the optional sound work detector (see :class:`PassInfo`).
    """
    def check(kinds) -> FrozenSet[str]:
        if kinds is None:
            return KINDS
        kinds = frozenset(kinds)
        unknown = kinds - KINDS
        if unknown:
            raise ValueError(f"unknown change kinds {sorted(unknown)}")
        return kinds

    dep, inv = check(depends), check(invalidates)
    if fn is not None:
        _REGISTRY[name] = PassInfo(fn, dep, inv, workcheck)
        return fn

    def decorator(inner: PassFn) -> PassFn:
        _REGISTRY[name] = PassInfo(inner, dep, inv, workcheck)
        return inner

    return decorator


def get_pass(name: str) -> PassFn:
    try:
        return _REGISTRY[name].fn
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def get_pass_info(name: str) -> PassInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def available_passes() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# Named pipelines.  "legacy" is the seed repo's original four-pass loop;
# "default" adds copy propagation, GVN/CSE, cross-block load forwarding,
# and the extended jump threading inside simplify-cfg.
PIPELINES: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "legacy": ("fold", "prune-params", "simplify-cfg-legacy", "dce"),
    "default": ("fold", "copyprop", "gvn", "prune-params", "simplify-cfg",
                "load-forward", "dce"),
}
DEFAULT_PIPELINE = "default"

PassSpec = Union[str, Tuple[str, PassFn]]


class PassManager:
    """Schedules a pipeline of passes over functions to a fixpoint.

    ``passes`` is a pipeline name from :data:`PIPELINES`, or an iterable
    of pass names and/or ``(name, fn)`` pairs (the latter bypass the
    registry, which keeps ad-hoc test passes out of the global table,
    and get conservative run-always metadata).  ``verify=None`` defers
    to the ``REPRO_OPT_VERIFY`` environment variable.  ``stats`` may be
    a shared :class:`PipelineStats` to accumulate over many functions.
    ``exhaustive=True`` disables dirty-set skipping (every pass runs
    every round); the output is identical either way — the flag exists
    so the determinism tier can assert that.
    """

    def __init__(self, passes: Union[str, Iterable[PassSpec], None] = None,
                 max_rounds: int = 6,
                 verify: Optional[bool] = None,
                 stats: Optional[PipelineStats] = None,
                 exhaustive: bool = False):
        if passes is None:
            passes = DEFAULT_PIPELINE
        if isinstance(passes, str):
            if passes not in PIPELINES:
                raise KeyError(
                    f"unknown pipeline {passes!r}; available: "
                    f"{', '.join(sorted(PIPELINES))}")
            passes = PIPELINES[passes]
        self.passes: List[Tuple[str, PassInfo]] = []
        for spec in passes:
            if isinstance(spec, str):
                self.passes.append((spec, get_pass_info(spec)))
            else:
                name, fn = spec
                self.passes.append((name, PassInfo(fn)))
        self.max_rounds = max_rounds
        self.verify = verify_enabled_by_env() if verify is None else verify
        self.stats = stats if stats is not None else PipelineStats()
        self.exhaustive = exhaustive

    def run(self, func: Function, module=None) -> PipelineStats:
        """Optimize one function in place; returns the (shared) stats."""
        from repro.opt.simplify_cfg import remove_unreachable_blocks

        stats = self.stats
        start = time.perf_counter()
        stats.runs += 1
        stats.instrs_before += func.num_instrs()
        stats.blocks_before += func.num_blocks()

        # Prepass: passes assume operand-reachability invariants that
        # unreachable specializer debris need not satisfy.
        remove_unreachable_blocks(func)
        if self.verify:
            verify_after_pass(func, module, "remove-unreachable")

        # Dirty-set scheduling state: the change kinds that accumulated
        # since each pass last ran.  Everything starts dirty, so round 1
        # runs the full pipeline exactly like the exhaustive schedule.
        pending: Dict[str, set] = {name: set(KINDS)
                                   for name, _ in self.passes}
        rounds = 0
        changed = 0
        while rounds < self.max_rounds:
            rounds += 1
            changed = 0
            for name, info in self.passes:
                pass_stats = stats.pass_stats(name)
                if not self.exhaustive and \
                        not (pending[name] & info.depends):
                    # No change since this pass's last clean run could
                    # have created work for it: running it would report
                    # zero changes (its declared inputs are untouched).
                    pass_stats.skips += 1
                    stats.passes_skipped += 1
                    if self.verify:
                        self._assert_noop(func, name, info, "kind-clean")
                    continue
                if not self.exhaustive and info.workcheck is not None:
                    check_start = time.perf_counter()
                    has_work = info.workcheck(func)
                    stats.workcheck_seconds += \
                        time.perf_counter() - check_start
                    if not has_work:
                        # The detector proved a run would report zero
                        # changes on the current IR; record that the
                        # pass observed this state (pending cleared)
                        # exactly as a real zero-change run would.
                        pending[name].clear()
                        pass_stats.skips += 1
                        stats.passes_skipped += 1
                        stats.passes_skipped_nowork += 1
                        if self.verify:
                            self._assert_noop(func, name, info, "no-work")
                        continue
                pending[name].clear()
                pass_start = time.perf_counter()
                delta = info.fn(func)
                pass_stats.runs += 1
                pass_stats.changes += delta
                pass_stats.seconds += time.perf_counter() - pass_start
                changed += delta
                if delta:
                    for other, _ in self.passes:
                        pending[other].update(info.invalidates)
                if self.verify and delta:
                    verify_after_pass(func, module, name)
            if not changed:
                break
        if changed:
            # max_rounds exhausted while passes still reported changes:
            # the fixpoint was NOT reached.  Record it; never drop it.
            stats.fixpoint_cap_hits += 1
            if self.verify:
                warnings.warn(
                    f"{func.name}: optimization fixpoint not reached "
                    f"after {self.max_rounds} rounds "
                    f"({changed} changes still pending)",
                    RuntimeWarning, stacklevel=2)

        stats.rounds += rounds
        stats.instrs_after += func.num_instrs()
        stats.blocks_after += func.num_blocks()
        stats.seconds += time.perf_counter() - start
        return stats

    @staticmethod
    def _assert_noop(func: Function, name: str, info: PassInfo,
                     why: str) -> None:
        """Verify-mode self-check: a skipped pass must be a no-op.

        Runs the pass on a deep clone and fails loudly if it would have
        changed anything — catching an unsound work detector or an
        undershooting ``depends`` declaration at its source."""
        from repro.ir.clone import clone_function

        delta = info.fn(clone_function(func))
        if delta:
            raise AssertionError(
                f"{func.name}: pass {name!r} was skipped ({why}) but a "
                f"run would have made {delta} change(s) — unsound "
                f"scheduling metadata or work detector")


def _register_builtin_passes() -> None:
    from repro.opt.copyprop import copyprop_has_work, propagate_copies
    from repro.opt.dce import dce_has_work, eliminate_dead_code
    from repro.opt.fold import fold_constants, fold_has_work
    from repro.opt.gvn import global_value_numbering, gvn_has_work
    from repro.opt.load_forward import forward_loads, load_forward_has_work
    from repro.opt.prune_params import (
        prune_block_params,
        prune_params_has_work,
    )
    from repro.opt.simplify_cfg import (
        fold_uniform_branches,
        remove_unreachable_blocks,
        simplify_cfg,
        simplify_cfg_has_work,
        simplify_cfg_legacy,
        simplify_cfg_legacy_has_work,
        thread_constant_branches,
        thread_trivial_jumps,
    )

    # Scheduling metadata (see module docstring for the kind glossary).
    # ``depends`` must name every kind whose change could create new
    # work for the pass — undershooting would skip a pass that had real
    # changes to make and is caught by the exhaustive-vs-dirty
    # determinism tier; overshooting merely runs a no-op pass.
    register_pass(
        "fold", fold_constants,
        # New constants and operand substitutions expose folds; folding
        # creates constants (self-triggering across iteration order),
        # folds branches, and drops operand uses.
        depends={"consts", "values"},
        invalidates={"consts", "cfg", "uses"},
        workcheck=fold_has_work)
    register_pass(
        "copyprop", propagate_copies,
        # Identities need constant operands; substitution can chain.
        depends={"consts", "values"},
        invalidates={"values", "uses"},
        workcheck=copyprop_has_work)
    register_pass(
        "gvn", global_value_numbering,
        # Substitution unifies expressions; CFG edits reshape the
        # dominator tree (and thus CSE scopes); constants feed pooling.
        depends={"consts", "values", "cfg"},
        invalidates={"values", "uses"},
        workcheck=gvn_has_work)
    register_pass(
        "load-forward", forward_loads,
        # Address resolution looks through constants and value chains;
        # CFG edits change the meet structure.
        depends={"consts", "values", "cfg", "loads"},
        invalidates={"values", "uses", "loads"},
        workcheck=load_forward_has_work)
    register_pass(
        "prune-params", prune_block_params,
        # A param becomes prunable when incoming args unify (via
        # substitution or edge removal) or another param was pruned.
        depends={"values", "cfg", "params"},
        invalidates={"params", "values", "uses", "cfg"},
        workcheck=prune_params_has_work)
    register_pass(
        "simplify-cfg", simplify_cfg,
        # Threading keys on use counts (DCE enables it), constant
        # selectors, param/arg shapes, and prior CFG edits.
        depends={"cfg", "consts", "values", "uses", "params"},
        invalidates={"cfg", "values", "uses", "params"},
        workcheck=simplify_cfg_has_work)
    register_pass("simplify-cfg-legacy", simplify_cfg_legacy,
                  depends={"cfg", "consts", "values", "uses", "params"},
                  invalidates={"cfg", "values", "uses", "params"},
                  workcheck=simplify_cfg_legacy_has_work)
    register_pass(
        "dce", eliminate_dead_code,
        # Only dropped uses make instructions newly dead; removing pure
        # instructions only drops more uses.
        depends={"uses"},
        invalidates={"uses"},
        workcheck=dce_has_work)
    # Primitive CFG sub-passes, registered for targeted use and for the
    # run-every-pass-in-isolation property tests (conservative
    # run-always metadata).
    register_pass("remove-unreachable", remove_unreachable_blocks)
    register_pass("thread-jumps", thread_trivial_jumps)
    register_pass("fold-uniform-branches", fold_uniform_branches)
    register_pass("thread-constant-branches", thread_constant_branches)


_register_builtin_passes()
