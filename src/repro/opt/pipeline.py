"""The standard post-specialization pass pipeline.

A thin convenience layer over :class:`~repro.opt.pass_manager.PassManager`:
``optimize_function(func)`` runs the default pipeline to a fixpoint
(bounded by ``max_rounds``, with the cap-exhausted case recorded in the
returned :class:`~repro.core.stats.PipelineStats` rather than silently
dropped).  ``config`` selects a named pipeline — ``"default"`` (the full
mid-end), ``"legacy"`` (the original four-pass loop), or ``"none"``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.stats import PipelineStats
from repro.ir.function import Function
from repro.ir.module import Module
from repro.opt.pass_manager import DEFAULT_PIPELINE, PassManager


def optimize_function(func: Function, max_rounds: int = 6,
                      config: str = DEFAULT_PIPELINE,
                      module: Optional[Module] = None,
                      stats: Optional[PipelineStats] = None,
                      verify: Optional[bool] = None,
                      exhaustive: bool = False) -> PipelineStats:
    """Run the named pass pipeline on one function; returns its stats.

    ``exhaustive=True`` disables dirty-set pass skipping (identical
    output, more pass executions — the determinism tier's reference
    schedule)."""
    manager = PassManager(config, max_rounds=max_rounds, verify=verify,
                          stats=stats, exhaustive=exhaustive)
    return manager.run(func, module)


def optimize_module(module: Module, max_rounds: int = 6,
                    config: str = DEFAULT_PIPELINE,
                    stats: Optional[PipelineStats] = None,
                    verify: Optional[bool] = None,
                    exhaustive: bool = False) -> PipelineStats:
    """Optimize every function in a module with one shared stats sink."""
    manager = PassManager(config, max_rounds=max_rounds, verify=verify,
                          stats=stats, exhaustive=exhaustive)
    for func in module.functions.values():
        manager.run(func, module)
    return manager.stats
