"""The standard post-specialization pass pipeline."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants
from repro.opt.prune_params import prune_block_params
from repro.opt.simplify_cfg import remove_unreachable_blocks, simplify_cfg


def optimize_function(func: Function, max_rounds: int = 4) -> None:
    """Run folding / param-pruning / CFG simplification / DCE to a
    fixpoint (bounded by ``max_rounds``)."""
    remove_unreachable_blocks(func)
    for _ in range(max_rounds):
        changed = 0
        changed += fold_constants(func)
        changed += prune_block_params(func)
        changed += simplify_cfg(func)
        changed += eliminate_dead_code(func)
        if not changed:
            break


def optimize_module(module: Module, max_rounds: int = 4) -> None:
    for func in module.functions.values():
        optimize_function(func, max_rounds)
