"""Redundant block-parameter pruning.

A block parameter is redundant when every predecessor passes the same
value for it (or the parameter itself, for self-loops).  Removing one
may expose more, so the pass iterates to a fixpoint.  This is the
cleanup that turns the specializer's conservatively-created parameters
into the "minimal cut" shape of the paper's S3.4.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.opt.util import resolve, substitute_values


def prune_params_has_work(func: Function) -> bool:
    """Cheap sound work detector: does any non-entry block have a
    parameter whose incoming arguments all agree (modulo self-loops)?
    Exactly the pass's first-iteration condition with an empty
    substitution, and a zero first iteration ends its fixpoint loop, so
    ``False`` proves a full run would report zero changes."""
    incoming: Dict[int, List[tuple]] = {bid: [] for bid in func.blocks}
    for block in func.blocks.values():
        if block.terminator is None:
            continue
        for call in block.terminator.targets():
            if call.block in incoming:
                incoming[call.block].append(call)
    for bid, block in func.blocks.items():
        if bid == func.entry or not block.params:
            continue
        calls = incoming[bid]
        if not calls:
            continue
        for index, (param, _ty) in enumerate(block.params):
            args = {call.args[index] for call in calls}
            args.discard(param)
            if len(args) == 1:
                return True
    return False


def prune_block_params(func: Function) -> int:
    removed_total = 0
    substitution: Dict[int, int] = {}
    while True:
        # Gather, for each block, the argument lists from all incoming
        # edges (positionally).
        incoming: Dict[int, List[tuple]] = {bid: [] for bid in func.blocks}
        for block in func.blocks.values():
            if block.terminator is None:
                continue
            for call in block.terminator.targets():
                if call.block in incoming:
                    incoming[call.block].append(call)

        removed = 0
        for bid, block in func.blocks.items():
            if bid == func.entry or not block.params:
                continue
            calls = incoming[bid]
            if not calls:
                continue
            keep = []
            replacement: Dict[int, int] = {}
            for index, (param, ty) in enumerate(block.params):
                args = {resolve(substitution, call.args[index])
                        for call in calls}
                args.discard(param)  # self-reference (loop-carried)
                if len(args) == 1:
                    replacement[param] = args.pop()
                else:
                    keep.append(index)
            if len(keep) == len(block.params):
                continue
            # A parameter can only be replaced if its value dominates this
            # block; a value passed identically on all edges does (see the
            # dominance argument in repro.core.state's docstring).
            block.params = [block.params[i] for i in keep]
            for call in calls:
                call.args = tuple(call.args[i] for i in keep)
            substitution.update(replacement)
            removed += len(replacement)
        removed_total += removed
        if not removed:
            break
    substitute_values(func, substitution)
    return removed_total
