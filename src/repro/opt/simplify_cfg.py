"""CFG simplification: unreachable-block removal, jump threading, and
straight-line block merging.

Beyond the classic trivial-forwarder threading and straight-line
merging, this module threads *conditional* control flow: an edge that
passes a constant into an empty block whose terminator branches on that
block parameter is retargeted straight to the decided successor
(:func:`thread_constant_branches`), and branches whose arms agree are
collapsed to plain jumps (:func:`fold_uniform_branches`)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.cfg import reachable_blocks
from repro.ir.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Jump,
    terminator_values,
)
from repro.opt.util import substitute_values


def remove_unreachable_blocks(func: Function) -> int:
    reachable = reachable_blocks(func)
    dead = [bid for bid in func.blocks if bid not in reachable]
    for bid in dead:
        del func.blocks[bid]
    return len(dead)


def _all_calls(func: Function):
    """Yield (block_id, BlockCall) for every edge in the function."""
    for bid, block in func.blocks.items():
        if block.terminator is None:
            continue
        for call in block.terminator.targets():
            yield bid, call


def merge_straightline(func: Function) -> int:
    """Merge B -> C when B ends in an argless-unconditional jump to C and
    C's only incoming edge is that jump.  C's params are substituted by
    the jump arguments."""
    merged = 0
    substitution: Dict[int, int] = {}
    while True:
        pred_count: Dict[int, int] = {bid: 0 for bid in func.blocks}
        for _bid, call in _all_calls(func):
            pred_count[call.block] = pred_count.get(call.block, 0) + 1

        did_merge = False
        for bid in list(func.blocks.keys()):
            block = func.blocks.get(bid)
            if block is None:
                continue
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            target_id = term.target.block
            if target_id == bid or target_id == func.entry:
                continue
            if pred_count.get(target_id, 0) != 1:
                continue
            target = func.blocks[target_id]
            for (param, _ty), arg in zip(target.params, term.target.args):
                substitution[param] = arg
            block.instrs.extend(target.instrs)
            block.terminator = target.terminator
            del func.blocks[target_id]
            merged += 1
            did_merge = True
            break  # pred counts changed; recompute
        if not did_merge:
            break
    substitute_values(func, substitution)
    return merged


def _forwarder_map(func: Function) -> Dict[int, Tuple[int, List[int]]]:
    """Map of trivial forwarding blocks: id -> (target, arg indices).

    A block E is a trivial forwarder when it has no instructions and
    ends in ``jump D(args)`` where every arg is one of E's own
    parameters.  A forwarder's parameter may only be used inside its own
    jump arguments: any other use relies on the block staying on the
    path (dominance), so the block cannot be bypassed.  Shared by
    :func:`thread_trivial_jumps` and its work detector so the two can
    never disagree about what counts as a forwarder."""
    use_counts: Dict[int, int] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            for arg in instr.args:
                use_counts[arg] = use_counts.get(arg, 0) + 1
        if block.terminator is not None:
            for value in terminator_values(block.terminator):
                use_counts[value] = use_counts.get(value, 0) + 1

    forwarders: Dict[int, Tuple[int, List[int]]] = {}
    for bid, block in func.blocks.items():
        if block.instrs or not isinstance(block.terminator, Jump):
            continue
        call = block.terminator.target
        if call.block == bid:
            continue
        param_index = {v: i for i, (v, _) in enumerate(block.params)}
        indices = []
        ok = True
        for arg in call.args:
            if arg in param_index:
                indices.append(param_index[arg])
            else:
                ok = False
                break
        if ok:
            # Every param must be used exactly as often as it appears in
            # this block's own jump arguments — no external uses.
            own_uses: Dict[int, int] = {}
            for arg in call.args:
                own_uses[arg] = own_uses.get(arg, 0) + 1
            for param, _ty in block.params:
                if use_counts.get(param, 0) != own_uses.get(param, 0):
                    ok = False
                    break
        if ok:
            forwarders[bid] = (call.block, indices)
    return forwarders


def thread_trivial_jumps(func: Function) -> int:
    """Retarget edges that pass through an empty forwarding block (see
    :func:`_forwarder_map` for the forwarder condition)."""
    threaded = 0
    forwarders = _forwarder_map(func)

    def final_target(bid: int, args: tuple, depth: int = 0):
        if depth > len(func.blocks) or bid not in forwarders:
            return bid, args
        target, indices = forwarders[bid]
        new_args = tuple(args[i] for i in indices)
        return final_target(target, new_args, depth + 1)

    for _bid, call in _all_calls(func):
        new_block, new_args = final_target(call.block, tuple(call.args))
        if new_block != call.block or new_args != tuple(call.args):
            call.block = new_block
            call.args = new_args
            threaded += 1
    return threaded


def fold_uniform_branches(func: Function) -> int:
    """Collapse conditional terminators whose arms are identical.

    ``br_if v, T(args), T(args)`` and a ``br_table`` whose cases and
    default all agree become plain jumps; the condition value is left
    for DCE."""
    folded = 0
    for block in func.blocks.values():
        term = block.terminator
        if isinstance(term, BrIf):
            if (term.if_true.block == term.if_false.block and
                    tuple(term.if_true.args) == tuple(term.if_false.args)):
                block.terminator = Jump(term.if_true)
                folded += 1
        elif isinstance(term, BrTable):
            calls = list(term.cases) + [term.default]
            first = calls[0]
            if all(c.block == first.block and
                   tuple(c.args) == tuple(first.args) for c in calls[1:]):
                block.terminator = Jump(first)
                folded += 1
    return folded


def thread_constant_branches(func: Function) -> int:
    """Jump threading through per-edge-constant conditional forwarders.

    When an edge passes a constant for a parameter of an empty block
    whose terminator branches on that parameter, the branch outcome is
    decided *for that edge* even though the block itself cannot be
    folded (other predecessors may pass different values).  The edge is
    retargeted straight to the decided successor, composing block
    arguments through the forwarder's parameter bindings.

    Branch arguments of the forwarder that are not its own parameters
    are only carried along when their definitions dominate the
    retargeted predecessor, preserving SSA validity."""
    consts: Dict[int, int] = {}
    def_block: Dict[int, int] = {}
    for bid, block in func.blocks.items():
        for param, _ty in block.params:
            def_block[param] = bid
        for instr in block.instrs:
            if instr.result is not None:
                def_block[instr.result] = bid
            if instr.op == "iconst":
                consts[instr.result] = instr.imm
    domtree = DominatorTree(func)

    def decide(target: BlockCall) -> Optional[BlockCall]:
        """One threading step: the decided successor call of ``target``
        when it names an empty conditional forwarder with a constant
        selector on this edge, else None."""
        block = func.blocks.get(target.block)
        if block is None or block.instrs or target.block == func.entry:
            return None
        term = block.terminator
        if not isinstance(term, (BrIf, BrTable)):
            return None
        binding = {param: arg
                   for (param, _ty), arg in zip(block.params, target.args)}
        selector = term.cond if isinstance(term, BrIf) else term.index
        selector = binding.get(selector, selector)
        value = consts.get(selector)
        if value is None:
            return None
        if isinstance(term, BrIf):
            decided = term.if_true if value != 0 else term.if_false
        else:
            decided = (term.cases[value] if 0 <= value < len(term.cases)
                       else term.default)
        return BlockCall(decided.block,
                         tuple(binding.get(a, a) for a in decided.args))

    threaded = 0
    for bid, block in list(func.blocks.items()):
        term = block.terminator
        if term is None:
            continue
        for call in term.targets():
            composed = None
            seen = {call.block}
            step = decide(call)
            # Chase chains of decided forwarders, stopping on a cycle
            # (a genuinely infinite empty-block loop stays as-is).
            while step is not None and step.block not in seen:
                composed = step
                seen.add(step.block)
                step = decide(step)
            if composed is None:
                continue
            # Arguments that are not forwarder parameters must dominate
            # the predecessor for the shortcut edge to stay in SSA form.
            ok = True
            for arg in composed.args:
                dblock = def_block.get(arg)
                if dblock is None or not domtree.is_reachable(dblock) \
                        or not domtree.is_reachable(bid) \
                        or not domtree.dominates(dblock, bid):
                    ok = False
                    break
            if not ok:
                continue
            call.block = composed.block
            call.args = tuple(composed.args)
            threaded += 1
            # Retargeting changes the path structure; recompute dominance
            # so later decisions in this sweep never use stale facts.
            domtree = DominatorTree(func)
    return threaded


def _has_unreachable(func: Function) -> bool:
    return len(reachable_blocks(func)) != len(func.blocks)


def _has_uniform_branch(func: Function) -> bool:
    for block in func.blocks.values():
        term = block.terminator
        if isinstance(term, BrIf):
            if (term.if_true.block == term.if_false.block and
                    tuple(term.if_true.args) == tuple(term.if_false.args)):
                return True
        elif isinstance(term, BrTable):
            calls = list(term.cases) + [term.default]
            first = calls[0]
            if all(c.block == first.block and
                   tuple(c.args) == tuple(first.args) for c in calls[1:]):
                return True
    return False


def _has_constant_branch_edge(func: Function) -> bool:
    """An edge that passes a constant into an empty conditional block —
    :func:`thread_constant_branches`'s candidate condition minus the
    dominance filter on carried arguments (overfiring is sound)."""
    consts = set()
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.op == "iconst":
                consts.add(instr.result)
    for _bid, call in _all_calls(func):
        block = func.blocks.get(call.block)
        if block is None or block.instrs or call.block == func.entry:
            continue
        term = block.terminator
        if not isinstance(term, (BrIf, BrTable)):
            continue
        binding = {param: arg
                   for (param, _ty), arg in zip(block.params, call.args)}
        selector = term.cond if isinstance(term, BrIf) else term.index
        if binding.get(selector, selector) in consts:
            return True
    return False


def _has_merge_candidate(func: Function) -> bool:
    pred_count: Dict[int, int] = {}
    for _bid, call in _all_calls(func):
        pred_count[call.block] = pred_count.get(call.block, 0) + 1
    for bid, block in func.blocks.items():
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        target = term.target.block
        if (target != bid and target != func.entry
                and pred_count.get(target, 0) == 1):
            return True
    return False


def simplify_cfg_has_work(func: Function) -> bool:
    """Cheap sound work detector for :func:`simplify_cfg`.

    The composite is a sequence of sub-passes; if every sub-pass's
    candidate condition is false on the current IR, the first sub-pass
    is a no-op, so the IR reaching each later sub-pass is unchanged and
    its condition is still false — the whole composite reports zero.
    Each condition here matches (or soundly over-approximates) its
    sub-pass's own first-change test."""
    if _has_unreachable(func) or _has_uniform_branch(func) \
            or _has_merge_candidate(func) or _has_constant_branch_edge(func):
        return True
    forwarders = _forwarder_map(func)
    if forwarders:
        for _bid, call in _all_calls(func):
            if call.block in forwarders:
                return True
    return False


def simplify_cfg_legacy_has_work(func: Function) -> bool:
    """Work detector for the legacy composite (no conditional threading
    or uniform-branch folding) — same argument as
    :func:`simplify_cfg_has_work` over its shorter sub-pass list."""
    if _has_unreachable(func) or _has_merge_candidate(func):
        return True
    forwarders = _forwarder_map(func)
    if forwarders:
        for _bid, call in _all_calls(func):
            if call.block in forwarders:
                return True
    return False


def simplify_cfg_legacy(func: Function) -> int:
    """The seed repo's original composition (no conditional threading
    or uniform-branch folding) — kept bit-for-bit as the "legacy"
    pipeline's baseline so default-vs-legacy comparisons measure the
    new mid-end, not a moving target."""
    changed = remove_unreachable_blocks(func)
    changed += thread_trivial_jumps(func)
    changed += remove_unreachable_blocks(func)
    changed += merge_straightline(func)
    return changed


def simplify_cfg(func: Function) -> int:
    changed = remove_unreachable_blocks(func)
    changed += thread_trivial_jumps(func)
    changed += fold_uniform_branches(func)
    changed += thread_constant_branches(func)
    changed += remove_unreachable_blocks(func)
    changed += merge_straightline(func)
    return changed
