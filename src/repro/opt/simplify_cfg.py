"""CFG simplification: unreachable-block removal, jump threading, and
straight-line block merging."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.cfg import reachable_blocks
from repro.ir.function import Function
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Jump,
    terminator_values,
)
from repro.opt.util import substitute_values


def remove_unreachable_blocks(func: Function) -> int:
    reachable = reachable_blocks(func)
    dead = [bid for bid in func.blocks if bid not in reachable]
    for bid in dead:
        del func.blocks[bid]
    return len(dead)


def _all_calls(func: Function):
    """Yield (block_id, BlockCall) for every edge in the function."""
    for bid, block in func.blocks.items():
        if block.terminator is None:
            continue
        for call in block.terminator.targets():
            yield bid, call


def merge_straightline(func: Function) -> int:
    """Merge B -> C when B ends in an argless-unconditional jump to C and
    C's only incoming edge is that jump.  C's params are substituted by
    the jump arguments."""
    merged = 0
    substitution: Dict[int, int] = {}
    while True:
        pred_count: Dict[int, int] = {bid: 0 for bid in func.blocks}
        for _bid, call in _all_calls(func):
            pred_count[call.block] = pred_count.get(call.block, 0) + 1

        did_merge = False
        for bid in list(func.blocks.keys()):
            block = func.blocks.get(bid)
            if block is None:
                continue
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            target_id = term.target.block
            if target_id == bid or target_id == func.entry:
                continue
            if pred_count.get(target_id, 0) != 1:
                continue
            target = func.blocks[target_id]
            for (param, _ty), arg in zip(target.params, term.target.args):
                substitution[param] = arg
            block.instrs.extend(target.instrs)
            block.terminator = target.terminator
            del func.blocks[target_id]
            merged += 1
            did_merge = True
            break  # pred counts changed; recompute
        if not did_merge:
            break
    substitute_values(func, substitution)
    return merged


def thread_trivial_jumps(func: Function) -> int:
    """Retarget edges that pass through an empty forwarding block.

    A block E is a trivial forwarder when it has no instructions and ends
    in ``jump D(args)`` where every arg is one of E's own parameters.
    Edges into E are redirected straight to D with composed arguments.
    """
    threaded = 0

    # Total use counts of every value.  A forwarding block's parameter may
    # only be used inside that block's own jump arguments: any other use
    # relies on the block staying on the path (dominance), so the block
    # cannot be bypassed.
    use_counts: Dict[int, int] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            for arg in instr.args:
                use_counts[arg] = use_counts.get(arg, 0) + 1
        if block.terminator is not None:
            for value in terminator_values(block.terminator):
                use_counts[value] = use_counts.get(value, 0) + 1

    forwarders: Dict[int, Tuple[int, List[int]]] = {}
    for bid, block in func.blocks.items():
        if block.instrs or not isinstance(block.terminator, Jump):
            continue
        call = block.terminator.target
        if call.block == bid:
            continue
        param_index = {v: i for i, (v, _) in enumerate(block.params)}
        indices = []
        ok = True
        for arg in call.args:
            if arg in param_index:
                indices.append(param_index[arg])
            else:
                ok = False
                break
        if ok:
            # Every param must be used exactly as often as it appears in
            # this block's own jump arguments — no external uses.
            own_uses: Dict[int, int] = {}
            for arg in call.args:
                own_uses[arg] = own_uses.get(arg, 0) + 1
            for param, _ty in block.params:
                if use_counts.get(param, 0) != own_uses.get(param, 0):
                    ok = False
                    break
        if ok:
            forwarders[bid] = (call.block, indices)

    def final_target(bid: int, args: tuple, depth: int = 0):
        if depth > len(func.blocks) or bid not in forwarders:
            return bid, args
        target, indices = forwarders[bid]
        new_args = tuple(args[i] for i in indices)
        return final_target(target, new_args, depth + 1)

    for _bid, call in _all_calls(func):
        new_block, new_args = final_target(call.block, tuple(call.args))
        if new_block != call.block or new_args != tuple(call.args):
            call.block = new_block
            call.args = new_args
            threaded += 1
    return threaded


def simplify_cfg(func: Function) -> int:
    changed = remove_unreachable_blocks(func)
    changed += thread_trivial_jumps(func)
    changed += remove_unreachable_blocks(func)
    changed += merge_straightline(func)
    return changed
