"""Shared utilities for optimizer passes."""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import map_terminator_values


def resolve(mapping: Dict[int, int], value: int) -> int:
    """Follow a substitution chain with path compression."""
    seen = []
    while value in mapping:
        seen.append(value)
        value = mapping[value]
    for v in seen:
        mapping[v] = value
    return value


def substitute_values(func: Function, mapping: Dict[int, int]) -> None:
    """Rewrite every operand through ``mapping`` (chains are followed)."""
    if not mapping:
        return
    for block in func.blocks.values():
        for instr in block.instrs:
            if any(a in mapping for a in instr.args):
                instr.args = tuple(resolve(mapping, a) for a in instr.args)
        if block.terminator is not None:
            block.terminator = map_terminator_values(
                block.terminator, lambda v: resolve(mapping, v))
