"""The compilation pipeline layer: batch AOT with tiered caching.

This package unifies the per-runtime AOT flows behind one subsystem,
the paper's production story (S6.5) made concrete:

* :class:`~repro.pipeline.engine.CompilationEngine` — batch
  specialize → opt → verify → emit with a thread worker pool
  (``jobs=``); pure stages run concurrently, all module mutation and
  cache accounting is applied in request order, so outputs are
  bit-identical at any worker count;
* :class:`~repro.pipeline.artifacts.ArtifactStore` — the persistent
  on-disk cache (``cache_dir=``) of residual IR and emitted backend
  source, keyed by the same fingerprints as the in-memory
  :class:`~repro.core.cache.SpecializationCache`;
* :mod:`~repro.pipeline.serialize` — structural JSON round-tripping of
  IR functions with a strict corruption-is-a-miss contract;
* :class:`~repro.pipeline.tiering.TieringController` — profile-guided
  dynamic tier-up at run time (tier 0 generic interpreter → tier 1
  residual IR → tier 2 compiled Python), with guarded speculation and
  deopt back to the generic interpreter.  Pure AOT is the special case
  :meth:`~repro.pipeline.tiering.TieringController.promote_all`.

Every embedder reaches this layer through
:class:`~repro.core.snapshot.SnapshotCompiler`, which delegates its
``process_requests()`` / ``compile_backend()`` to an engine; configure
it with ``SpecializeOptions(jobs=..., cache_dir=...)``.
"""

from repro.pipeline.artifacts import (
    ARTIFACT_VERSION,
    EMITTER_VERSION,
    ArtifactStore,
    residual_fingerprint,
)
from repro.pipeline.engine import CompilationEngine, EngineResult
from repro.pipeline.serialize import (
    SerializationError,
    function_from_dict,
    function_to_dict,
)
from repro.pipeline.tiering import (
    DEFAULT_THRESHOLD,
    FunctionProfile,
    TierEntry,
    TieringController,
)

__all__ = [
    "ARTIFACT_VERSION",
    "DEFAULT_THRESHOLD",
    "EMITTER_VERSION",
    "ArtifactStore",
    "CompilationEngine",
    "EngineResult",
    "FunctionProfile",
    "SerializationError",
    "TierEntry",
    "TieringController",
    "function_from_dict",
    "function_to_dict",
    "residual_fingerprint",
]
