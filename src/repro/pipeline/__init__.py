"""The compilation pipeline layer: batch AOT with tiered caching.

This package unifies the per-runtime AOT flows behind one subsystem,
the paper's production story (S6.5) made concrete:

* :class:`~repro.pipeline.engine.CompilationEngine` — batch
  specialize → opt → verify → emit with a worker pool (``jobs=``;
  ``pool="thread"`` shares the module in-process, ``pool="process"``
  ships it to a ``ProcessPoolExecutor``); pure stages run concurrently,
  all module mutation and cache accounting is applied in request order,
  so outputs are bit-identical at any worker count and pool flavor;
* :class:`~repro.pipeline.artifacts.ArtifactStore` — the persistent
  on-disk cache (``cache_dir=``) of residual IR and emitted backend
  source, keyed by the same fingerprints as the in-memory
  :class:`~repro.core.cache.SpecializationCache`;
* :mod:`~repro.pipeline.serialize` — structural JSON round-tripping of
  IR functions, specialization requests, and compile-side modules with
  a strict corruption-is-a-miss contract;
* :class:`~repro.pipeline.tiering.TieringController` — profile-guided
  dynamic tier-up at run time (tier 0 generic interpreter → tier 1
  residual IR → tier 2 compiled Python), with guarded speculation and
  deopt back to the generic interpreter.  Pure AOT is the special case
  :meth:`~repro.pipeline.tiering.TieringController.promote_all`;
* :class:`~repro.pipeline.profiles.ProfileStore` — the fleet's
  persisted hot-set: per-function call/backedge heat merged across
  worker processes in the shared ``cache_dir``, published by
  :meth:`~repro.pipeline.tiering.TieringController.publish_heat` and
  re-adopted by
  :meth:`~repro.pipeline.tiering.TieringController.adopt_heat`, so a
  fresh worker starts at the fleet's steady state.

Every embedder reaches this layer through
:class:`~repro.core.snapshot.SnapshotCompiler`, which delegates its
``process_requests()`` / ``compile_backend()`` to an engine; configure
it with ``SpecializeOptions(jobs=..., pool=..., cache_dir=...)``.
"""

from repro.pipeline.artifacts import (
    ARTIFACT_VERSION,
    EMITTER_VERSION,
    ArtifactStore,
    atomic_write_json,
    locked_write_json,
    residual_fingerprint,
)
from repro.pipeline.engine import CompilationEngine, EngineResult
from repro.pipeline.faults import SEAMS, FaultInjected, FaultPlan
from repro.pipeline.profiles import (
    PROFILE_VERSION,
    ProfileStore,
    open_profile_store,
    profile_key,
)
from repro.pipeline.serialize import (
    SerializationError,
    function_from_dict,
    function_to_dict,
    module_from_dict,
    module_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.pipeline.tiering import (
    DEFAULT_THRESHOLD,
    FunctionProfile,
    PromotionError,
    TierEntry,
    TieringController,
)

__all__ = [
    "ARTIFACT_VERSION",
    "DEFAULT_THRESHOLD",
    "EMITTER_VERSION",
    "PROFILE_VERSION",
    "SEAMS",
    "ArtifactStore",
    "CompilationEngine",
    "EngineResult",
    "FaultInjected",
    "FaultPlan",
    "FunctionProfile",
    "ProfileStore",
    "PromotionError",
    "SerializationError",
    "TierEntry",
    "TieringController",
    "atomic_write_json",
    "function_from_dict",
    "function_to_dict",
    "locked_write_json",
    "module_from_dict",
    "module_to_dict",
    "open_profile_store",
    "profile_key",
    "request_from_dict",
    "request_to_dict",
    "residual_fingerprint",
]
