"""Versioned on-disk artifact store for the compilation pipeline (S6.5).

The paper's production deployment caches specialization outputs keyed on
the module hash plus the request's argument data, so the unchanging AOT
IC corpus is never recompiled and the compiled code ships with the
snapshot.  This module is the persistent half of that story: it stores

* **residual IR** (``spec/``) keyed by the same fingerprints the
  in-memory :class:`~repro.core.cache.SpecializationCache` uses — the
  generic function's printed body, the request's argument modes, the
  contents of every promised-constant memory range, and the
  specialization options (opt config and backend) — and
* **emitted backend source** (``py/``) keyed by the *residual*
  function's printed-IR fingerprint plus the emitter version, so a
  residual loaded warm reuses the same Python source (or the same
  recorded per-function VM-fallback decision) without re-emitting.

Key anatomy (one file per entry, file name = sha256 of the key):

    spec/<sha256((generic_fp, request_key, memory_fp, options_key))>.json
    py/<sha256((residual_fp, EMITTER_VERSION, emit_mode))>.json

Invalidation is entirely by construction: change the interpreter body,
the bytecode bytes, the opt pipeline, or the backend, and the key
changes, so the stale artifact is simply never looked up again.  Loads
are paranoid and never raise for bad cache state: a version skew,
fingerprint mismatch, JSON error, or truncated file yields status
``"invalid"`` and the engine silently recompiles.  Writes go through a
same-directory temp file + ``os.replace`` so a crashed process cannot
leave a torn artifact behind, and an unwritable cache directory
degrades to "no cache", never to a failed compile.

**Cross-process safety.**  One ``cache_dir`` may be shared by many
concurrent writer processes (parallel CI shards, several tiered
runtimes promoting against one store).  Two layers keep that safe:
every write holds an advisory ``flock`` on ``<root>/.lock`` around its
temp-file + ``os.replace`` sequence, so replaces of one entry are
serialized even on filesystems where rename ordering is weak; and
after the replace, the writer *re-reads its own entry* and validates
the stored fingerprints before reporting success, so a lost race, a
torn page, or an out-of-space truncation is reported as "not stored"
(the entry recompiles next process) rather than poisoning the store.
Readers stay lock-free: an entry file is only ever observed in a
whole-before or whole-after state thanks to the atomic replace, and
anything else fails fingerprint validation on load.  On platforms
without ``fcntl`` the lock degrades to the (already atomic) plain
write; the reread validation still applies.

The store keeps no mutable counters (loads run on engine worker
threads); every operation returns a status string and the engine
aggregates them into :class:`~repro.core.stats.EngineStats` serially.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.ir.function import Function
from repro.pipeline.serialize import (
    SerializationError,
    function_from_dict,
    function_to_dict,
)

# Bump on any change to the artifact schema, the IR serialization, or
# the semantics of specialization outputs that the key cannot see.
ARTIFACT_VERSION = 3  # 3: inline plans in request keys, guard imm forms

# Bump on any change to the Python backend's emitted-code shape (the
# ``py/`` entries cache emitter *output*, so the emitter itself is part
# of their identity).
EMITTER_VERSION = 4  # 4: link slots, fixed-arity entries, callee depth

HIT = "hit"
MISS = "miss"
INVALID = "invalid"  # present but unusable: version/fp skew, corruption

# Consecutive write failures (OSError, lost reread validation, injected
# outage) after which a store stops touching the disk and degrades to a
# memory-only overlay for the rest of the process.  Write failures under
# healthy operation are one-off (a lost cross-process race); a run of
# them means the disk is gone (full, read-only, revoked) and every
# further attempt would burn a temp-file round trip per artifact on the
# serving path.
DEGRADE_AFTER_WRITE_FAILURES = 3


def _digest(parts: Tuple) -> str:
    """Stable hex digest of a key tuple (reprs of ints/strs/tuples are
    deterministic across processes)."""
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def residual_fingerprint(ir_text: str) -> str:
    """Fingerprint of a residual function's printed IR."""
    return hashlib.sha256(ir_text.encode()).hexdigest()


class _StoreLock:
    """Advisory cross-process lock over one artifact directory.

    A fresh file handle per acquisition (re-entrant across threads is
    not needed — engine writes are single-threaded per process); any
    failure to lock degrades to lock-free operation, never to a failed
    write.
    """

    def __init__(self, root: str):
        self._path = os.path.join(root, ".lock")
        self._handle = None

    def __enter__(self) -> "_StoreLock":
        if fcntl is not None:
            try:
                self._handle = open(self._path, "a+b")
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                # A read-only store (unopenable lock file) or an
                # flock-less filesystem degrades to lock-free; reads
                # still hit and the write path reports its own failure.
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                self._handle = None
        return self

    def __exit__(self, *exc) -> None:
        # The handle must close (and the lock release with it) no matter
        # what the locked body or the explicit LOCK_UN did: an unlock
        # error (EBADF after an interleaved close, ValueError on a
        # closed file, fcntl monkeypatched away mid-run) must neither
        # leak the fd nor mask the body's own exception.
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except (OSError, ValueError):
            pass
        finally:
            try:
                handle.close()
            except OSError:
                pass


def atomic_write_json(path: str, data: dict,
                      validate: Callable[[str], bool]) -> bool:
    """Temp-file + ``os.replace`` publish of ``data`` at ``path``, with
    a ``validate`` reread before success is reported — a write that
    cannot be read back whole is a failed write, not a poisoned store.

    Every failure path releases the temp fd and unlinks the temp file;
    an unwritable directory or an unencodable payload returns ``False``,
    never raises.  Callers that need cross-process exclusion wrap this
    in a :class:`_StoreLock` (see :func:`locked_write_json`) — ``flock``
    conflicts between two fds of one process, so the lock must be taken
    exactly once per critical section, never nested.
    """
    directory = os.path.dirname(path)
    try:
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    except OSError:
        return False
    try:
        handle = os.fdopen(fd, "w", encoding="utf-8")
    except OSError:
        # fdopen failed: the raw fd is still ours to release.
        try:
            os.close(fd)
        except OSError:
            pass
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    try:
        with handle:
            json.dump(data, handle)
        os.replace(tmp, path)
    except (OSError, TypeError, ValueError):
        # Write/replace failure or a payload json cannot express: the
        # temp file must not linger in the shared directory.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    return validate(path)


def locked_write_json(lock_root: str, path: str, data: dict,
                      validate: Callable[[str], bool]) -> bool:
    """:func:`atomic_write_json` under ``lock_root``'s advisory lock
    (concurrent writers of one shared directory are serialized).

    Shared by the artifact store and the persisted profile store
    (:mod:`repro.pipeline.profiles`) so both follow one write
    discipline.
    """
    with _StoreLock(lock_root):
        return atomic_write_json(path, data, validate)


class ArtifactStore:
    """One directory of compilation artifacts, shared across processes.

    **Degraded mode.**  Store writes must never fail a build, and they
    must also never *bleed* — a dead disk turning every compile into a
    temp-file dance.  After :data:`DEGRADE_AFTER_WRITE_FAILURES`
    consecutive write failures the store flips to a memory-only overlay:
    writes land in ``self._memory`` (so warm reuse within this process
    still works), the disk is left alone, and the condition is surfaced
    through :meth:`health` (and from there
    ``EngineStats.store_degradations`` / the tiering report) instead of
    ever raising into a serving request.  ``fault_plan`` injects
    read-corruption and write-failure faults at this store's seams
    (:mod:`repro.pipeline.faults`).
    """

    def __init__(self, root: str, fault_plan=None):
        self.root = root
        self.spec_dir = os.path.join(root, "spec")
        self.py_dir = os.path.join(root, "py")
        os.makedirs(self.spec_dir, exist_ok=True)
        os.makedirs(self.py_dir, exist_ok=True)
        self.fault_plan = fault_plan
        self.degraded = False
        self.write_failures = 0
        self._consecutive_write_failures = 0
        # path -> payload dict; populated only in degraded mode, and
        # consulted before the disk so degraded-mode writes stay
        # observable to this process's loads.
        self._memory: dict = {}

    def health(self) -> dict:
        """The store's fault-containment state, for stats surfaces."""
        return {"degraded": self.degraded,
                "write_failures": self.write_failures,
                "memory_entries": len(self._memory)}

    # ------------------------------------------------------------------
    # Low-level IO.
    # ------------------------------------------------------------------
    @staticmethod
    def _read_json(path: str) -> Tuple[Optional[dict], str]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None, MISS
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError):
            return None, INVALID
        if not isinstance(data, dict) or \
                data.get("version") != ARTIFACT_VERSION:
            return None, INVALID
        return data, HIT

    def _load_json(self, path: str) -> Tuple[Optional[dict], str]:
        """Entry load: the degraded-mode memory overlay shadows the
        disk, and an injected read fault reads as corruption (the
        ``INVALID`` path the engine already treats as "recompile")."""
        overlay = self._memory.get(path)
        if overlay is not None:
            if not isinstance(overlay, dict) or \
                    overlay.get("version") != ARTIFACT_VERSION:
                return None, INVALID
            return overlay, HIT
        plan = self.fault_plan
        if plan is not None and plan.fires("store_read"):
            return None, INVALID
        return self._read_json(path)

    def _write_json(self, path: str, data: dict,
                    stored_ok: Callable[[dict], bool]) -> bool:
        """Atomically publish ``data`` at ``path`` and prove it landed.

        Delegates to :func:`locked_write_json` (advisory lock + temp
        file + ``os.replace``), validating the reread with ``stored_ok``
        — a write that cannot be read back whole is a failed write, not
        a poisoned store.  Failures accumulate toward degraded mode
        (see the class docstring); in degraded mode the entry lands in
        the memory overlay and the call reports success.
        """
        if self.degraded:
            self._memory[path] = data
            return True

        def validate(written: str) -> bool:
            reread, status = self._read_json(written)
            return status == HIT and reread is not None \
                and stored_ok(reread)

        plan = self.fault_plan
        ok = False
        if plan is None or not plan.fires("store_write"):
            try:
                ok = locked_write_json(self.root, path, data, validate)
            except Exception:
                # The write helpers are designed never to raise; this
                # is the containment backstop for the unforeseen (and
                # for hostile monkeypatching in the chaos tier).
                ok = False
        if ok:
            self._consecutive_write_failures = 0
            return True
        self.write_failures += 1
        self._consecutive_write_failures += 1
        if self._consecutive_write_failures >= DEGRADE_AFTER_WRITE_FAILURES:
            self.degraded = True
            self._memory[path] = data
            return True
        return False

    # ------------------------------------------------------------------
    # Residual IR artifacts.
    # ------------------------------------------------------------------
    def spec_path(self, key: Tuple) -> str:
        return os.path.join(self.spec_dir, _digest(key) + ".json")

    def has_residual(self, key: Tuple) -> bool:
        """Whether *some* artifact exists for ``key`` (existence only —
        a corrupt file still counts; it will be diagnosed on load)."""
        path = self.spec_path(key)
        return path in self._memory or os.path.exists(path)

    def load_residual(self, key: Tuple, name: str,
                      generic_fingerprint: str,
                      memory_fingerprint: str
                      ) -> Tuple[Optional[Function], str]:
        """Load the residual function for ``key`` as ``(function,
        status)``; the function is ``None`` unless status is ``"hit"``.

        The fingerprints are stored redundantly inside the artifact and
        re-checked here, so a digest collision or a hand-edited file is
        caught the same way as corruption: silent recompile.
        """
        data, status = self._load_json(self.spec_path(key))
        if data is None:
            return None, status
        if data.get("generic_fingerprint") != generic_fingerprint or \
                data.get("memory_fingerprint") != memory_fingerprint:
            return None, INVALID
        try:
            func = function_from_dict(data["ir"], name=name)
        except (SerializationError, KeyError, TypeError):
            return None, INVALID
        return func, HIT

    def store_residual(self, key: Tuple, func: Function, ir_text: str,
                       generic_fingerprint: str,
                       memory_fingerprint: str) -> bool:
        try:
            payload = function_to_dict(func)
        except SerializationError:
            # A function the encoding cannot express is simply not
            # persisted (it will recompile next process) — storing must
            # never fail a build.
            return False
        return self._write_json(self.spec_path(key), {
            "version": ARTIFACT_VERSION,
            "generic_fingerprint": generic_fingerprint,
            "memory_fingerprint": memory_fingerprint,
            "ir": payload,
            # The printed text is stored for humans (debugging diffs);
            # loads reconstruct from the structured form.
            "ir_text": ir_text,
        }, stored_ok=lambda d: (
            d.get("generic_fingerprint") == generic_fingerprint
            and d.get("memory_fingerprint") == memory_fingerprint
            and isinstance(d.get("ir"), dict)))

    # ------------------------------------------------------------------
    # Emitted backend source artifacts.
    # ------------------------------------------------------------------
    def py_path(self, residual_fp: str, mode: str = "structured") -> str:
        return os.path.join(self.py_dir,
                            _digest((residual_fp, EMITTER_VERSION, mode))
                            + ".json")

    def load_py_source(self, residual_fp: str, mode: str = "structured",
                       want_code: bool = False
                       ) -> Tuple[Optional[Tuple[Optional[str],
                                                 Optional[str],
                                                 Optional[object]]], str]:
        """Return ``((source, fallback_reason, code), status)``.

        On a hit exactly one of source/fallback is non-``None``: a
        stored fallback marker means the emitter already determined this
        residual cannot be compiled, so warm runs skip the re-attempt.

        ``code`` is the tier-3½ rung: with ``want_code``, an entry that
        carries a marshaled code object *for this interpreter's bytecode
        magic* yields it unmarshaled, so the caller skips ``compile()``.
        Any skew — missing field, different magic (another Python
        version wrote the entry), marshal format drift, corrupt payload
        — silently yields ``None``; the source is still a full hit.
        """
        data, status = self._load_json(self.py_path(residual_fp, mode))
        if data is None:
            return None, status
        source = data.get("source")
        fallback = data.get("fallback")
        if (source is None) == (fallback is None) or \
                not isinstance(source if source is not None else fallback,
                               str):
            return None, INVALID
        code = None
        if want_code and source is not None:
            code = self._decode_code(data)
        return (source, fallback, code), HIT

    @staticmethod
    def _decode_code(data: dict) -> Optional[object]:
        import importlib.util
        import marshal
        encoded = data.get("code")
        if not isinstance(encoded, str) or \
                data.get("py_magic") != importlib.util.MAGIC_NUMBER.hex():
            return None
        import base64
        try:
            code = marshal.loads(base64.b64decode(encoded))
        except (ValueError, EOFError, TypeError):
            return None
        import types
        return code if isinstance(code, types.CodeType) else None

    def store_py_source(self, residual_fp: str, source: Optional[str],
                        fallback: Optional[str] = None,
                        mode: str = "structured",
                        code_bytes: Optional[bytes] = None) -> bool:
        """Persist one emitted-source entry; ``code_bytes`` optionally
        attaches ``marshal.dumps`` of the compiled code object, tagged
        with this interpreter's bytecode magic so readers on another
        Python version fall back to the source."""
        payload = {
            "version": ARTIFACT_VERSION,
            "source": source,
            "fallback": fallback,
        }
        if code_bytes is not None and source is not None:
            import base64
            import importlib.util
            payload["code"] = base64.b64encode(code_bytes).decode("ascii")
            payload["py_magic"] = importlib.util.MAGIC_NUMBER.hex()
        return self._write_json(self.py_path(residual_fp, mode), payload,
                                stored_ok=lambda d: (
            d.get("source") == source and d.get("fallback") == fallback))
