"""The tiered compilation engine: one subsystem for every AOT flow.

Before this layer existed, each guest runtime hand-wired its own
specialize → optimize → emit sequence, compilation was strictly serial,
and both the in-memory :class:`~repro.core.cache.SpecializationCache`
and the compiled Python artifacts evaporated at process exit.  The
:class:`CompilationEngine` owns the whole tier-up path instead:

* it accepts **batches** of
  :class:`~repro.core.request.SpecializationRequest`\\s and runs the
  pure stages — specialize (which includes the verifying mid-end) and
  backend emission — on a ``concurrent.futures`` thread pool
  (``jobs=``), while everything order-sensitive (cache accounting,
  artifact writes, ``compile()``/``exec`` of emitted source, and the
  caller's module mutation / table registration / heap patching) stays
  single-threaded and is applied **in request order**, so results are
  bit-identical at any worker count;
* it layers the in-memory cache over a **persistent on-disk artifact
  store** (``cache_dir=``, :mod:`repro.pipeline.artifacts`): residual IR
  and emitted backend source survive process exit, a warm restart
  compiles zero functions, and fingerprint mismatches / version skew /
  corruption silently fall back to a fresh compile;
* residuals loaded from disk are **verified** before use (the artifact
  file is outside the process's trust boundary; a verifier rejection is
  treated exactly like corruption).

Worker-pool note: the default pool uses threads — under CPython's GIL
the win is stage *overlap* (disk loads, JSON parse, and the
allocator-heavy transform interleave).  ``SpecializeOptions(jobs=N,
pool="process")`` moves the specialize stage to a
``ProcessPoolExecutor`` instead: the module ships to each worker in its
serialized compile-side form (host import callables cannot cross a
process boundary, so imports travel signature-only) and residuals ship
back through the same byte-identical JSON round trip the artifact store
uses, so results are bit-identical to the thread pool at any worker
count.  Either way the order-sensitive stage 3 stays in the parent.
"""

from __future__ import annotations

import dataclasses
import marshal
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cache import (
    SpecializationCache,
    request_key,
)
from repro.core.request import SpecializationRequest
from repro.core.specialize import SpecializeOptions, specialize
from repro.core.stats import EngineStats
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.ir.verifier import VerificationError, verify_function
from repro.pipeline.artifacts import (
    HIT,
    INVALID,
    MISS,
    ArtifactStore,
    residual_fingerprint,
)
from repro.pipeline.faults import FaultInjected, plan_from_options
from repro.pipeline.serialize import (
    SerializationError,
    function_from_dict,
    function_to_dict,
    module_from_dict,
    module_to_dict,
    request_from_dict,
    request_to_dict,
)


# ---------------------------------------------------------------------------
# Process-pool workers (``SpecializeOptions(pool="process")``).
#
# The specialize stage is pure, so it can leave the process: the module
# travels once per worker as its serialized compile-side form (functions,
# import *signatures*, table, globals — host callables never cross), the
# heap snapshot travels with it, and each task is one JSON-encoded
# request plus its precomputed cache key.  Workers return the residual
# in serialized form; the byte-identical Function round trip is what
# makes ``pool="process"`` indistinguishable from ``pool="thread"``
# (the determinism tier asserts artifact-level byte equality).  All
# *writes* — artifact store, in-memory cache, module mutation — stay in
# the parent's serial stage 3, so ordering is untouched.
# ---------------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _process_worker_init(module_payload: dict, options, snapshot: bytes,
                         store_root: Optional[str]) -> None:
    """Per-worker setup: rebuild the compile-side module and open the
    (read-only-use) artifact store once, not per task."""
    store = None
    if store_root:
        try:
            store = ArtifactStore(store_root,
                                  fault_plan=plan_from_options(options))
        except OSError:
            store = None
    _WORKER_STATE["module"] = module_from_dict(module_payload)
    _WORKER_STATE["options"] = options
    _WORKER_STATE["snapshot"] = snapshot
    _WORKER_STATE["store"] = store


def _process_specialize(item: tuple):
    """One stage-1 task in a worker: artifact load / fresh specialize.

    Mirrors ``CompilationEngine._make_specialize_task`` exactly; the
    residual ships back serialized with its specialization stats.  A
    residual the encoding cannot express returns the ``"raw"`` marker
    and the parent recomputes that one plan locally; a task that raises
    (including injected ``specialize``/``verify`` faults) returns the
    ``"error"`` marker with the message — a worker never lets an
    exception escape, because one poisoned task must fail one request,
    not the whole pool.
    """
    request_data, key, name = item
    module = _WORKER_STATE["module"]
    options = _WORKER_STATE["options"]
    snapshot = _WORKER_STATE["snapshot"]
    store = _WORKER_STATE["store"]
    fault = plan_from_options(options)
    begin = time.perf_counter()
    artifact_status = MISS
    func: Optional[Function] = None
    try:
        if store is not None:
            func, artifact_status = store.load_residual(
                key, name, key[0], key[2])
            if func is not None:
                try:
                    verify_function(func, module)
                except VerificationError:
                    func, artifact_status = None, INVALID
        if func is None:
            request = request_from_dict(request_data)
            if fault is not None:
                fault.check("specialize")
            func = specialize(module, request, options, snapshot)
            if fault is not None:
                fault.check("verify")
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}", artifact_status,
                time.perf_counter() - begin)
    stats = getattr(func, "_weval_stats", None)
    try:
        payload = function_to_dict(func)
    except SerializationError:
        return "raw", None, artifact_status, time.perf_counter() - begin
    return payload, stats, artifact_status, time.perf_counter() - begin


@dataclasses.dataclass
class EngineResult:
    """Outcome of one request in a batch, in request order.

    Exactly one of ``cache_hit`` / ``artifact_hit`` / ``specialized`` is
    true for the request that *produced* the function; a duplicate
    request in the same batch reuses the producer's *residual* (one
    specialize run) and counts as a cache hit — backend source is still
    emitted per request, because the emitted code embeds the unique
    function name in its trap messages.  ``pyfunc``/``py_source`` are
    populated when the engine's backend is ``"py"``;
    ``fallback_reason`` records a residual the emitter cannot express
    (it stays on the IR VM).

    ``error`` is the fault-containment surface: an exception anywhere in
    this request's pipeline (specialize, verify, emit, a crashed pool
    worker) fails *this result only* — ``function`` is ``None``, nothing
    was cached or stored for it, and the rest of the batch is
    unaffected.  Callers must treat an errored result as "stay on the
    current tier"; the tiering controller turns it into quarantine.
    """

    request: SpecializationRequest
    function: Optional[Function]
    cache_hit: bool = False
    artifact_hit: bool = False
    specialized: bool = False
    py_source: Optional[str] = None
    pyfunc: Optional[Callable] = None
    fallback_reason: Optional[str] = None
    error: Optional[str] = None


class _TaskFailure:
    """Marker a pure-stage task returns in place of its result when it
    raised: the exception is contained at the task boundary so pool
    workers stay healthy and sibling requests complete normally."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


class _Plan:
    """Mutable per-request bookkeeping while a batch is in flight."""

    __slots__ = ("request", "name", "key", "func", "cache_hit",
                 "artifact_hit", "specialized", "dup_of",
                 "py_source", "py_fallback", "py_code", "py_from_store",
                 "error")

    def __init__(self, request: SpecializationRequest, name: str,
                 key: tuple):
        self.request = request
        self.name = name
        self.key = key
        self.func: Optional[Function] = None
        self.cache_hit = False
        self.artifact_hit = False
        self.specialized = False
        self.dup_of: Optional[int] = None
        self.py_source: Optional[str] = None
        self.py_fallback: Optional[str] = None
        self.py_code: Optional[object] = None
        self.py_from_store = False
        self.error: Optional[str] = None


class CompilationEngine:
    """Batch compiler for specialization requests (specialize → opt →
    verify → emit) with parallel pure stages and tiered caching."""

    def __init__(self, module: Module,
                 options: Optional[SpecializeOptions] = None,
                 cache: Optional[SpecializationCache] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None):
        self.module = module
        self.options = options or SpecializeOptions()
        self.cache = cache
        self.jobs = max(1, jobs if jobs is not None else self.options.jobs)
        self.pool = self.options.pool
        self.fault_plan = plan_from_options(self.options)
        root = cache_dir if cache_dir is not None else self.options.cache_dir
        self.store: Optional[ArtifactStore] = None
        if root:
            try:
                self.store = ArtifactStore(root, fault_plan=self.fault_plan)
            except OSError:
                # An uncreatable cache directory (read-only image, path
                # collision) degrades to "no cache", never to a failed
                # build — matching the store's own write behavior.
                self.store = None
        self.stats = EngineStats()
        self._fingerprints: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Worker pool.
    # ------------------------------------------------------------------
    def _run_all(self, thunks: List[Callable[[], object]]) -> List[object]:
        """Run pure thunks, in a pool when configured; results come back
        in submission order regardless of completion order."""
        if self.jobs == 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        pool = ThreadPoolExecutor(max_workers=min(self.jobs, len(thunks)))
        try:
            futures = [pool.submit(thunk) for thunk in thunks]
            return [future.result() for future in futures]
        finally:
            # Tear the executor down on *every* exit path, and cancel
            # queued thunks when one result raised — without
            # cancel_futures a failing batch used to block here until
            # every already-queued sibling ran to completion.
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # Batch compilation.
    # ------------------------------------------------------------------
    def compile_batch(self, requests: List[SpecializationRequest],
                      snapshot: Optional[bytes] = None
                      ) -> List[EngineResult]:
        """Compile a batch of requests against one heap snapshot.

        Returns one :class:`EngineResult` per request, in request order.
        The engine does not mutate the module; the caller applies the
        functions (``module.add_function`` + table registration + heap
        patching) in this order — see
        :class:`~repro.core.snapshot.SnapshotCompiler`.
        """
        start = time.perf_counter()
        snapshot = bytes(snapshot if snapshot is not None
                         else self.module.memory_init)
        stats = self.stats
        stats.requests += len(requests)
        stats.inline_requests += sum(
            1 for r in requests if getattr(r, "inline_plan", ()))
        stats.jobs = max(stats.jobs, self.jobs)
        want_py = self.options.backend == "py"

        # Stage 0 (serial): keys, in-memory probes, in-batch dedup.
        plans: List[_Plan] = []
        first_of_key: Dict[tuple, int] = {}
        for request in requests:
            plan = _Plan(request, request.name(),
                         request_key(self.module, request, self.options,
                                     snapshot, self._fingerprints))
            owner = first_of_key.get(plan.key)
            if owner is not None:
                # Same key seen earlier in this batch: reuse its output
                # (the serial flow would have hit the cache here).
                plan.dup_of = owner
            else:
                if self.cache is not None:
                    plan.func = self.cache.lookup(plan.key, plan.name)
                    plan.cache_hit = plan.func is not None
                if plan.func is None:
                    first_of_key[plan.key] = len(plans)
            plans.append(plan)

        # Stage 1 (parallel, pure): artifact load / fresh specialize for
        # every first-occurrence miss.
        misses = [plan for plan in plans
                  if plan.func is None and plan.dup_of is None]
        outcomes = self._specialize_misses(misses, snapshot)
        for plan, (func, artifact_status, seconds) in zip(misses, outcomes):
            if isinstance(func, _TaskFailure):
                # Contained task crash: fail this request, leave every
                # sibling (and the caches) untouched.
                plan.error = func.message
            else:
                plan.func = func
                plan.artifact_hit = artifact_status == HIT
                plan.specialized = not plan.artifact_hit
            if artifact_status == INVALID:
                stats.artifact_invalid += 1
            stats.specialize_seconds += seconds

        # Resolve duplicates (serial): clone the producer's function.
        for plan in plans:
            if plan.dup_of is not None:
                producer = plans[plan.dup_of]
                if producer.error is not None:
                    # The producer crashed; its duplicates share the
                    # failure (there is no residual to clone).
                    plan.error = producer.error
                    continue
                plan.func = clone_function(producer.func, plan.name)
                plan.cache_hit = True
                if self.cache is not None:
                    # Accounting parity with the serial flow, where the
                    # producer's insert happened before this probe.
                    self.cache.hits += 1

        # Stage 2 (parallel, pure): backend emission for every function.
        if want_py:
            emit_plans = [plan for plan in plans if plan.error is None]
            emitted = self._run_all(
                [self._make_emit_task(plan) for plan in emit_plans])
            for plan, (source, fallback, code, status, seconds) in zip(
                    emit_plans, emitted):
                if isinstance(source, _TaskFailure):
                    plan.error = source.message
                else:
                    plan.py_source = source
                    plan.py_fallback = fallback
                    plan.py_code = code
                    plan.py_from_store = status == HIT
                if status == INVALID:
                    stats.artifact_invalid += 1
                stats.emit_seconds += seconds

        # Stage 3 (serial, request order): cache/artifact writes and
        # ``exec`` of emitted source.  Errored plans write nothing — a
        # crashed stage must not leave partial state in the caches.
        results = []
        for plan in plans:
            if plan.error is not None:
                stats.requests_failed += 1
            elif plan.cache_hit:
                stats.cache_hits += 1
                if self.store is not None and plan.dup_of is None and \
                        not self.store.has_residual(plan.key):
                    # A warm in-memory cache combined with a fresh
                    # cache_dir must still leave a complete store behind
                    # (the warm-start-on-disk contract).
                    ir_text = print_function(plan.func, order="id")
                    if self.store.store_residual(
                            plan.key, plan.func, ir_text,
                            plan.key[0], plan.key[2]):
                        stats.artifacts_written += 1
            elif plan.artifact_hit:
                stats.artifact_hits += 1
                if self.cache is not None:
                    self.cache.insert(plan.key, plan.func)
            elif plan.specialized:
                stats.functions_specialized += 1
                if self.cache is not None:
                    self.cache.insert(plan.key, plan.func)
                if self.store is not None:
                    ir_text = print_function(plan.func, order="id")
                    if self.store.store_residual(
                            plan.key, plan.func, ir_text,
                            plan.key[0], plan.key[2]):
                        stats.artifacts_written += 1
            results.append(self._finalize(plan))
        if self.store is not None:
            health = self.store.health()
            stats.store_write_failures = health["write_failures"]
            stats.store_degraded = 1 if health["degraded"] else 0
        stats.wall_seconds += time.perf_counter() - start
        return results

    def _specialize_misses(self, misses: List[_Plan], snapshot: bytes
                           ) -> List[Tuple[Function, str, float]]:
        """Run stage 1 on the configured pool flavor.

        The process pool needs every payload to serialize; a module or
        request the encoding cannot express falls back to the thread
        path wholesale (correctness first — both paths produce
        bit-identical residuals).
        """
        if self.pool == "process" and self.jobs > 1 and len(misses) > 1:
            outcomes = self._process_pool_specialize(misses, snapshot)
            if outcomes is not None:
                return outcomes
        return self._run_all(
            [self._make_specialize_task(plan, snapshot) for plan in misses])

    def _process_pool_specialize(self, misses: List[_Plan],
                                 snapshot: bytes
                                 ) -> Optional[List[Tuple[Function, str,
                                                          float]]]:
        """Stage 1 on a :class:`ProcessPoolExecutor`; ``None`` means
        "use the thread path" (unserializable payloads, or a pool the
        engine just degraded away from).

        Pool-level failure containment: a broken pool (a worker
        segfaulted or was OOM-killed — surfaced by ``concurrent.futures``
        as :class:`BrokenProcessPool` at the batch boundary) is retried
        once with a fresh pool, because one dead worker is usually
        transient.  A second consecutive failure flips ``self.pool`` to
        ``"thread"`` for the rest of the session: threads cannot crash
        independently of the parent, so tier-up keeps working at
        in-process speed instead of failing every batch.
        """
        try:
            module_payload = module_to_dict(self.module)
            items = [(request_to_dict(plan.request), plan.key, plan.name)
                     for plan in misses]
        except SerializationError:
            return None
        store_root = self.store.root if self.store is not None else None
        fault = self.fault_plan
        failures = 0
        while True:
            pool = None
            try:
                if fault is not None and fault.fires("pool_worker"):
                    raise BrokenProcessPool(
                        "injected fault at seam 'pool_worker'")
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(misses)),
                    initializer=_process_worker_init,
                    initargs=(module_payload, self.options, snapshot,
                              store_root))
                shipped = list(pool.map(_process_specialize, items))
                break
            except (BrokenProcessPool, OSError):
                failures += 1
                if failures == 1:
                    self.stats.pool_rebuilds += 1
                    continue
                self.pool = "thread"
                self.stats.pool_degradations += 1
                return None
            finally:
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)
        outcomes = []
        for plan, (payload, spec_stats, status, seconds) in zip(misses,
                                                                shipped):
            if payload == "error":
                outcomes.append((_TaskFailure(spec_stats), status, seconds))
                continue
            if payload == "raw":
                # The worker specialized fine but could not serialize
                # the residual back; recompute this one plan locally.
                outcomes.append(
                    self._make_specialize_task(plan, snapshot)())
                continue
            func = function_from_dict(payload, name=plan.name)
            if spec_stats is not None:
                func._weval_stats = spec_stats
            outcomes.append((func, status, seconds))
        return outcomes

    def _make_specialize_task(self, plan: _Plan, snapshot: bytes):
        fault = self.fault_plan

        def task() -> Tuple[object, str, float]:
            begin = time.perf_counter()
            artifact_status = MISS
            func: Optional[Function] = None
            try:
                if self.store is not None:
                    func, artifact_status = self.store.load_residual(
                        plan.key, plan.name, plan.key[0], plan.key[2])
                    if func is not None:
                        try:
                            # Disk artifacts sit outside the process's
                            # trust boundary: verify before use, and
                            # treat a rejection exactly like corruption.
                            verify_function(func, self.module)
                        except VerificationError:
                            func, artifact_status = None, INVALID
                if func is None:
                    if fault is not None:
                        fault.check("specialize")
                    func = specialize(self.module, plan.request,
                                      self.options, snapshot)
                    if fault is not None:
                        fault.check("verify")
            except Exception as exc:
                # Contain any stage crash at the task boundary: the
                # marker fails this one request in stage 3; the pool and
                # sibling tasks are unaffected.
                return (_TaskFailure(f"{type(exc).__name__}: {exc}"),
                        artifact_status, time.perf_counter() - begin)
            return func, artifact_status, time.perf_counter() - begin
        return task

    def _make_emit_task(self, plan: _Plan):
        def task():
            begin = time.perf_counter()
            try:
                source, fallback, code, status = self._emit_one(plan.func)
            except Exception as exc:
                return (_TaskFailure(f"{type(exc).__name__}: {exc}"),
                        None, None, MISS, time.perf_counter() - begin)
            return (source, fallback, code, status,
                    time.perf_counter() - begin)
        return task

    def _emit_one(self, func: Function
                  ) -> Tuple[Optional[str], Optional[str], Optional[object],
                             str]:
        """Emit (or warm-load) backend source for one residual function.

        Returns ``(source, fallback_reason, code, store_status)``.

        ``code`` is the tier-3½ rung (``options.codegen == "code"``): the
        ``compile()``d code object for ``source``, either unmarshaled
        from the artifact store (warm start skips parse+compile
        entirely) or compiled here — i.e. inside the *parallel* emit
        stage — so the serial ``exec`` in :meth:`_finalize` only has to
        bind globals.  ``None`` means "compile from source as before";
        any marshal/interpreter skew in the store degrades to that
        silently.
        """
        from repro.backend import UnsupportedConstruct, emit_function_source
        mode = self.options.emit_mode
        want_code = self.options.codegen == "code"
        fp = None
        if self.store is not None:
            fp = residual_fingerprint(print_function(func, order="id"))
            cached, status = self.store.load_py_source(
                fp, mode, want_code=want_code)
            if cached is not None:
                return cached[0], cached[1], cached[2], status
        if self.fault_plan is not None:
            self.fault_plan.check("emit")
        try:
            source, _mode_used, _emitter = emit_function_source(
                func, self.module, mode=mode)
            fallback = None
        except UnsupportedConstruct as exc:
            source, fallback = None, str(exc)
        code = code_bytes = None
        if want_code and source is not None:
            code, code_bytes = self._precompile(func.name, source)
        if self.store is not None:
            self.store.store_py_source(fp, source, fallback, mode,
                                       code_bytes=code_bytes)
        return source, fallback, code, MISS

    @staticmethod
    def _precompile(name: str, source: str) -> Tuple[Optional[object],
                                                     Optional[bytes]]:
        """``compile()`` emitted source ahead of the serial stage.

        The filename matches ``compile_python_source`` exactly so
        tracebacks are identical on both paths.  A source that does not
        compile returns ``(None, None)`` — the serial stage recompiles
        and converts the failure into a backend fallback as before.
        """
        try:
            code = compile(source, f"<pybackend:{name}>", "exec")
            return code, marshal.dumps(code)
        except Exception:
            return None, None

    def _finalize(self, plan: _Plan) -> EngineResult:
        """Turn a finished plan into a result; ``exec`` emitted source
        (serial — callable identity is created in request order)."""
        from repro.backend import UnsupportedConstruct, compile_python_source
        stats = self.stats
        pyfunc = None
        if plan.py_source is not None:
            try:
                pyfunc = compile_python_source(plan.name, plan.py_source,
                                               code=plan.py_code)
            except UnsupportedConstruct as exc:
                plan.py_source, plan.py_fallback = None, str(exc)
            except Exception as exc:
                # ``exec`` of emitted source is deterministic for a given
                # residual, so an unexpected crash here is a permanent
                # emitter bug for this function: record a fallback (tier
                # 1 keeps serving it) instead of failing the request.
                plan.py_source = None
                plan.py_fallback = f"{type(exc).__name__}: {exc}"
        if plan.py_source is not None or plan.py_fallback is not None:
            if plan.py_from_store:
                stats.backend_source_hits += 1
                if plan.py_code is not None:
                    stats.backend_code_hits += 1
            else:
                stats.backend_emitted += 1
            if plan.py_fallback is not None:
                stats.backend_fallbacks += 1
        return EngineResult(
            request=plan.request,
            function=plan.func,
            cache_hit=plan.cache_hit,
            artifact_hit=plan.artifact_hit,
            specialized=plan.specialized,
            py_source=plan.py_source,
            pyfunc=pyfunc,
            fallback_reason=plan.py_fallback,
            error=plan.error,
        )

    # ------------------------------------------------------------------
    # Backend-only compilation (tier-up of functions already in the
    # module, e.g. ``SnapshotCompiler.compile_backend`` after a
    # ``backend="vm"`` specialization run).
    # ------------------------------------------------------------------
    def compile_backend_functions(
            self, names: List[str]
            ) -> Tuple[Dict[str, Callable], List[Tuple[str, str]]]:
        """Emit + compile module functions to Python callables.

        Returns ``(compiled, fallbacks)`` like
        :func:`repro.backend.compile_functions`, but with parallel
        emission and artifact-store reuse.
        """
        from repro.backend import UnsupportedConstruct, compile_python_source
        start = time.perf_counter()
        stats = self.stats
        stats.jobs = max(stats.jobs, self.jobs)
        compiled: Dict[str, Callable] = {}
        fallbacks: List[Tuple[str, str]] = []
        todo: List[str] = []
        for name in names:
            if self.module.functions.get(name) is None:
                fallbacks.append((name, "not an IR function"))
            else:
                todo.append(name)
        outcomes = self._run_all([
            self._make_named_emit_task(name) for name in todo])
        for name, (source, fallback, code, status,
                   seconds) in zip(todo, outcomes):
            stats.emit_seconds += seconds
            if isinstance(source, _TaskFailure):
                # Contained emit crash.  Deliberately *neither* compiled
                # nor a fallback: a fallback is the permanent
                # "emitter cannot express this" verdict, while a crash
                # is transient — leaving the name out of both tells the
                # tiering controller to quarantine and retry.
                stats.requests_failed += 1
                continue
            if source is not None:
                try:
                    compiled[name] = compile_python_source(name, source,
                                                           code=code)
                except UnsupportedConstruct as exc:
                    source, fallback = None, str(exc)
                except Exception as exc:
                    source, fallback = None, f"{type(exc).__name__}: {exc}"
            if source is None:
                fallbacks.append((name, fallback))
            if status == HIT:
                stats.backend_source_hits += 1
                if code is not None:
                    stats.backend_code_hits += 1
            else:
                stats.backend_emitted += 1
            if status == INVALID:
                stats.artifact_invalid += 1
        stats.backend_fallbacks += len(fallbacks)
        stats.wall_seconds += time.perf_counter() - start
        return compiled, fallbacks

    def _make_named_emit_task(self, name: str):
        def task():
            begin = time.perf_counter()
            try:
                source, fallback, code, status = self._emit_one(
                    self.module.functions[name])
            except Exception as exc:
                return (_TaskFailure(f"{type(exc).__name__}: {exc}"),
                        None, None, MISS, time.perf_counter() - begin)
            return (source, fallback, code, status,
                    time.perf_counter() - begin)
        return task
