"""Seeded, deterministic fault injection for the compile/serve seams.

The tier-up contract this repo grew PR over PR — tier 0 is always a
correct fallback, so compilation is *advisory* — is only as strong as
its failure paths.  The artifact and profile stores were already
paranoid about **read** corruption (anything torn, skewed, or mangled
silently recompiles / reads as no heat), but nothing systematically
exercised a compile-stage crash, a broken worker pool, or a store
*write* failure while a live guest request was on the stack.  This
module is the adversary that proves those paths: a :class:`FaultPlan`
injects failures at named seams of the pipeline, deterministically,
from a seed.

Seams (:data:`SEAMS`):

``specialize``
    Raises :class:`FaultInjected` inside the engine's stage-1 task,
    just before the weval transform runs — a compiler crash at a call
    boundary.
``verify``
    Raises after specialization, where the residual-verification stage
    sits — a verifier crash (distinct from a *rejection*, which is the
    already-tested silent-recompile path).
``emit``
    Raises inside backend emission (both the batched emit stage and
    ``compile_backend_functions``).
``store_read``
    The artifact store treats the read as corrupt: the load reports
    ``INVALID`` and the engine recompiles — the read seam never raises
    by construction.
``store_write``
    The artifact store treats the write as failed (full disk, revoked
    permissions); repeated failures flip the store into memory-only
    degraded mode (:mod:`repro.pipeline.artifacts`).
``pool_worker``
    The engine's process pool raises
    :class:`concurrent.futures.process.BrokenProcessPool` at the batch
    boundary — the engine rebuilds the pool once, then degrades to
    threads for the session.
``heat_merge``
    The profile store's merge write fails; the publish high-water marks
    must retain the delta for the next attempt.

**Determinism.**  Each seam keeps its own consult counter and its own
``random.Random`` seeded from ``(seed, seam)``; the Nth consult of a
seam fires (or not) identically across runs for the same plan
configuration and per-seam consult order.  The chaos tier therefore
runs single-job engines (``jobs=1``) so consult order is the program
order; with a worker pool the per-seam *rate* still holds but the
exact firing pattern may interleave differently.

A plan is consulted only where one is installed
(``SpecializeOptions(fault_plan=...)``); with no plan the containment
hooks are a single ``is not None`` test — the no-plan execution stays
byte-identical to a build without this module (``bench_faults.py``
guards the wall-clock side of that claim).

Plans are picklable (the process-pool engine ships options to its
workers); the internal lock is dropped and recreated across the
boundary, so each worker advances an independent copy of the per-seam
state — per-process determinism, which is what the cross-process tests
rely on.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, Optional

SEAMS = ("specialize", "verify", "emit", "store_read", "store_write",
         "pool_worker", "heat_merge")


class FaultInjected(Exception):
    """An injected failure from a :class:`FaultPlan` seam.

    Deliberately a plain ``Exception`` subclass: the containment layer
    must survive *any* exception type, so the injector uses the most
    generic class the policy is allowed to catch.
    """


class FaultPlan:
    """A deterministic schedule of failures over the pipeline seams.

    ``rates`` maps seam name to a firing probability per consult, drawn
    from a per-seam seeded RNG; ``at`` maps seam name to explicit
    0-based consult indices that fire regardless of rate (the precise
    single-shot schedules the regression tests use).  ``max_fires``
    caps the total number of injected faults across all seams.

    :meth:`disarm` stops all firing (consult counters keep advancing,
    so a later :meth:`arm` resumes the same deterministic sequence) —
    the chaos tier uses this to prove a quarantined function re-promotes
    once the injection stops.
    """

    def __init__(self, seed: int = 0,
                 rates: Optional[Dict[str, float]] = None,
                 at: Optional[Dict[str, Iterable[int]]] = None,
                 max_fires: Optional[int] = None):
        for seam in list(rates or ()) + list(at or ()):
            if seam not in SEAMS:
                raise ValueError(f"unknown fault seam {seam!r}")
        self.seed = seed
        self.rates = dict(rates or {})
        self.at = {seam: frozenset(indices)
                   for seam, indices in (at or {}).items()}
        self.max_fires = max_fires
        self.armed = True
        self.consults: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._lock = threading.Lock()

    @classmethod
    def once(cls, seam: str, index: int = 0) -> "FaultPlan":
        """A plan that fires exactly one fault: consult ``index`` of
        ``seam``."""
        return cls(at={seam: (index,)})

    @classmethod
    def always(cls, *seams: str) -> "FaultPlan":
        """A plan that fires on every consult of the given seams (the
        persistent-outage schedules: full disk, dead pool)."""
        return cls(rates={seam: 1.0 for seam in seams})

    # ------------------------------------------------------------------
    # Consultation.
    # ------------------------------------------------------------------
    def _rng(self, seam: str) -> random.Random:
        rng = self._rngs.get(seam)
        if rng is None:
            rng = self._rngs[seam] = random.Random(f"{self.seed}/{seam}")
        return rng

    def fires(self, seam: str) -> bool:
        """Advance ``seam``'s consult counter and decide whether this
        consult fails.  Non-raising seams (store read/write, heat merge)
        use this directly; exception seams go through :meth:`check`."""
        with self._lock:
            index = self.consults.get(seam, 0)
            self.consults[seam] = index + 1
            fire = index in self.at.get(seam, ())
            rate = self.rates.get(seam, 0.0)
            if rate and self._rng(seam).random() < rate:
                fire = True
            if fire and self.armed and (
                    self.max_fires is None
                    or self.total_fired() < self.max_fires):
                self.fired[seam] = self.fired.get(seam, 0) + 1
                return True
            return False

    def check(self, seam: str) -> None:
        """Raise :class:`FaultInjected` when this consult of ``seam``
        fires."""
        if self.fires(seam):
            raise FaultInjected(
                f"injected fault at seam {seam!r} "
                f"(consult {self.consults.get(seam, 1) - 1})")

    def total_fired(self) -> int:
        return sum(self.fired.values())

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        """Stop injecting (counters keep advancing deterministically)."""
        self.armed = False

    # ------------------------------------------------------------------
    # Pickling (the process-pool engine ships options to workers).
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        spec = {seam: rate for seam, rate in self.rates.items()}
        spec.update({seam: sorted(idx) for seam, idx in self.at.items()})
        return (f"FaultPlan(seed={self.seed}, {spec}, "
                f"fired={self.total_fired()}, armed={self.armed})")


def plan_from_options(options) -> Optional[FaultPlan]:
    """The plan installed on a :class:`SpecializeOptions`, if any (the
    attribute-style accessor keeps older pickled options loadable)."""
    return getattr(options, "fault_plan", None) if options is not None \
        else None
