"""Per-site direct call linking for tier-2 compiled code (PR 10).

Steady-state compiled->compiled guest calls used to re-enter
``vm.call``/``vm.call_table`` on every call: a name-resolution dict
lookup, an imports-membership probe, the tier-hook redirect probe, the
deopt-fallback probe, list-boxing of the arguments, and per-call depth
bookkeeping — all paid forever, even after every participant reached
tier 2.  The :class:`CallLinkTable` replaces that boundary with
per-site *link slots*, the classic patchable-call-site design from
tiered VMs:

* every emitted function binds its slot list once per invocation
  (``_lk = vm._link_slots.get(name)``) and calls through
  ``_lk[i](vm, v3, v5)`` — positional, unboxed;
* a **direct** slot starts as a slow bridge closure that delegates to
  ``vm.call`` and, after the call returns, probes whether the callee is
  a *steady* tier-2 entry point (compiled, fixed arity matching the
  site, no registered deopt fallback, not redirected by the tier hook,
  not an import).  If so it patches the slot to the callee's raw
  callable: from then on the site costs ~one Python call;
* an **indirect** (``call_indirect``) slot is a 3-element monomorphic
  inline cache ``[expected_table_index, raw_target, miss_bridge]``
  consulted inline by the emitted code; the miss bridge delegates to
  ``vm.call_table`` and installs the first steadily-linkable target.

Soundness rests on a single rule: *every* event that can change what a
guest name dispatches to — tier-2 install, demotion, per-site
demotion, quarantine/blacklist, storm pinning, ``unregister``,
endpoint churn, fleet heat adoption — must call :meth:`invalidate`,
which resets every slot back to its bridge in place (slot lists keep
their identity, so in-flight frames holding ``_lk`` observe the reset
immediately).  ``VM.install_compiled`` invalidates unconditionally,
which covers every controller install path; the
:class:`~repro.pipeline.tiering.TieringController` additionally bumps
the table on the non-install events (register/unregister, pinning,
blacklist, demotion).  Because bridges go through the full
``vm.call``/``vm.call_table`` path and a raw link is taken only when
that path would have been a straight ``self.compiled[name](self,
*args)``, fuel, traps, prints, and deopt behavior are bit-identical
with linking on or off.

The table is deliberately VM-local (one per :class:`~repro.vm.machine.VM`)
and import-light: ``vm/machine.py`` instantiates it lazily so the
``pipeline`` package and the VM keep their one-way import order.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

__all__ = ["CallLinkTable"]

# Descriptor shapes embedded by the emitter (cache-stable: derived only
# from the residual function body):
#   ("c", callee_name, argc)  direct call site
#   ("t", argc)               indirect (call_indirect) site
Descriptor = Tuple


class CallLinkTable:
    """Owns every link slot of one VM; see the module docstring."""

    def __init__(self, vm, enabled: bool = None) -> None:
        self.vm = vm
        if enabled is None:
            enabled = os.environ.get("REPRO_LINK_CALLS", "1") != "0"
        #: When False, bridges never patch: every site stays on the
        #: slow ``vm.call``/``vm.call_table`` path forever.  Flipping
        #: this at runtime requires an ``invalidate()`` to drop links
        #: that were already made.
        self.enabled = enabled
        #: Bumped on every invalidation; observability + test hook.
        self.epoch = 0
        #: Direct slots patched to a raw callable (lifetime total).
        self.links_made = 0
        #: Indirect inline caches filled (lifetime total).
        self.ic_links_made = 0
        # emit-name -> slot list (identity-stable: emitted code binds
        # the list once per invocation and indexes into it).
        self._functions: Dict[str, List] = {}
        # emit-name -> descriptor tuple the slots were built from.
        self._descs: Dict[str, Sequence[Descriptor]] = {}

    # -- binding -------------------------------------------------------

    def bind(self, name: str, descs: Sequence[Descriptor]) -> List:
        """Build (or return) the slot list for emitted function *name*.

        Called from the emitted preamble the first time a compiled
        function runs on this VM; idempotent thereafter.
        """
        slots = self._functions.get(name)
        if slots is not None:
            return slots
        slots = []
        for i, desc in enumerate(descs):
            if desc[0] == "c":
                slots.append(self._make_bridge(name, i, desc[1], desc[2]))
            else:
                slots.append(self._make_ic(name, i, desc[1]))
        self._descs[name] = tuple(descs)
        self._functions[name] = slots
        return slots

    def discard(self, name: str) -> None:
        """Forget *name*'s slots (the compiled entry was replaced by a
        different function reusing the name; its sites may differ)."""
        slots = self._functions.pop(name, None)
        descs = self._descs.pop(name, None)
        if slots is None:
            return
        # Reset in place too: in-flight frames may still hold the list.
        for i, desc in enumerate(descs):
            if desc[0] == "c":
                slots[i] = self._make_bridge(name, i, desc[1], desc[2])
            else:
                ic = slots[i]
                ic[0] = -1
                ic[1] = None

    # -- invalidation --------------------------------------------------

    def invalidate(self) -> None:
        """Reset every slot to its bridge, in place.

        Called on every dispatch-changing event.  O(total sites); the
        site population is small (one entry per call instruction in
        compiled code) and events are rare by construction, so a full
        reset is cheaper to reason about than per-callee tracking.
        """
        self.epoch += 1
        for name, slots in self._functions.items():
            descs = self._descs[name]
            for i, desc in enumerate(descs):
                if desc[0] == "c":
                    slots[i] = self._make_bridge(name, i, desc[1], desc[2])
                else:
                    ic = slots[i]
                    ic[0] = -1
                    ic[1] = None

    def linked_count(self) -> int:
        """Slots currently patched past their bridge (tests/benches)."""
        count = 0
        for name, slots in self._functions.items():
            for desc, slot in zip(self._descs[name], slots):
                if desc[0] == "c":
                    if not hasattr(slot, "_link_bridge"):
                        count += 1
                elif slot[0] != -1:
                    count += 1
        return count

    # -- linkability ---------------------------------------------------

    def _probe(self, callee: str, argc: int):
        """Return the raw callable for *callee* iff a raw positional
        call is observably identical to ``vm.call(callee, args)``."""
        if not self.enabled:
            return None
        vm = self.vm
        # Imports stay bridged: host calls charge host_calls and use
        # the host-function convention.
        if callee in vm.module.imports:
            return None
        # Never link around an active tier hook: the controller may
        # redirect this generic name (or demote back to it).
        if vm.tier_hook is not None and callee in vm.tier_generics:
            return None
        # Speculative entries carry a guard fallback; those calls must
        # keep flowing through _call_guarded.
        if vm.deopt_fallbacks and callee in vm.deopt_fallbacks:
            return None
        fn = vm.compiled.get(callee)
        if fn is None or getattr(fn, "_nparams", -1) != argc:
            return None
        return fn

    # -- slot construction ---------------------------------------------

    def _make_bridge(self, owner: str, index: int, callee: str, argc: int):
        """Slow-path closure for a direct site: full ``vm.call``, then
        self-patch if the callee has become steadily linkable."""
        table = self

        def bridge(vm, *args):
            result = vm.call(callee, args)
            fn = table._probe(callee, argc)
            if fn is not None:
                slots = table._functions.get(owner)
                # Patch only if this exact bridge still occupies the
                # slot — an invalidation during the call installed a
                # fresh bridge whose next run will re-probe.
                if slots is not None and slots[index] is bridge:
                    slots[index] = fn
                    table.links_made += 1
            return result

        bridge._link_bridge = (callee, argc)
        return bridge

    def _make_ic(self, owner: str, index: int, argc: int):
        """Monomorphic inline cache for a ``call_indirect`` site:
        ``[expected_index, raw_target, miss_bridge]``.  The emitted code
        checks element 0 inline; misses call element 2."""
        table = self
        slot: List = [-1, None, None]

        def miss(vm, table_index, args):
            result = vm.call_table(table_index, args)
            if slot[0] == -1 and 0 < table_index < len(vm.module.table):
                callee = vm.module.table[table_index]
                if callee is not None:
                    fn = table._probe(callee, argc)
                    if fn is not None:
                        current = table._functions.get(owner)
                        if current is not None and current[index] is slot:
                            slot[1] = fn
                            slot[0] = table_index
                            table.ic_links_made += 1
            return result

        slot[2] = miss
        return slot
