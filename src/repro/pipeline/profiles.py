"""Persisted cross-process profiles: the fleet's shared hot-set.

The paper's deployment is a *fleet* of wevaled interpreter instances
serving one workload behind a load balancer.  PR 5's tiering controller
made each instance discover its own hot set dynamically, but that
discovery cost — threshold-many generic calls per hot function before
the first promotion — was paid again by every worker and again on every
restart, even though the artifact store already made the *compiles*
free.  This module persists the missing half of the warm-start story:
the profile itself.

A :class:`ProfileStore` keeps one heat file inside the shared
``cache_dir``::

    <cache_dir>/profiles/heat.json
    {"version": 1,
     "heat": {"<generic>@<key:#x>": {"calls": N, "backedges": N}, ...}}

Heat keys (:func:`profile_key`) combine the generic function name with
the guest identity key of the :class:`~repro.pipeline.tiering.TierEntry`
— a function-struct / proto / bytecode pointer that is deterministic
across processes for the same guest source, because the heap image is
built deterministically.  Workers **publish** their per-function
call/backedge counters as *deltas* (so heat accumulates across the
fleet instead of last-writer-wins), and a fresh worker **adopts** the
merged heat before serving: functions whose persisted score already
crosses the promotion threshold are compiled up front — hitting the
shared artifact store, so adoption costs loads, not compiles — and the
rest start with the fleet's counters instead of zero.

Concurrency discipline matches :mod:`repro.pipeline.artifacts`: the
read-modify-write merge runs under a :class:`_StoreLock` on the
``profiles/`` directory (its *own* lock file — profile merges never
contend with artifact writes), the publish itself is a temp-file +
``os.replace`` with reread validation, and loads are lock-free and
paranoid — a torn, corrupt, or version-skewed heat file reads as *no
heat* (the worker re-profiles, exactly as before this module existed),
never as an error.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.pipeline.artifacts import _StoreLock, atomic_write_json

# Bump on any change to the heat-file schema or key format.
PROFILE_VERSION = 1

# Consecutive merge-write failures after which the store degrades to
# memory-only heat (same rationale as the artifact store's
# DEGRADE_AFTER_WRITE_FAILURES: a run of failures means the disk is
# gone, and heat must keep accumulating for *this* process — adoption
# and promotion decisions stay warm — even if it can no longer be
# shared with the fleet).
DEGRADE_AFTER_MERGE_FAILURES = 3

# One heat record: plain ints only, so records merge by addition.
_FIELDS = ("calls", "backedges")

Heat = Dict[str, Dict[str, int]]


def profile_key(generic: str, key: int) -> str:
    """Stable cross-process identity of one tierable function."""
    return f"{generic}@{key:#x}"


class ProfileStore:
    """One heat file of merged fleet profiles, shared across processes.

    Like the artifact store, write failures degrade rather than raise:
    after :data:`DEGRADE_AFTER_MERGE_FAILURES` consecutive failed
    merges the store flips to memory-only heat — deltas accumulate in
    ``self._memory_heat`` and :meth:`load` folds them over whatever the
    disk last held, so this process's own adoption and promotion
    decisions stay warm while the fleet sharing is (visibly, via
    :meth:`health`) suspended.  ``fault_plan`` injects merge-write failures at the
    ``heat_merge`` seam (:mod:`repro.pipeline.faults`).
    """

    def __init__(self, root: str, fault_plan=None):
        self.root = root
        self.dir = os.path.join(root, "profiles")
        self.path = os.path.join(self.dir, "heat.json")
        os.makedirs(self.dir, exist_ok=True)
        self.fault_plan = fault_plan
        self.degraded = False
        self.merge_failures = 0
        self._consecutive_merge_failures = 0
        self._memory_heat: Heat = {}

    def health(self) -> dict:
        """The store's fault-containment state, for stats surfaces."""
        return {"degraded": self.degraded,
                "merge_failures": self.merge_failures,
                "memory_records": len(self._memory_heat)}

    # ------------------------------------------------------------------
    # Loads (lock-free, paranoid).
    # ------------------------------------------------------------------
    def load(self) -> Heat:
        """Read the merged heat map; any corruption reads as ``{}``.

        Memory-only deltas from degraded mode are folded over the disk
        state, so a degraded worker keeps seeing the heat it can no
        longer share.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            data = None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError):
            data = None
        heat = self._validate(data) if data is not None else {}
        for key, record in self._memory_heat.items():
            into = heat.setdefault(key, {field: 0 for field in _FIELDS})
            for field in _FIELDS:
                into[field] += record[field]
        return heat

    @staticmethod
    def _validate(data) -> Heat:
        """Extract the well-formed subset of a heat payload.

        Validation is per-record: one mangled record (a concurrent
        writer of a future schema, a hand edit) drops that record, not
        the whole fleet's heat.  A version skew or a non-dict payload
        drops everything — the schema owner is the version field.
        """
        if not isinstance(data, dict) or \
                data.get("version") != PROFILE_VERSION:
            return {}
        raw = data.get("heat")
        if not isinstance(raw, dict):
            return {}
        heat: Heat = {}
        for key, record in raw.items():
            if not isinstance(key, str) or not isinstance(record, dict):
                continue
            clean = {}
            for field in _FIELDS:
                value = record.get(field)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    clean = None
                    break
                clean[field] = value
            if clean is not None:
                heat[key] = clean
        return heat

    # ------------------------------------------------------------------
    # Merges (read-modify-write under the profiles lock).
    # ------------------------------------------------------------------
    def merge(self, deltas: Heat) -> bool:
        """Fold per-function counter *deltas* into the shared heat file.

        Runs read + add + publish under one advisory lock so concurrent
        workers' contributions accumulate instead of racing; the write
        is validated by reread (the merged heat must contain at least
        what this worker contributed).  Returns whether the merge
        landed; a failed merge loses only this delta — callers simply
        retain it and re-publish later.
        """
        deltas = {key: record for key, record in deltas.items()
                  if any(record.get(field) for field in _FIELDS)}
        if not deltas:
            return True
        if self.degraded:
            self._absorb(deltas)
            return True
        ok = False
        plan = self.fault_plan
        if plan is None or not plan.fires("heat_merge"):
            with _StoreLock(self.dir):
                merged = self.load()
                for key, record in deltas.items():
                    into = merged.setdefault(
                        key, {field: 0 for field in _FIELDS})
                    for field in _FIELDS:
                        into[field] += max(0, int(record.get(field, 0)))

                def stored_ok(path: str) -> bool:
                    reread = self.load()
                    return all(
                        key in reread and all(
                            reread[key][field] >= merged[key][field]
                            for field in _FIELDS)
                        for key in deltas)

                try:
                    ok = atomic_write_json(
                        self.path,
                        {"version": PROFILE_VERSION, "heat": merged},
                        stored_ok)
                except Exception:
                    # The write helper never raises by design; backstop
                    # for the unforeseen, so a merge can fail but never
                    # take the publishing request down.
                    ok = False
        if ok:
            self._consecutive_merge_failures = 0
            return True
        self.merge_failures += 1
        self._consecutive_merge_failures += 1
        if self._consecutive_merge_failures >= DEGRADE_AFTER_MERGE_FAILURES:
            self.degraded = True
            self._absorb(deltas)
            return True
        return False

    def _absorb(self, deltas: Heat) -> None:
        """Fold a delta into the degraded-mode memory heat."""
        for key, record in deltas.items():
            into = self._memory_heat.setdefault(
                key, {field: 0 for field in _FIELDS})
            for field in _FIELDS:
                into[field] += max(0, int(record.get(field, 0)))


def open_profile_store(cache_dir: Optional[str],
                       fault_plan=None) -> Optional[ProfileStore]:
    """Profile store for a cache dir, or ``None`` when persistence is
    off or the directory cannot be created (read-only image) — profile
    persistence must never fail a serving process."""
    if not cache_dir:
        return None
    try:
        return ProfileStore(cache_dir, fault_plan=fault_plan)
    except OSError:
        return None
