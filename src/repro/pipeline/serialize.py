"""Structured (de)serialization of IR functions for the artifact store.

The on-disk artifact cache persists residual functions across processes,
so the in-memory :class:`~repro.ir.function.Function` graph must survive
a round trip through JSON.  The encoding is deliberately dumb and
explicit — every block, instruction, and terminator keeps its ids — so a
deserialized function is structurally identical to the original (the
printed IR text is byte-identical, which the pipeline tests assert).

Robustness contract: :func:`function_from_dict` raises
:class:`SerializationError` on *any* malformed input (wrong shapes,
unknown terminator tags, bad types).  The artifact store treats that —
like a version or fingerprint mismatch — as a cache miss and silently
recompiles; a corrupt artifact must never crash a build or smuggle in a
mangled function.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Block, Function, Signature
from repro.ir.instructions import (
    BlockCall,
    BrIf,
    BrTable,
    Instr,
    Jump,
    Ret,
    Trap,
)
from repro.ir.types import Type


class SerializationError(Exception):
    """The payload does not encode a function (corrupt artifact)."""


def _ty_str(ty: Optional[Type]) -> Optional[str]:
    return None if ty is None else ty.value


def _ty_from(name: Optional[str]) -> Optional[Type]:
    if name is None:
        return None
    try:
        return Type(name)
    except ValueError as exc:
        raise SerializationError(f"bad type {name!r}") from exc


def _call_to_list(call: BlockCall) -> list:
    return [call.block, list(call.args)]


def _call_from_list(data) -> BlockCall:
    try:
        block, args = data
        return BlockCall(int(block), tuple(int(a) for a in args))
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"bad block call {data!r}") from exc


def _term_to_dict(term) -> Optional[dict]:
    if term is None:
        return None
    if isinstance(term, Jump):
        return {"t": "jump", "target": _call_to_list(term.target)}
    if isinstance(term, BrIf):
        return {"t": "br_if", "cond": term.cond,
                "if_true": _call_to_list(term.if_true),
                "if_false": _call_to_list(term.if_false)}
    if isinstance(term, BrTable):
        return {"t": "br_table", "index": term.index,
                "cases": [_call_to_list(c) for c in term.cases],
                "default": _call_to_list(term.default)}
    if isinstance(term, Ret):
        return {"t": "ret", "args": list(term.args)}
    if isinstance(term, Trap):
        return {"t": "trap", "message": term.message}
    raise SerializationError(f"not a terminator: {term!r}")


def _term_from_dict(data):
    if data is None:
        return None
    try:
        tag = data["t"]
        if tag == "jump":
            return Jump(_call_from_list(data["target"]))
        if tag == "br_if":
            return BrIf(int(data["cond"]),
                        _call_from_list(data["if_true"]),
                        _call_from_list(data["if_false"]))
        if tag == "br_table":
            return BrTable(int(data["index"]),
                           [_call_from_list(c) for c in data["cases"]],
                           _call_from_list(data["default"]))
        if tag == "ret":
            return Ret(tuple(int(a) for a in data["args"]))
        if tag == "trap":
            return Trap(str(data["message"]))
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad terminator {data!r}") from exc
    raise SerializationError(f"unknown terminator tag {data!r}")


def _imm_to_json(imm):
    """Immediates are ints, floats, strings, ``None`` — or one of the
    tagged forms: a :class:`Signature` (``call_indirect``) or a
    polymorphic guard tuple (``guard``)."""
    if isinstance(imm, Signature):
        return {"sig": [[t.value for t in imm.params],
                        [t.value for t in imm.results]]}
    if isinstance(imm, tuple):
        # Polymorphic guard imm: (site, values) or (site, values,
        # "resume"); JSON has no tuples, so tag it to reconstruct the
        # exact shape (the verifier insists on tuples).
        if len(imm) not in (2, 3):
            raise SerializationError(f"unencodable immediate {imm!r}")
        return {"guard": [imm[0], list(imm[1]), len(imm) == 3]}
    if imm is None or isinstance(imm, (int, float, str)):
        return imm
    raise SerializationError(f"unencodable immediate {imm!r}")


def _imm_from_json(data):
    if isinstance(data, dict):
        if "guard" in data:
            try:
                site, values, resume = data["guard"]
                imm = (int(site), tuple(int(v) for v in values))
                return imm + ("resume",) if resume else imm
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(f"bad immediate {data!r}") from exc
        try:
            params, results = data["sig"]
            return Signature(tuple(_ty_from(t) for t in params),
                             tuple(_ty_from(t) for t in results))
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad immediate {data!r}") from exc
    if data is None or isinstance(data, (int, float, str)):
        return data
    raise SerializationError(f"bad immediate {data!r}")


def _instr_to_list(instr: Instr) -> list:
    return [instr.op, instr.result, list(instr.args),
            _imm_to_json(instr.imm), _ty_str(instr.result_type)]


def _instr_from_list(data) -> Instr:
    try:
        op, result, args, imm, ty = data
        return Instr(str(op),
                     None if result is None else int(result),
                     tuple(int(a) for a in args),
                     _imm_from_json(imm), _ty_from(ty))
    except SerializationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"bad instruction {data!r}") from exc


def function_to_dict(func: Function) -> dict:
    """Encode a function as a JSON-compatible dict."""
    return {
        "name": func.name,
        "sig": {"params": [t.value for t in func.sig.params],
                "results": [t.value for t in func.sig.results]},
        "entry": func.entry,
        "next_value": func._next_value,
        "next_block": func._next_block,
        "value_types": {str(v): t.value
                        for v, t in func.value_types.items()},
        "blocks": [
            {"id": block.id,
             "params": [[v, t.value] for v, t in block.params],
             "instrs": [_instr_to_list(i) for i in block.instrs],
             "terminator": _term_to_dict(block.terminator)}
            for block in func.blocks.values()
        ],
    }


def function_from_dict(data: dict,
                       name: Optional[str] = None) -> Function:
    """Decode a function; raises :class:`SerializationError` on any
    malformed payload.  ``name`` overrides the stored name (artifacts are
    keyed on request data, not on the per-module unique name)."""
    try:
        sig = Signature(tuple(_ty_from(t) for t in data["sig"]["params"]),
                        tuple(_ty_from(t) for t in data["sig"]["results"]))
        func = Function(name or str(data["name"]), sig)
        func.entry = None if data["entry"] is None else int(data["entry"])
        func._next_value = int(data["next_value"])
        func._next_block = int(data["next_block"])
        func.value_types = {int(v): _ty_from(t)
                            for v, t in data["value_types"].items()}
        for bdata in data["blocks"]:
            block = Block(int(bdata["id"]),
                          [(int(v), _ty_from(t))
                           for v, t in bdata["params"]],
                          [_instr_from_list(i) for i in bdata["instrs"]],
                          _term_from_dict(bdata["terminator"]))
            if block.id in func.blocks:
                # Last-write-wins here would silently decode a
                # *different* program from a poisoned artifact; the
                # contract is strict: corrupt reads as invalid.
                raise SerializationError(
                    f"duplicate block id {block.id}")
            func.blocks[block.id] = block
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializationError(f"malformed function payload: {exc}") \
            from exc
    if func.entry is not None and func.entry not in func.blocks:
        raise SerializationError(f"entry block{func.entry} missing")
    return func


# ---------------------------------------------------------------------------
# Specialization requests (process-pool workers receive work as JSON).
# ---------------------------------------------------------------------------

def request_to_dict(request) -> dict:
    """Encode a :class:`~repro.core.request.SpecializationRequest`.

    Argument modes are tagged dicts so a decoder can never confuse a
    constant promise with a speculation — the two have different
    correctness obligations (a guard versus an embedder guarantee).
    """
    from repro.core.request import (
        Runtime, SpecializedConst, SpecializedMemory, SpeculatedConst)
    args = []
    for arg in request.args:
        if isinstance(arg, SpecializedConst):
            args.append({"t": "const", "value": arg.value})
        elif isinstance(arg, SpecializedMemory):
            args.append({"t": "memory", "pointer": arg.pointer,
                         "length": arg.length})
        elif isinstance(arg, SpeculatedConst):
            args.append({"t": "spec", "value": arg.value})
        elif isinstance(arg, Runtime):
            args.append({"t": "runtime"})
        else:
            raise SerializationError(f"unencodable arg mode {arg!r}")
    return {
        "generic": request.generic,
        "args": args,
        "specialized_name": request.specialized_name,
        "extra_const_memory": [[int(a), int(l)]
                               for a, l in request.extra_const_memory],
        "inline_plan": [[int(site), [[int(idx), str(fp)]
                                     for idx, fp in targets]]
                        for site, targets in request.inline_plan],
    }


def request_from_dict(data: dict):
    """Decode a request; raises :class:`SerializationError` on any
    malformed payload (same contract as :func:`function_from_dict`)."""
    from repro.core.request import (
        Runtime, SpecializationRequest, SpecializedConst,
        SpecializedMemory, SpeculatedConst)
    try:
        args = []
        for adata in data["args"]:
            tag = adata["t"]
            if tag == "const":
                value = adata["value"]
                if not isinstance(value, (int, float)):
                    raise SerializationError(f"bad const value {value!r}")
                args.append(SpecializedConst(value))
            elif tag == "memory":
                args.append(SpecializedMemory(int(adata["pointer"]),
                                              int(adata["length"])))
            elif tag == "spec":
                args.append(SpeculatedConst(int(adata["value"])))
            elif tag == "runtime":
                args.append(Runtime())
            else:
                raise SerializationError(f"unknown arg mode tag {tag!r}")
        name = data["specialized_name"]
        return SpecializationRequest(
            str(data["generic"]), args,
            specialized_name=None if name is None else str(name),
            extra_const_memory=[(int(a), int(l))
                                for a, l in data["extra_const_memory"]],
            inline_plan=tuple(
                (int(site), tuple((int(idx), str(fp))
                                  for idx, fp in targets))
                for site, targets in data.get("inline_plan", [])))
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed request payload: {exc}") \
            from exc


# ---------------------------------------------------------------------------
# Modules (shipped once per process-pool worker at pool startup).
# ---------------------------------------------------------------------------

def _sig_to_dict(sig) -> dict:
    return {"params": [t.value for t in sig.params],
            "results": [t.value for t in sig.results]}


def _sig_from_dict(data):
    from repro.ir.function import Signature
    try:
        return Signature(tuple(_ty_from(t) for t in data["params"]),
                         tuple(_ty_from(t) for t in data["results"]))
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad signature {data!r}") from exc


def _unavailable_host(name: str):
    def fn(vm, *args):  # pragma: no cover - compile-side modules only
        raise RuntimeError(
            f"host import {name!r} is not available in a "
            f"deserialized module (compile-side use only)")
    return fn


def module_to_dict(module) -> dict:
    """Encode a module's *compile-side* identity: functions, import
    signatures, table, globals, and memory size.

    Host import callables cannot cross a process boundary, so imports
    are encoded signature-only; the initial memory image is deliberately
    excluded (the heap snapshot travels separately with each batch and
    is the authoritative constant image).  A decoded module can drive
    ``specialize``/``verify_function`` but must never be *executed* —
    its imports raise.
    """
    return {
        "functions": [function_to_dict(f)
                      for f in module.functions.values()],
        "imports": [{"name": h.name, "sig": _sig_to_dict(h.sig)}
                    for h in module.imports.values()],
        "table": list(module.table[1:]),  # slot 0 is always null
        "globals": dict(module.globals),
        "memory_size": module.memory_size,
    }


def module_from_dict(data: dict):
    """Decode a compile-side module; raises :class:`SerializationError`
    on any malformed payload — including duplicate function or import
    names, which a last-write-wins decode would silently turn into a
    different program."""
    from repro.ir.module import HostFunc, Module
    try:
        module = Module(memory_size=int(data["memory_size"]))
        for fdata in data["functions"]:
            module.add_function(function_from_dict(fdata))
        for idata in data["imports"]:
            name = str(idata["name"])
            module.add_import(HostFunc(name, _sig_from_dict(idata["sig"]),
                                       _unavailable_host(name)))
        for entry in data["table"]:
            module.add_table_entry(str(entry))
        for name, init in data["globals"].items():
            module.add_global(str(name), int(init))
    except SerializationError:
        raise
    except (KeyError, TypeError, AttributeError) as exc:
        raise SerializationError(f"malformed module payload: {exc}") \
            from exc
    except ValueError as exc:
        # Duplicate function/import/global names (Module.add_* raise) or
        # an unconvertible field both land here.
        raise SerializationError(f"malformed module payload: {exc}") \
            from exc
    return module
