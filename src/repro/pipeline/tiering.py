"""Profile-guided dynamic tier-up: the runtime half of the pipeline.

The paper's deployment — and this repo's AOT flows until now — is
strictly ahead-of-time: every guest runtime specializes its whole
snapshot before the first guest instruction runs, which front-loads the
entire compile cost onto startup even though most functions in a real
workload are cold.  The :class:`TieringController` refactors that into a
three-tier runtime system over the *same* compilation machinery:

* **tier 0** — the generic interpreter on the VM, with lightweight
  call and loop-backedge counters (``vm.tier_hook`` /
  ``vm.count_backedges`` in :mod:`repro.vm.machine`);
* **tier 1** — the weval residual IR, interpreted by the VM;
* **tier 2** — the residual compiled to native Python by
  :mod:`repro.backend`.

Promotion happens *at call boundaries*: the VM's tier hook fires when a
guest-level dispatch slot is still empty and the call is about to fall
back to the generic interpreter.  When a function's profile crosses the
hot threshold the controller compiles it right there — through the
owning :class:`~repro.core.snapshot.SnapshotCompiler` and therefore the
:class:`~repro.pipeline.engine.CompilationEngine` with its batching,
worker pool, and persistent artifact store — installs it in the module
table, patches the guest dispatch slot in the *live* heap, and redirects
the triggering call itself.  Because the redirect replaces the exact
call that would have gone generic, a threshold of 1 reproduces the
pure-AOT execution bit for bit (same residuals, same fuel), and a
threshold of ∞ degenerates to the plain interpreter; the tiered
differential tier asserts both.  Pure AOT itself is now just
:meth:`TieringController.promote_all` — "promote everything at
startup" through the same code path the dynamic system uses.

**Guarded speculation.**  With ``speculate=True`` the controller
watches the values of designated runtime arguments while a function is
cold.  If an argument held one stable value across every profiled call,
promotion specializes it as a
:class:`~repro.core.request.SpeculatedConst`: the specializer folds the
value as a constant behind an entry ``guard`` instruction.  A failed
guard raises :class:`~repro.vm.machine.GuardFailed`; the VM unwinds the
call, rolls the execution counters back (sound because the verifier
pins guards ahead of every side effect), re-runs the generic function,
and notifies the controller, which *demotes exactly once*: the
speculative residual is retired and the function is respecialized
without the failed speculation, so steady state never ping-pongs.

**Speculative inlining (PR 8).**  With ``inline=True`` (staged tier 2
only) the controller additionally profiles ``call_indirect`` *sites*
inside promoted residuals during the tier-1 window: the VM's site hook
records a per-site histogram of callee table indices.  When the
function earns its backend compile, hot nearly-monomorphic sites become
an **inline plan** — ``(site, ((table_index, callee_fingerprint),
...))`` entries carried on the
:class:`~repro.core.request.SpecializationRequest` (and so in the cache
and artifact keys) — and the respecialized residual splices the callee
bodies at those sites behind polymorphic guards
(:mod:`repro.opt.inline`).  A guard miss demotes **per site**, exactly
once: the site id travels on the resuming guard's VM notification (or
on :class:`~repro.vm.machine.GuardFailed` for unwinding guards), and
the controller respecializes with that one site removed from the plan
while every other speculation survives.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.core.cache import function_fingerprint
from repro.core.request import (
    Runtime,
    SpecializationRequest,
    SpeculatedConst,
)
from repro.core.snapshot import SnapshotCompiler
from repro.core.specialize import SpecializeOptions
from repro.core.stats import TieringStats
from repro.ir.module import Module
from repro.pipeline.profiles import ProfileStore, profile_key
from repro.vm.machine import VM

# Calls a function must accumulate before promotion.  Deliberately low:
# a guest call is expensive relative to the profile bookkeeping, and the
# residual usually wins after a handful of calls.
DEFAULT_THRESHOLD = 8

# How many loop backedges count as one call toward the hot score: a
# function that is entered rarely but spins long loops still promotes
# (at its next call boundary).
BACKEDGE_WEIGHT = 512

# Inlining defaults: a site must have been observed this many times in
# the tier-1 window, with at most this many distinct callees, and each
# callee residual at most this many instructions.
INLINE_MIN_SITE_CALLS = 4
INLINE_MAX_TARGETS = 2
INLINE_MAX_INSTRS = 400

# Fault-containment policy (PR 9).  A contained compile failure
# quarantines the function: promotion is retried with exponential
# backoff measured in *threshold crossings* (the retry is earned by
# fresh heat, not by wall clock — a function nobody calls never retries),
# and after MAX_COMPILE_FAILURES contained failures the function is
# blacklisted to tier 0 permanently.  Separately, the deopt-storm
# breaker pins a function generic for good when STORM_DEOPTS guard
# misses land within a window of STORM_WINDOW calls — with the
# demote-exactly-once design a healthy function can deopt at most once
# per speculation, so a storm means its guards are systematically wrong.
MAX_COMPILE_FAILURES = 3
STORM_DEOPTS = 8
STORM_WINDOW = 64

_UNSTABLE = object()


class PromotionError(Exception):
    """A compile failure surfaced by the engine (``EngineResult.error``)
    re-raised inside the controller so one containment policy handles
    both in-process exceptions and contained engine-task crashes."""


@dataclasses.dataclass
class TierEntry:
    """One tierable guest function, declared by the embedding runtime.

    ``generic`` is the *runnable* generic entry (the function the guest
    dispatch falls back to and the tier hook watches); ``request`` may
    target a different, specialization-only variant (e.g. the
    state-intrinsic interpreter body).  ``key`` is the guest identity of
    the function (function-struct/proto/bytecode pointer) and must equal
    ``args[key_index]`` of a generic call; ``result_addr`` is the heap
    slot guest code dispatches through, patched with the module-table
    index on installation.  ``speculate_args`` lists indices of
    ``Runtime`` parameters eligible for guarded value speculation.
    """

    generic: str
    key: int
    request: SpecializationRequest
    result_addr: int
    key_index: int = 0
    speculate_args: Tuple[int, ...] = ()
    # Stable cross-process identity for persisted heat.  ``key`` is a
    # raw guest pointer, and pointers get *reused*: drop an endpoint and
    # register a different program at the same base and the default
    # ``profile_key(generic, key)`` would adopt the dead program's heat
    # into the new one.  Embedders whose keys can be reused set this to
    # a content-derived token (e.g. a hash of the guest program) so heat
    # follows the program, not the address.
    heat_key: Optional[str] = None
    # Embedder policy hook for speculative inlining: given a candidate
    # callee's installed function name, return whether its body may be
    # spliced into this function's residual (e.g. the JS runtime admits
    # IC stubs only while their shape is still live in the shape table).
    # ``None`` admits every structurally eligible callee.
    inline_gate: Optional[object] = None


class FunctionProfile:
    """Per-function tiering state (tier 0 counters and beyond)."""

    __slots__ = ("entry", "calls", "backedges", "tier", "installed_name",
                 "table_index", "deopts", "samples", "no_speculate",
                 "calls_at_promotion", "tier2_attempted",
                 "published_calls", "published_backedges",
                 "site_callees", "no_inline_sites", "inline_plan",
                 "active_request", "compile_failures", "retry_at_score",
                 "blacklisted", "pinned_generic", "deopt_marks",
                 "last_error")

    def __init__(self, entry: TierEntry):
        self.entry = entry
        self.calls = 0
        self.backedges = 0
        # High-water marks of counters already published to (or adopted
        # from) a shared ProfileStore: publishes send only the delta
        # beyond these, so fleet heat accumulates without double counts.
        self.published_calls = 0
        self.published_backedges = 0
        self.tier = 0
        self.installed_name: Optional[str] = None
        self.table_index = 0
        self.deopts = 0
        # True once a staged backend emit was attempted — an emitter
        # fallback keeps the function on tier 1 *permanently* (retrying
        # would fail identically, on every hot call).
        self.tier2_attempted = False
        # arg index -> first observed value, or _UNSTABLE once two calls
        # disagreed (speculation is then off for that argument).
        self.samples: Dict[int, object] = {}
        self.no_speculate = False
        self.calls_at_promotion = 0
        # Per-call-site callee histograms from the tier-1 window:
        # site id -> {table index -> count}.
        self.site_callees: Dict[int, Dict[int, int]] = {}
        # Sites whose speculation failed once — never replanned.
        self.no_inline_sites: set = set()
        # The inline plan the installed residual was built with.
        self.inline_plan: tuple = ()
        # The request actually used at promotion (speculation applied);
        # inline (re)specializations derive from it.
        self.active_request: Optional[SpecializationRequest] = None
        # Fault containment: consecutive contained compile failures, the
        # score this function must reach before promotion is retried
        # (None = not quarantined), and the two permanent verdicts.
        self.compile_failures = 0
        self.retry_at_score: Optional[float] = None
        self.blacklisted = False
        self.pinned_generic = False
        # Call-count marks of recent deopt/guard-miss events, for the
        # storm breaker's sliding window.
        self.deopt_marks: List[int] = []
        self.last_error: Optional[str] = None

    def score(self, backedge_weight: int) -> int:
        return self.calls + self.backedges // backedge_weight


class TieringController:
    """Owns per-function tier state and drives promotion and deopt.

    One controller serves one module and one live VM.  The AOT flows
    construct it, :meth:`register` every function, and call
    :meth:`promote_all`; the tiered flows :meth:`attach` it to the VM
    and let the profile decide.  All compilation goes through the
    controller's :class:`~repro.core.snapshot.SnapshotCompiler` (and so
    the batching/caching :class:`~repro.pipeline.engine.CompilationEngine`).

    ``compile_threshold`` staggers tier 2: ``0`` (default) installs the
    backend callable at promotion time when ``options.backend == "py"``;
    ``n > 0`` keeps a promoted function on tier 1 — redirected at the
    call boundary, its dispatch slot deliberately unpatched so calls
    keep entering the hook — for ``n`` further calls before paying for
    backend compilation and patching the slot.
    """

    def __init__(self, module: Module,
                 options: Optional[SpecializeOptions] = None,
                 cache=None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 threshold: float = DEFAULT_THRESHOLD,
                 speculate: bool = False,
                 backedge_weight: int = BACKEDGE_WEIGHT,
                 compile_threshold: int = 0,
                 inline: bool = False,
                 inline_max_targets: int = INLINE_MAX_TARGETS,
                 inline_min_site_calls: int = INLINE_MIN_SITE_CALLS,
                 inline_max_instrs: int = INLINE_MAX_INSTRS,
                 max_compile_failures: int = MAX_COMPILE_FAILURES,
                 storm_deopts: int = STORM_DEOPTS,
                 storm_window: int = STORM_WINDOW):
        self.module = module
        self.options = options or SpecializeOptions()
        self.threshold = (DEFAULT_THRESHOLD if threshold is None
                          else threshold)
        self.speculate = speculate
        self.backedge_weight = max(1, backedge_weight)
        self.compile_threshold = compile_threshold
        self.max_compile_failures = max(1, max_compile_failures)
        self.storm_deopts = storm_deopts
        self.storm_window = max(1, storm_window)
        self.want_py = self.options.backend == "py"
        staged = self.want_py and compile_threshold > 0
        self._staged_tier2 = staged
        self.inline = inline
        self.inline_max_targets = max(1, inline_max_targets)
        self.inline_min_site_calls = max(1, inline_min_site_calls)
        self.inline_max_instrs = inline_max_instrs
        if inline and not staged:
            # Site histograms only exist while a promoted residual runs
            # on the VM with its dispatch slot unpatched — that *is* the
            # staged tier-1 window.
            raise ValueError(
                "inline=True requires a staged tier-2 window "
                "(backend='py' and compile_threshold > 0)")
        # In staged mode the engine specializes to residual IR only; the
        # backend emit for a function is paid when *it* reaches tier 2.
        compiler_options = (dataclasses.replace(self.options, backend="vm")
                            if staged else self.options)
        self.compiler = SnapshotCompiler(module, compiler_options, cache,
                                         jobs=jobs, cache_dir=cache_dir)
        self.vm: Optional[VM] = None
        self.stats = TieringStats()
        self.entries: List[TierEntry] = []
        self.profiles: Dict[Tuple[str, int], FunctionProfile] = {}
        self._key_index: Dict[str, int] = {}
        self._speculative: Dict[str, FunctionProfile] = {}
        self._last_profile: Optional[FunctionProfile] = None
        self._backedges_seen = 0
        # Installed residual name -> owning profile (all installs, old
        # names kept for in-flight frames); and the subset of names
        # currently in their site-profiling window.
        self._site_owner: Dict[str, FunctionProfile] = {}
        self._site_profiled: set = set()

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------
    def _bump_links(self) -> None:
        """Reset the VM's call link slots (PR 10) after a
        dispatch-changing event the VM cannot observe itself.

        ``VM.install_compiled`` invalidates on its own, which covers
        every install path (promotion, staged tier-2, per-site repair,
        heat adoption); this hook handles the rest — (un)registration
        changing ``tier_generics``, blacklist/storm verdicts, fallback
        registration, and demotions — so a raw-linked call can never
        outlive the conditions its link probe checked.
        """
        if self.vm is not None:
            self.vm.links.invalidate()

    def register(self, entry: TierEntry) -> None:
        """Declare one tierable function (before or after attaching)."""
        index = self._key_index.setdefault(entry.generic, entry.key_index)
        if index != entry.key_index:
            raise ValueError(
                f"{entry.generic}: inconsistent key_index "
                f"({index} vs {entry.key_index})")
        self.entries.append(entry)
        self.profiles[(entry.generic, entry.key)] = FunctionProfile(entry)
        if self.vm is not None:
            self.vm.tier_generics = frozenset(self._key_index)
            self._bump_links()

    def unregister(self, entry: TierEntry) -> None:
        """Retire one registered function (endpoint churn).

        Drops its profile and entry — so the tier hook can never again
        redirect a call with this key to the retired residual, and
        ``promote_all`` / ``adopt_heat`` batches no longer include it —
        and zeroes its guest dispatch slot so heap-level dispatch falls
        back to the generic path.  The residual function itself stays in
        the module (installed names are never reused; a later tenant's
        residual gets a fresh unique name), so in-flight frames are
        unaffected.
        """
        profile = self.profiles.pop((entry.generic, entry.key), None)
        self.entries = [e for e in self.entries
                        if (e.generic, e.key) != (entry.generic, entry.key)]
        if profile is not None:
            if self._last_profile is profile:
                self._last_profile = None
            if profile.installed_name is not None:
                self._speculative.pop(profile.installed_name, None)
        if self.vm is not None:
            self.vm.store_u64(entry.result_addr, 0)
        self._bump_links()

    def attach(self, vm: VM) -> VM:
        """Bind the controller to a live VM and enable profiling."""
        self.vm = vm
        self.compiler.vm = vm
        vm.tier_hook = self._on_call
        vm.tier_generics = frozenset(self._key_index)
        vm.deopt_hook = self._on_deopt
        vm.count_backedges = True
        if self.inline:
            vm.site_profile_hook = self._on_site
            vm.site_miss_hook = self._on_site_miss
            vm.site_profile_functions = frozenset(self._site_profiled)
        # Activating the tier hook changes what generic names dispatch
        # to; drop any links made before attachment.
        self._bump_links()
        return vm

    # ------------------------------------------------------------------
    # The pure-AOT path: promote everything, up front, in one batch.
    # ------------------------------------------------------------------
    def promote_all(self, entries: Optional[List[TierEntry]] = None
                    ) -> List[str]:
        """Compile and install every registered function now (one engine
        batch — parallel across ``jobs`` workers, artifact-cached).

        ``entries`` restricts the batch to a subset (the heat-adoption
        path promotes only the fleet's hot set); the default promotes
        everything, which is the pure-AOT flow.
        """
        start = time.perf_counter()
        entries = self.entries if entries is None else entries
        for entry in entries:
            self.compiler.enqueue(entry.request, entry.result_addr)
        processed = self.compiler.process_requests()
        names = []
        installs = 0
        promoted = 0
        for entry, item in zip(entries, processed):
            profile = self.profiles[(entry.generic, entry.key)]
            if item.error is not None:
                # Contained engine failure for this one function: it
                # stays on tier 0 (nothing was installed) and enters
                # quarantine; the rest of the batch installs normally.
                self._contain_failure(profile, item.error)
                continue
            profile.installed_name = item.function_name
            profile.table_index = item.table_index
            tier = 2 if (self.want_py and item.function_name
                         in self.compiler.backend_functions) else 1
            if tier == 2 and profile.tier != 2:
                installs += 1
            profile.tier = tier
            promoted += 1
            names.append(item.function_name)
        self.stats.promotions += promoted
        self.stats.tier2_installs += installs
        self.stats.promote_seconds += time.perf_counter() - start
        if self.vm is not None and self.compiler.backend_functions:
            self.vm.install_compiled(self.compiler.backend_functions)
        return names

    # ------------------------------------------------------------------
    # Fleet heat: persisted cross-process profiles.
    # ------------------------------------------------------------------
    def publish_heat(self, store: ProfileStore) -> bool:
        """Merge this worker's profiling since the last publish into the
        shared heat file (per-function call/backedge deltas).

        Idempotent bookkeeping: the high-water marks only advance when
        the merge lands, so a failed publish (read-only store, lost
        validation) retains the delta for the next attempt.
        """
        deltas = {}
        pending = []
        for (generic, key), profile in self.profiles.items():
            calls = profile.calls - profile.published_calls
            backedges = profile.backedges - profile.published_backedges
            if calls or backedges:
                heat_key = (profile.entry.heat_key
                            or profile_key(generic, key))
                deltas[heat_key] = {"calls": calls, "backedges": backedges}
                pending.append((profile, calls, backedges))
        if not deltas:
            return True
        if not store.merge(deltas):
            return False
        for profile, calls, backedges in pending:
            # Advance the marks by exactly the delta that was merged —
            # NOT to the live counters, which another thread (or the
            # profiled workload itself, re-entering through a host call
            # during the merge) may have advanced since the snapshot
            # above; those extra counts belong to the *next* publish.
            profile.published_calls += calls
            profile.published_backedges += backedges
        return True

    def adopt_heat(self, store: ProfileStore) -> List[str]:
        """Warm this worker from the fleet's persisted heat.

        Every registered function's counters are seeded with the merged
        fleet heat (marked as already published, so this worker never
        re-contributes it), and functions whose persisted score already
        crosses the promotion threshold are compiled **now** in one
        batch — against a warm artifact store that batch is pure loads,
        so a fresh worker reaches the fleet's steady state before its
        first request instead of re-discovering the hot set through
        threshold-many generic calls per function.

        Returns the installed names of the adopted hot set.
        """
        heat = store.load()
        if not heat:
            return []
        hot = []
        for entry in self.entries:
            record = heat.get(entry.heat_key
                              or profile_key(entry.generic, entry.key))
            if record is None:
                continue
            profile = self.profiles[(entry.generic, entry.key)]
            profile.calls += record["calls"]
            profile.backedges += record["backedges"]
            profile.published_calls += record["calls"]
            profile.published_backedges += record["backedges"]
            if profile.tier == 0 and \
                    profile.score(self.backedge_weight) >= self.threshold:
                hot.append(entry)
        if not hot:
            return []
        return self.promote_all(entries=hot)

    # ------------------------------------------------------------------
    # Tier-0 profiling hook (VM call boundary).
    # ------------------------------------------------------------------
    def _on_call(self, name: str, args) -> Optional[str]:
        profile = self.profiles.get((name, args[self._key_index[name]]))
        if profile is None:
            return None
        vm = self.vm
        # Attribute loop backedges observed since the last boundary to
        # the most recent cold function (a deliberately lightweight
        # heuristic: exact attribution would need per-frame tracking).
        delta = vm.stats.backedges - self._backedges_seen
        if delta:
            self._backedges_seen = vm.stats.backedges
            if self._last_profile is not None:
                self._last_profile.backedges += delta
        self._last_profile = profile
        profile.calls += 1
        if profile.pinned_generic or profile.blacklisted:
            # A containment verdict is final: this function serves tier 0
            # for the rest of the session.
            self.stats.tier0_calls += 1
            return None
        if profile.tier == 1 and self._staged_tier2:
            # Promoted but deliberately unpatched: redirect to the
            # residual, and pay for tier 2 once it proves durable.
            if (not profile.tier2_attempted
                    and self._may_attempt(profile)
                    and profile.calls - profile.calls_at_promotion
                    >= self.compile_threshold):
                try:
                    self._install_tier2(profile)
                except Exception as exc:
                    # Contained tier-2 failure: keep serving the tier-1
                    # residual and retry the install after backoff.
                    profile.tier2_attempted = False
                    self._contain_failure(
                        profile, f"{type(exc).__name__}: {exc}")
                    if profile.blacklisted:
                        self.stats.tier0_calls += 1
                        return None
            return profile.installed_name
        if profile.tier != 0:
            return profile.installed_name
        if self.speculate and profile.entry.speculate_args \
                and not profile.no_speculate:
            samples = profile.samples
            for index in profile.entry.speculate_args:
                seen = samples.get(index)
                if seen is None:
                    samples[index] = args[index]
                elif seen is not _UNSTABLE and seen != args[index]:
                    samples[index] = _UNSTABLE
        if profile.score(self.backedge_weight) >= self.threshold and \
                self._may_attempt(profile):
            name = self._promote_contained(profile)
            if name is not None:
                return name
        # Only now is the call certain to execute on the generic
        # interpreter (every earlier path redirected it).
        self.stats.tier0_calls += 1
        return None

    # ------------------------------------------------------------------
    # Fault containment (PR 9): quarantine, blacklist, storm breaker.
    # ------------------------------------------------------------------
    def _may_attempt(self, profile: FunctionProfile) -> bool:
        """Whether containment policy permits a compile attempt now."""
        if profile.blacklisted or profile.pinned_generic:
            return False
        if profile.retry_at_score is None:
            return True
        return profile.score(self.backedge_weight) >= profile.retry_at_score

    def _promote_contained(self, profile: FunctionProfile) -> Optional[str]:
        """:meth:`_promote` under the containment policy: an exception
        anywhere in the compile fails *this promotion attempt only* —
        the triggering call (and every call until the backoff expires)
        runs generically, which is always correct."""
        retrying = profile.compile_failures > 0
        if retrying:
            self.stats.quarantine_retries += 1
        try:
            name = self._promote(profile)
        except Exception as exc:
            self._contain_failure(profile,
                                  f"{type(exc).__name__}: {exc}")
            return None
        if retrying:
            self.stats.quarantine_recoveries += 1
        profile.compile_failures = 0
        profile.retry_at_score = None
        return name

    def _contain_failure(self, profile: FunctionProfile,
                         message: str) -> None:
        """Apply quarantine policy after one contained compile failure."""
        self.stats.compile_failures += 1
        profile.compile_failures += 1
        profile.last_error = message
        # Drop any queued requests the failed attempt left behind so the
        # next (unrelated) promotion does not replay a poisoned batch.
        self.compiler.pending = []
        if profile.compile_failures >= self.max_compile_failures:
            if not profile.blacklisted:
                profile.blacklisted = True
                profile.tier = 0
                self.stats.blacklists += 1
                if self.vm is not None:
                    # Force heap-level dispatch back to the generic path
                    # (a staged install may have patched the slot).
                    self.vm.store_u64(profile.entry.result_addr, 0)
                self._bump_links()
            return
        if profile.compile_failures == 1:
            self.stats.quarantines += 1
        # Exponential backoff measured in threshold crossings: the Nth
        # consecutive failure defers the retry until the function has
        # earned 2^(N-1) further thresholds' worth of heat.
        backoff = max(1.0, float(self.threshold)) * \
            (2 ** (profile.compile_failures - 1))
        profile.retry_at_score = \
            profile.score(self.backedge_weight) + backoff

    def _record_deopt_event(self, profile: FunctionProfile) -> bool:
        """Feed one deopt/guard-miss event to the storm breaker; returns
        True when it just pinned the function generic."""
        if not self.storm_deopts or self.storm_deopts <= 0:
            return False
        marks = profile.deopt_marks
        marks.append(profile.calls)
        cutoff = profile.calls - self.storm_window
        while marks and marks[0] < cutoff:
            marks.pop(0)
        if len(marks) >= self.storm_deopts:
            self._pin_generic(profile)
            return True
        return False

    def _pin_generic(self, profile: FunctionProfile) -> None:
        """Storm-breaker verdict: this function's speculation is
        systematically wrong — serve it generically, permanently.
        In-flight frames of old residuals still deopt safely (their
        fallback mappings survive); new calls never leave tier 0."""
        if profile.pinned_generic:
            return
        profile.pinned_generic = True
        profile.tier = 0
        profile.no_speculate = True
        self.stats.storm_pins += 1
        if self.vm is not None:
            self.vm.store_u64(profile.entry.result_addr, 0)
        self._bump_links()
        name = profile.installed_name
        if name is not None:
            self._speculative.pop(name, None)
            if self.inline and name in self._site_profiled:
                self._site_profiled.discard(name)
                if self.vm is not None:
                    self.vm.site_profile_functions = \
                        frozenset(self._site_profiled)

    # ------------------------------------------------------------------
    # Promotion.
    # ------------------------------------------------------------------
    def _speculative_request(self, profile: FunctionProfile
                             ) -> Tuple[SpecializationRequest, bool]:
        entry = profile.entry
        request = entry.request
        if not (self.speculate and entry.speculate_args
                and not profile.no_speculate):
            return request, False
        modes = list(request.args)
        speculated = False
        for index in entry.speculate_args:
            value = profile.samples.get(index)
            if value is None or value is _UNSTABLE:
                continue
            if isinstance(modes[index], Runtime):
                modes[index] = SpeculatedConst(value)
                speculated = True
        if not speculated:
            return request, False
        return dataclasses.replace(
            request, args=modes,
            specialized_name=request.name() + ".guarded"), True

    def _promote(self, profile: FunctionProfile) -> str:
        """Compile ``profile``'s function and install it at this call
        boundary; returns the installed name (the call redirect)."""
        start = time.perf_counter()
        entry = profile.entry
        request, speculative = self._speculative_request(profile)
        self.compiler.enqueue(request, entry.result_addr)
        item = self.compiler.process_requests()[-1]
        if item.error is not None:
            # The engine contained a compile crash for this request (no
            # module/table/heap mutation happened); surface it to the
            # quarantine policy.
            raise PromotionError(item.error)
        name = item.function_name
        profile.installed_name = name
        profile.table_index = item.table_index
        profile.calls_at_promotion = profile.calls
        profile.tier2_attempted = False
        profile.active_request = request
        vm = self.vm
        if speculative:
            # A failed guard must land in the *runnable* generic body.
            vm.deopt_fallbacks[name] = entry.generic
            self._speculative[name] = profile
            self.stats.speculative_promotions += 1
            self._bump_links()
        if self._staged_tier2:
            # Keep dispatch flowing through the hook until the function
            # earns its backend compile: un-patch the slot the snapshot
            # compiler just wrote.
            vm.store_u64(entry.result_addr, 0)
            profile.tier = 1
            if self.inline:
                # The tier-1 window doubles as the site-profiling
                # window for this residual.
                self._site_owner[name] = profile
                self._site_profiled.add(name)
                vm.site_profile_functions = frozenset(self._site_profiled)
        elif self.want_py:
            pyfunc = self.compiler.backend_functions.get(name)
            if pyfunc is not None:
                vm.install_compiled({name: pyfunc})
                profile.tier = 2
                self.stats.tier2_installs += 1
            else:
                profile.tier = 1  # emitter fallback: stays on the IR VM
        else:
            profile.tier = 1
        self.stats.promotions += 1
        self.stats.promote_seconds += time.perf_counter() - start
        return name

    def _install_tier2(self, profile: FunctionProfile) -> None:
        """Compile an already-promoted residual to tier 2 and patch the
        guest dispatch slot (staged mode only).  One attempt per
        promotion: an emitter fallback leaves the function on the tier-1
        residual for good.  With inlining on, this is also the moment
        the site histograms gathered in the tier-1 window become an
        inline plan and the residual is respecialized with it."""
        profile.tier2_attempted = True
        if self.inline:
            self._install_inline(profile)
        name = profile.installed_name
        compiled = self.compiler.compile_backend([name])
        if name in compiled:
            self.vm.install_compiled({name: compiled[name]})
            profile.tier = 2
            self.stats.tier2_installs += 1
        elif not any(f[0] == name
                     for f in self.compiler.backend_fallbacks):
            # Neither compiled nor a recorded emitter fallback: the emit
            # stage *crashed* (a fallback is the permanent "cannot
            # express" verdict; a crash is transient).  Raise before the
            # dispatch slot is patched so the function keeps flowing
            # through the hook and the install is retried after backoff.
            raise PromotionError(f"tier-2 emit failed for {name}")
        self.vm.store_u64(profile.entry.result_addr, profile.table_index)
        if self.inline:
            self._site_profiled.discard(name)
            self.vm.site_profile_functions = frozenset(self._site_profiled)

    # ------------------------------------------------------------------
    # Speculative inlining (plan building and per-site demotion).
    # ------------------------------------------------------------------
    def _inlinable_target(self, entry: TierEntry, profile: FunctionProfile,
                          index: int) -> Optional[Tuple[int, str]]:
        """Vet one observed callee table index; ``None`` rejects the
        whole site (the guard must cover every hot callee, or it would
        just miss its way to a demotion)."""
        if not (0 < index < len(self.module.table)):
            return None
        name = self.module.table[index]
        if name is None:
            return None
        callee = self.module.functions.get(name)
        if callee is None or callee.entry is None:
            return None
        if index == profile.table_index:
            return None  # self-recursion only grows the body
        if self.inline_max_instrs is not None and \
                callee.num_instrs() > self.inline_max_instrs:
            return None
        if entry.inline_gate is not None and not entry.inline_gate(name):
            return None
        return index, function_fingerprint(callee)

    def _build_plan(self, profile: FunctionProfile) -> tuple:
        """Turn the tier-1 window's site histograms into an inline plan
        (deterministically ordered by site id)."""
        entry = profile.entry
        plan = []
        for site in sorted(profile.site_callees):
            if site in profile.no_inline_sites:
                continue
            hist = profile.site_callees[site]
            if sum(hist.values()) < self.inline_min_site_calls:
                continue
            if len(hist) > self.inline_max_targets:
                self.stats.inline_candidates_rejected += 1
                continue
            targets = []
            for index in sorted(hist):
                target = self._inlinable_target(entry, profile, index)
                if target is None:
                    targets = None
                    break
                targets.append(target)
            if not targets:
                self.stats.inline_candidates_rejected += 1
                continue
            plan.append((site, tuple(targets)))
        return tuple(plan)

    def _install_inline(self, profile: FunctionProfile) -> None:
        """Respecialize ``profile``'s function with an inline plan built
        from its site histograms (no-op when no site qualifies)."""
        plan = self._build_plan(profile)
        if not plan:
            return
        self._respecialize_with_plan(profile, plan)
        self.stats.inline_sites_planned += len(plan)

    def _respecialize_with_plan(self, profile: FunctionProfile,
                                plan: tuple) -> None:
        """Compile and install the residual for ``active_request`` +
        ``plan`` (which may be empty: that is exactly the base
        residual's request, so the engine cache serves it)."""
        entry = profile.entry
        request = profile.active_request or entry.request
        if plan:
            request = dataclasses.replace(request, inline_plan=plan)
        self.compiler.enqueue(request, entry.result_addr)
        item = self.compiler.process_requests()[-1]
        if item.error is not None:
            # Contained engine crash: the previously installed residual
            # is still live and correct, so the caller's containment
            # wrapper just records the failure.
            raise PromotionError(item.error)
        old_name = profile.installed_name
        name = item.function_name
        profile.installed_name = name
        profile.table_index = item.table_index
        profile.inline_plan = plan
        self._site_owner[name] = profile
        if old_name is not None and old_name in self._speculative:
            # The entry speculation travels with the function, not with
            # one residual: keep demote-once working under the new name.
            self._speculative[name] = self._speculative.pop(old_name)
        if self._needs_fallback(name):
            self.vm.deopt_fallbacks[name] = entry.generic
            self._bump_links()

    def _needs_fallback(self, name: str) -> bool:
        """True when the installed residual contains an *unwinding*
        guard (legacy int imm or ``(site, values)``) — only those raise
        :class:`GuardFailed` and need a registered generic fallback."""
        func = self.module.functions.get(name)
        if func is None:
            return False
        for block in func.blocks.values():
            for instr in block.instrs:
                if instr.op == "guard" and (
                        not isinstance(instr.imm, tuple)
                        or len(instr.imm) == 2):
                    return True
        return False

    def _on_site(self, name: str, site: int, index: int) -> None:
        """VM site-profiling hook: one ``call_indirect`` dispatch inside
        a residual in its tier-1 window."""
        profile = self._site_owner.get(name)
        if profile is None:
            return
        hist = profile.site_callees.setdefault(site, {})
        hist[index] = hist.get(index, 0) + 1

    def _on_site_miss(self, name: str, site: int) -> None:
        """VM notification from a *resuming* inline guard: the callee at
        ``site`` was not in the speculated set.  Execution continued on
        the materialized slow path, so only the plan needs repair."""
        self.stats.site_misses += 1
        profile = self._site_owner.get(name)
        if profile is None:
            return
        self._demote_site(profile, site)

    def _demote_site(self, profile: FunctionProfile, site: int) -> None:
        """Retire one speculation site, exactly once: respecialize with
        the remaining plan; every other inlined site survives.

        Contained: if the repair compile itself crashes, the *old*
        residual keeps serving (its guard at this site now always takes
        the slow path / generic fallback — slower, never wrong) and the
        failure feeds the quarantine policy.
        """
        if site in profile.no_inline_sites:
            return  # in-flight frames of the retired residual
        start = time.perf_counter()
        profile.no_inline_sites.add(site)
        self.stats.site_demotions += 1
        if self._record_deopt_event(profile):
            return  # storm breaker: pinned generic, no repair compile
        try:
            plan = tuple(e for e in profile.inline_plan if e[0] != site)
            self._respecialize_with_plan(profile, plan)
            name = profile.installed_name
            if profile.tier == 2:
                compiled = self.compiler.compile_backend([name])
                if name in compiled:
                    self.vm.install_compiled({name: compiled[name]})
                    self.stats.tier2_installs += 1
                else:
                    profile.tier = 1
            self.vm.store_u64(profile.entry.result_addr,
                              profile.table_index)
        except Exception as exc:
            self._contain_failure(profile, f"{type(exc).__name__}: {exc}")
        finally:
            self.stats.promote_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Deopt (guard failure at a call boundary).
    # ------------------------------------------------------------------
    def _on_deopt(self, name: str, site: Optional[int] = None) -> None:
        self.stats.deopts += 1
        # The VM has just rolled its counters back to the pre-call
        # snapshot, which can sit *below* the controller's backedge
        # high-water mark; without a resync the next call boundary would
        # compute a negative delta and drain heat from whichever profile
        # happened to be most recent.  This covers the mid-function
        # unwind path too: a polymorphic guard deep in the body abandons
        # backedges its own loops already counted.
        if self.vm is not None and \
                self.vm.stats.backedges < self._backedges_seen:
            self._backedges_seen = self.vm.stats.backedges
        if site is not None:
            # Per-site attribution: an unwinding polymorphic guard
            # failed.  Demote that one site, never the whole function
            # (and never an unrelated guard in the same function).
            profile = self._site_owner.get(name)
            if profile is not None:
                self._demote_site(profile, site)
            return
        profile = self._speculative.pop(name, None)
        if profile is None:
            # Already demoted (an in-flight frame hit the same retired
            # residual); the VM's fallback mapping still routes it to
            # the generic body, nothing more to do.
            return
        profile.deopts += 1
        profile.no_speculate = True
        profile.tier = 0
        self.stats.demotions += 1
        self._bump_links()
        if self._record_deopt_event(profile):
            return  # storm breaker: pinned generic, no replacement
        # Respecialize without the failed speculation and install the
        # plain residual; the deopted call itself runs generically (the
        # VM re-dispatches it after this hook returns).  Contained: a
        # crashed replacement compile leaves the function on tier 0,
        # quarantined.
        self._promote_contained(profile)

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def tier_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {0: 0, 1: 0, 2: 0}
        for profile in self.profiles.values():
            counts[profile.tier] = counts.get(profile.tier, 0) + 1
        return counts

    def report(self) -> str:
        """Human-readable per-function tier table (examples, benches)."""
        lines = ["function".ljust(34) + "tier  calls  backedges  deopts"]
        for (generic, key), profile in sorted(self.profiles.items()):
            label = profile.installed_name or f"{generic}[{key:#x}]"
            lines.append(f"{label[:33].ljust(34)}{profile.tier:>4}"
                         f"{profile.calls:>7}{profile.backedges:>11}"
                         f"{profile.deopts:>8}")
        counts = self.tier_counts()
        stats = self.stats
        lines.append(
            f"tiers: {counts.get(0, 0)}/t0 {counts.get(1, 0)}/t1 "
            f"{counts.get(2, 0)}/t2 | promotions={stats.promotions} "
            f"(speculative={stats.speculative_promotions}) "
            f"deopts={stats.deopts} demotions={stats.demotions} "
            f"promote={stats.promote_seconds * 1000:.1f}ms")
        if self.inline:
            lines.append(
                f"inline: sites={stats.inline_sites_planned} "
                f"rejected={stats.inline_candidates_rejected} "
                f"misses={stats.site_misses} "
                f"site_demotions={stats.site_demotions}")
        if stats.compile_failures or stats.blacklists or stats.storm_pins:
            lines.append(
                f"containment: failures={stats.compile_failures} "
                f"quarantines={stats.quarantines} "
                f"retries={stats.quarantine_retries} "
                f"recoveries={stats.quarantine_recoveries} "
                f"blacklists={stats.blacklists} "
                f"storm_pins={stats.storm_pins}")
        estats = self.compiler.engine.stats
        if estats.requests_failed or estats.pool_rebuilds or \
                estats.pool_degradations or estats.store_degraded:
            lines.append(
                f"engine: failed={estats.requests_failed} "
                f"pool_rebuilds={estats.pool_rebuilds} "
                f"pool_degradations={estats.pool_degradations} "
                f"store_degraded={bool(estats.store_degraded)} "
                f"store_write_failures={estats.store_write_failures}")
        return "\n".join(lines)
