"""Profile-guided dynamic tier-up: the runtime half of the pipeline.

The paper's deployment — and this repo's AOT flows until now — is
strictly ahead-of-time: every guest runtime specializes its whole
snapshot before the first guest instruction runs, which front-loads the
entire compile cost onto startup even though most functions in a real
workload are cold.  The :class:`TieringController` refactors that into a
three-tier runtime system over the *same* compilation machinery:

* **tier 0** — the generic interpreter on the VM, with lightweight
  call and loop-backedge counters (``vm.tier_hook`` /
  ``vm.count_backedges`` in :mod:`repro.vm.machine`);
* **tier 1** — the weval residual IR, interpreted by the VM;
* **tier 2** — the residual compiled to native Python by
  :mod:`repro.backend`.

Promotion happens *at call boundaries*: the VM's tier hook fires when a
guest-level dispatch slot is still empty and the call is about to fall
back to the generic interpreter.  When a function's profile crosses the
hot threshold the controller compiles it right there — through the
owning :class:`~repro.core.snapshot.SnapshotCompiler` and therefore the
:class:`~repro.pipeline.engine.CompilationEngine` with its batching,
worker pool, and persistent artifact store — installs it in the module
table, patches the guest dispatch slot in the *live* heap, and redirects
the triggering call itself.  Because the redirect replaces the exact
call that would have gone generic, a threshold of 1 reproduces the
pure-AOT execution bit for bit (same residuals, same fuel), and a
threshold of ∞ degenerates to the plain interpreter; the tiered
differential tier asserts both.  Pure AOT itself is now just
:meth:`TieringController.promote_all` — "promote everything at
startup" through the same code path the dynamic system uses.

**Guarded speculation.**  With ``speculate=True`` the controller
watches the values of designated runtime arguments while a function is
cold.  If an argument held one stable value across every profiled call,
promotion specializes it as a
:class:`~repro.core.request.SpeculatedConst`: the specializer folds the
value as a constant behind an entry ``guard`` instruction.  A failed
guard raises :class:`~repro.vm.machine.GuardFailed`; the VM unwinds the
call, rolls the execution counters back (sound because the verifier
pins guards ahead of every side effect), re-runs the generic function,
and notifies the controller, which *demotes exactly once*: the
speculative residual is retired and the function is respecialized
without the failed speculation, so steady state never ping-pongs.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.core.request import (
    Runtime,
    SpecializationRequest,
    SpeculatedConst,
)
from repro.core.snapshot import SnapshotCompiler
from repro.core.specialize import SpecializeOptions
from repro.core.stats import TieringStats
from repro.ir.module import Module
from repro.pipeline.profiles import ProfileStore, profile_key
from repro.vm.machine import VM

# Calls a function must accumulate before promotion.  Deliberately low:
# a guest call is expensive relative to the profile bookkeeping, and the
# residual usually wins after a handful of calls.
DEFAULT_THRESHOLD = 8

# How many loop backedges count as one call toward the hot score: a
# function that is entered rarely but spins long loops still promotes
# (at its next call boundary).
BACKEDGE_WEIGHT = 512

_UNSTABLE = object()


@dataclasses.dataclass
class TierEntry:
    """One tierable guest function, declared by the embedding runtime.

    ``generic`` is the *runnable* generic entry (the function the guest
    dispatch falls back to and the tier hook watches); ``request`` may
    target a different, specialization-only variant (e.g. the
    state-intrinsic interpreter body).  ``key`` is the guest identity of
    the function (function-struct/proto/bytecode pointer) and must equal
    ``args[key_index]`` of a generic call; ``result_addr`` is the heap
    slot guest code dispatches through, patched with the module-table
    index on installation.  ``speculate_args`` lists indices of
    ``Runtime`` parameters eligible for guarded value speculation.
    """

    generic: str
    key: int
    request: SpecializationRequest
    result_addr: int
    key_index: int = 0
    speculate_args: Tuple[int, ...] = ()
    # Stable cross-process identity for persisted heat.  ``key`` is a
    # raw guest pointer, and pointers get *reused*: drop an endpoint and
    # register a different program at the same base and the default
    # ``profile_key(generic, key)`` would adopt the dead program's heat
    # into the new one.  Embedders whose keys can be reused set this to
    # a content-derived token (e.g. a hash of the guest program) so heat
    # follows the program, not the address.
    heat_key: Optional[str] = None


class FunctionProfile:
    """Per-function tiering state (tier 0 counters and beyond)."""

    __slots__ = ("entry", "calls", "backedges", "tier", "installed_name",
                 "table_index", "deopts", "samples", "no_speculate",
                 "calls_at_promotion", "tier2_attempted",
                 "published_calls", "published_backedges")

    def __init__(self, entry: TierEntry):
        self.entry = entry
        self.calls = 0
        self.backedges = 0
        # High-water marks of counters already published to (or adopted
        # from) a shared ProfileStore: publishes send only the delta
        # beyond these, so fleet heat accumulates without double counts.
        self.published_calls = 0
        self.published_backedges = 0
        self.tier = 0
        self.installed_name: Optional[str] = None
        self.table_index = 0
        self.deopts = 0
        # True once a staged backend emit was attempted — an emitter
        # fallback keeps the function on tier 1 *permanently* (retrying
        # would fail identically, on every hot call).
        self.tier2_attempted = False
        # arg index -> first observed value, or _UNSTABLE once two calls
        # disagreed (speculation is then off for that argument).
        self.samples: Dict[int, object] = {}
        self.no_speculate = False
        self.calls_at_promotion = 0

    def score(self, backedge_weight: int) -> int:
        return self.calls + self.backedges // backedge_weight


class TieringController:
    """Owns per-function tier state and drives promotion and deopt.

    One controller serves one module and one live VM.  The AOT flows
    construct it, :meth:`register` every function, and call
    :meth:`promote_all`; the tiered flows :meth:`attach` it to the VM
    and let the profile decide.  All compilation goes through the
    controller's :class:`~repro.core.snapshot.SnapshotCompiler` (and so
    the batching/caching :class:`~repro.pipeline.engine.CompilationEngine`).

    ``compile_threshold`` staggers tier 2: ``0`` (default) installs the
    backend callable at promotion time when ``options.backend == "py"``;
    ``n > 0`` keeps a promoted function on tier 1 — redirected at the
    call boundary, its dispatch slot deliberately unpatched so calls
    keep entering the hook — for ``n`` further calls before paying for
    backend compilation and patching the slot.
    """

    def __init__(self, module: Module,
                 options: Optional[SpecializeOptions] = None,
                 cache=None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 threshold: float = DEFAULT_THRESHOLD,
                 speculate: bool = False,
                 backedge_weight: int = BACKEDGE_WEIGHT,
                 compile_threshold: int = 0):
        self.module = module
        self.options = options or SpecializeOptions()
        self.threshold = (DEFAULT_THRESHOLD if threshold is None
                          else threshold)
        self.speculate = speculate
        self.backedge_weight = max(1, backedge_weight)
        self.compile_threshold = compile_threshold
        self.want_py = self.options.backend == "py"
        staged = self.want_py and compile_threshold > 0
        self._staged_tier2 = staged
        # In staged mode the engine specializes to residual IR only; the
        # backend emit for a function is paid when *it* reaches tier 2.
        compiler_options = (dataclasses.replace(self.options, backend="vm")
                            if staged else self.options)
        self.compiler = SnapshotCompiler(module, compiler_options, cache,
                                         jobs=jobs, cache_dir=cache_dir)
        self.vm: Optional[VM] = None
        self.stats = TieringStats()
        self.entries: List[TierEntry] = []
        self.profiles: Dict[Tuple[str, int], FunctionProfile] = {}
        self._key_index: Dict[str, int] = {}
        self._speculative: Dict[str, FunctionProfile] = {}
        self._last_profile: Optional[FunctionProfile] = None
        self._backedges_seen = 0

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------
    def register(self, entry: TierEntry) -> None:
        """Declare one tierable function (before or after attaching)."""
        index = self._key_index.setdefault(entry.generic, entry.key_index)
        if index != entry.key_index:
            raise ValueError(
                f"{entry.generic}: inconsistent key_index "
                f"({index} vs {entry.key_index})")
        self.entries.append(entry)
        self.profiles[(entry.generic, entry.key)] = FunctionProfile(entry)
        if self.vm is not None:
            self.vm.tier_generics = frozenset(self._key_index)

    def unregister(self, entry: TierEntry) -> None:
        """Retire one registered function (endpoint churn).

        Drops its profile and entry — so the tier hook can never again
        redirect a call with this key to the retired residual, and
        ``promote_all`` / ``adopt_heat`` batches no longer include it —
        and zeroes its guest dispatch slot so heap-level dispatch falls
        back to the generic path.  The residual function itself stays in
        the module (installed names are never reused; a later tenant's
        residual gets a fresh unique name), so in-flight frames are
        unaffected.
        """
        profile = self.profiles.pop((entry.generic, entry.key), None)
        self.entries = [e for e in self.entries
                        if (e.generic, e.key) != (entry.generic, entry.key)]
        if profile is not None:
            if self._last_profile is profile:
                self._last_profile = None
            if profile.installed_name is not None:
                self._speculative.pop(profile.installed_name, None)
        if self.vm is not None:
            self.vm.store_u64(entry.result_addr, 0)

    def attach(self, vm: VM) -> VM:
        """Bind the controller to a live VM and enable profiling."""
        self.vm = vm
        self.compiler.vm = vm
        vm.tier_hook = self._on_call
        vm.tier_generics = frozenset(self._key_index)
        vm.deopt_hook = self._on_deopt
        vm.count_backedges = True
        return vm

    # ------------------------------------------------------------------
    # The pure-AOT path: promote everything, up front, in one batch.
    # ------------------------------------------------------------------
    def promote_all(self, entries: Optional[List[TierEntry]] = None
                    ) -> List[str]:
        """Compile and install every registered function now (one engine
        batch — parallel across ``jobs`` workers, artifact-cached).

        ``entries`` restricts the batch to a subset (the heat-adoption
        path promotes only the fleet's hot set); the default promotes
        everything, which is the pure-AOT flow.
        """
        start = time.perf_counter()
        entries = self.entries if entries is None else entries
        for entry in entries:
            self.compiler.enqueue(entry.request, entry.result_addr)
        processed = self.compiler.process_requests()
        names = []
        installs = 0
        for entry, item in zip(entries, processed):
            profile = self.profiles[(entry.generic, entry.key)]
            profile.installed_name = item.function_name
            profile.table_index = item.table_index
            tier = 2 if (self.want_py and item.function_name
                         in self.compiler.backend_functions) else 1
            if tier == 2 and profile.tier != 2:
                installs += 1
            profile.tier = tier
            names.append(item.function_name)
        self.stats.promotions += len(processed)
        self.stats.tier2_installs += installs
        self.stats.promote_seconds += time.perf_counter() - start
        if self.vm is not None and self.compiler.backend_functions:
            self.vm.install_compiled(self.compiler.backend_functions)
        return names

    # ------------------------------------------------------------------
    # Fleet heat: persisted cross-process profiles.
    # ------------------------------------------------------------------
    def publish_heat(self, store: ProfileStore) -> bool:
        """Merge this worker's profiling since the last publish into the
        shared heat file (per-function call/backedge deltas).

        Idempotent bookkeeping: the high-water marks only advance when
        the merge lands, so a failed publish (read-only store, lost
        validation) retains the delta for the next attempt.
        """
        deltas = {}
        pending = []
        for (generic, key), profile in self.profiles.items():
            calls = profile.calls - profile.published_calls
            backedges = profile.backedges - profile.published_backedges
            if calls or backedges:
                heat_key = (profile.entry.heat_key
                            or profile_key(generic, key))
                deltas[heat_key] = {"calls": calls, "backedges": backedges}
                pending.append(profile)
        if not deltas:
            return True
        if not store.merge(deltas):
            return False
        for profile in pending:
            profile.published_calls = profile.calls
            profile.published_backedges = profile.backedges
        return True

    def adopt_heat(self, store: ProfileStore) -> List[str]:
        """Warm this worker from the fleet's persisted heat.

        Every registered function's counters are seeded with the merged
        fleet heat (marked as already published, so this worker never
        re-contributes it), and functions whose persisted score already
        crosses the promotion threshold are compiled **now** in one
        batch — against a warm artifact store that batch is pure loads,
        so a fresh worker reaches the fleet's steady state before its
        first request instead of re-discovering the hot set through
        threshold-many generic calls per function.

        Returns the installed names of the adopted hot set.
        """
        heat = store.load()
        if not heat:
            return []
        hot = []
        for entry in self.entries:
            record = heat.get(entry.heat_key
                              or profile_key(entry.generic, entry.key))
            if record is None:
                continue
            profile = self.profiles[(entry.generic, entry.key)]
            profile.calls += record["calls"]
            profile.backedges += record["backedges"]
            profile.published_calls += record["calls"]
            profile.published_backedges += record["backedges"]
            if profile.tier == 0 and \
                    profile.score(self.backedge_weight) >= self.threshold:
                hot.append(entry)
        if not hot:
            return []
        return self.promote_all(entries=hot)

    # ------------------------------------------------------------------
    # Tier-0 profiling hook (VM call boundary).
    # ------------------------------------------------------------------
    def _on_call(self, name: str, args) -> Optional[str]:
        profile = self.profiles.get((name, args[self._key_index[name]]))
        if profile is None:
            return None
        vm = self.vm
        # Attribute loop backedges observed since the last boundary to
        # the most recent cold function (a deliberately lightweight
        # heuristic: exact attribution would need per-frame tracking).
        delta = vm.stats.backedges - self._backedges_seen
        if delta:
            self._backedges_seen = vm.stats.backedges
            if self._last_profile is not None:
                self._last_profile.backedges += delta
        self._last_profile = profile
        profile.calls += 1
        if profile.tier == 1 and self._staged_tier2:
            # Promoted but deliberately unpatched: redirect to the
            # residual, and pay for tier 2 once it proves durable.
            if (not profile.tier2_attempted
                    and profile.calls - profile.calls_at_promotion
                    >= self.compile_threshold):
                self._install_tier2(profile)
            return profile.installed_name
        if profile.tier != 0:
            return profile.installed_name
        if self.speculate and profile.entry.speculate_args \
                and not profile.no_speculate:
            samples = profile.samples
            for index in profile.entry.speculate_args:
                seen = samples.get(index)
                if seen is None:
                    samples[index] = args[index]
                elif seen is not _UNSTABLE and seen != args[index]:
                    samples[index] = _UNSTABLE
        if profile.score(self.backedge_weight) >= self.threshold:
            return self._promote(profile)
        # Only now is the call certain to execute on the generic
        # interpreter (every earlier path redirected it).
        self.stats.tier0_calls += 1
        return None

    # ------------------------------------------------------------------
    # Promotion.
    # ------------------------------------------------------------------
    def _speculative_request(self, profile: FunctionProfile
                             ) -> Tuple[SpecializationRequest, bool]:
        entry = profile.entry
        request = entry.request
        if not (self.speculate and entry.speculate_args
                and not profile.no_speculate):
            return request, False
        modes = list(request.args)
        speculated = False
        for index in entry.speculate_args:
            value = profile.samples.get(index)
            if value is None or value is _UNSTABLE:
                continue
            if isinstance(modes[index], Runtime):
                modes[index] = SpeculatedConst(value)
                speculated = True
        if not speculated:
            return request, False
        return dataclasses.replace(
            request, args=modes,
            specialized_name=request.name() + ".guarded"), True

    def _promote(self, profile: FunctionProfile) -> str:
        """Compile ``profile``'s function and install it at this call
        boundary; returns the installed name (the call redirect)."""
        start = time.perf_counter()
        entry = profile.entry
        request, speculative = self._speculative_request(profile)
        self.compiler.enqueue(request, entry.result_addr)
        item = self.compiler.process_requests()[-1]
        name = item.function_name
        profile.installed_name = name
        profile.table_index = item.table_index
        profile.calls_at_promotion = profile.calls
        profile.tier2_attempted = False
        vm = self.vm
        if speculative:
            # A failed guard must land in the *runnable* generic body.
            vm.deopt_fallbacks[name] = entry.generic
            self._speculative[name] = profile
            self.stats.speculative_promotions += 1
        if self._staged_tier2:
            # Keep dispatch flowing through the hook until the function
            # earns its backend compile: un-patch the slot the snapshot
            # compiler just wrote.
            vm.store_u64(entry.result_addr, 0)
            profile.tier = 1
        elif self.want_py:
            pyfunc = self.compiler.backend_functions.get(name)
            if pyfunc is not None:
                vm.install_compiled({name: pyfunc})
                profile.tier = 2
                self.stats.tier2_installs += 1
            else:
                profile.tier = 1  # emitter fallback: stays on the IR VM
        else:
            profile.tier = 1
        self.stats.promotions += 1
        self.stats.promote_seconds += time.perf_counter() - start
        return name

    def _install_tier2(self, profile: FunctionProfile) -> None:
        """Compile an already-promoted residual to tier 2 and patch the
        guest dispatch slot (staged mode only).  One attempt per
        promotion: an emitter fallback leaves the function on the tier-1
        residual for good."""
        profile.tier2_attempted = True
        name = profile.installed_name
        compiled = self.compiler.compile_backend([name])
        if name in compiled:
            self.vm.install_compiled({name: compiled[name]})
            profile.tier = 2
            self.stats.tier2_installs += 1
        self.vm.store_u64(profile.entry.result_addr, profile.table_index)

    # ------------------------------------------------------------------
    # Deopt (guard failure at a call boundary).
    # ------------------------------------------------------------------
    def _on_deopt(self, name: str) -> None:
        self.stats.deopts += 1
        # The VM has just rolled its counters back to the pre-call
        # snapshot, which can sit *below* the controller's backedge
        # high-water mark; without a resync the next call boundary would
        # compute a negative delta and drain heat from whichever profile
        # happened to be most recent.
        if self.vm is not None and \
                self.vm.stats.backedges < self._backedges_seen:
            self._backedges_seen = self.vm.stats.backedges
        profile = self._speculative.pop(name, None)
        if profile is None:
            # Already demoted (an in-flight frame hit the same retired
            # residual); the VM's fallback mapping still routes it to
            # the generic body, nothing more to do.
            return
        profile.deopts += 1
        profile.no_speculate = True
        profile.tier = 0
        self.stats.demotions += 1
        # Respecialize without the failed speculation and install the
        # plain residual; the deopted call itself runs generically (the
        # VM re-dispatches it after this hook returns).
        self._promote(profile)

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def tier_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {0: 0, 1: 0, 2: 0}
        for profile in self.profiles.values():
            counts[profile.tier] = counts.get(profile.tier, 0) + 1
        return counts

    def report(self) -> str:
        """Human-readable per-function tier table (examples, benches)."""
        lines = ["function".ljust(34) + "tier  calls  backedges  deopts"]
        for (generic, key), profile in sorted(self.profiles.items()):
            label = profile.installed_name or f"{generic}[{key:#x}]"
            lines.append(f"{label[:33].ljust(34)}{profile.tier:>4}"
                         f"{profile.calls:>7}{profile.backedges:>11}"
                         f"{profile.deopts:>8}")
        counts = self.tier_counts()
        stats = self.stats
        lines.append(
            f"tiers: {counts.get(0, 0)}/t0 {counts.get(1, 0)}/t1 "
            f"{counts.get(2, 0)}/t2 | promotions={stats.promotions} "
            f"(speculative={stats.speculative_promotions}) "
            f"deopts={stats.deopts} demotions={stats.demotions} "
            f"promote={stats.promote_seconds * 1000:.1f}ms")
        return "\n".join(lines)
