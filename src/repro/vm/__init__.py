"""An evaluator for :mod:`repro.ir` modules.

This plays the role Wasmtime plays in the paper: it executes both the
generic interpreter functions and the weval-specialized functions, against
a linear memory instantiated from the module's snapshot image.  Besides
wall-clock time, it maintains a deterministic *fuel* counter (number of IR
instructions executed) and load/store counters, which the benchmark
harness uses as a stable stand-in for hardware time.
"""

from repro.vm.machine import VM, VMTrap, OutOfFuel, GuardFailed, ExecStats

__all__ = ["VM", "VMTrap", "OutOfFuel", "GuardFailed", "ExecStats"]
